//! Thermal-runaway behaviour across the stack: the TEC-only failure mode,
//! the low-ω "infinite" region of Figure 6(a)(b), and agreement between
//! the linear and nonlinear runaway classifications.

use oftec::baselines::tec_only;
use oftec::{CoolingSystem, SweepGrid};
use oftec_power::Benchmark;
use oftec_thermal::{NonlinearOptions, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current};

#[test]
fn tec_only_always_runs_away_full_grid() {
    // Full calibrated grid, all benchmarks (the paper's §6.2 claim).
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let report = tec_only(&system, 5);
        assert!(
            report.all_runaway(),
            "{b}: TEC-only found a steady state: {:?}",
            report.max_temperatures
        );
    }
}

#[test]
fn runaway_boundary_is_low_but_nonzero() {
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let model = system.tec_model();
    let solvable = |rpm: f64| {
        model
            .solve(OperatingPoint::new(
                AngularVelocity::from_rpm(rpm),
                Current::from_amperes(1.0),
            ))
            .is_ok()
    };
    assert!(!solvable(0.0), "still air must run away");
    assert!(!solvable(10.0));
    assert!(solvable(200.0), "paper: ~150 RPM suffices for basicmath");
    assert!(solvable(5000.0));
}

#[test]
fn sweep_marks_runaway_consistently() {
    let system =
        CoolingSystem::for_benchmark_with_config(Benchmark::Fft, &PackageConfig::dac14_coarse());
    let sweep = SweepGrid {
        omega_points: 14,
        current_points: 6,
    }
    .run(system.tec_model());
    // Runaway cells have neither temperature nor power.
    for s in &sweep.samples {
        assert_eq!(s.max_temp_celsius.is_none(), s.power_watts.is_none());
    }
    // The ω = 0 column is fully runaway; the ω = ω_max column fully solvable.
    for s in sweep.samples.iter().filter(|s| s.omega_rpm == 0.0) {
        assert!(s.max_temp_celsius.is_none());
    }
    for s in sweep
        .samples
        .iter()
        .filter(|s| (s.omega_rpm - 5000.0).abs() < 1.0)
    {
        assert!(s.max_temp_celsius.is_some());
    }
}

#[test]
fn linear_and_nonlinear_classifications_agree_at_extremes() {
    let system = CoolingSystem::for_benchmark_with_config(
        Benchmark::Quicksort,
        &PackageConfig::dac14_coarse(),
    );
    let model = system.tec_model();
    let healthy = OperatingPoint::new(
        AngularVelocity::from_rpm(4000.0),
        Current::from_amperes(1.0),
    );
    assert!(model.solve(healthy).is_ok());
    assert!(model
        .solve_nonlinear(healthy, &NonlinearOptions::default())
        .is_ok());

    let doomed = OperatingPoint::new(AngularVelocity::from_rpm(5.0), Current::from_amperes(0.0));
    assert!(model.solve(doomed).is_err());
    assert!(model
        .solve_nonlinear(doomed, &NonlinearOptions::default())
        .is_err());
}
