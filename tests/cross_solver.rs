//! Cross-validation of the optimization stack: the active-set SQP must
//! agree with exhaustive grid search (ground truth) on the real OFTEC
//! problem, and all three NLP methods must agree with each other.
//!
//! Agreement thresholds come from the shared
//! [`oftec_fleet::tolerance::TolerancePolicy`] — the same bounds the
//! fleet engine's differential fuzzer enforces over its whole scenario
//! population, so these tests and the fuzzer cannot drift apart.

use oftec::problems::{CoolingObjective, CoolingProblem};
use oftec::CoolingSystem;
use oftec_fleet::tolerance::TolerancePolicy;
use oftec_optim::{ActiveSetSqp, GridSearch, InteriorPoint, NlpProblem, SolveOptions, TrustRegion};
use oftec_power::Benchmark;
use oftec_thermal::PackageConfig;

fn coarse_system(b: Benchmark) -> CoolingSystem {
    CoolingSystem::for_benchmark_with_config(b, &PackageConfig::dac14_coarse())
}

fn opts() -> SolveOptions {
    SolveOptions {
        max_iterations: 60,
        tolerance: 1e-6,
    }
}

/// Strictly-feasible power at `x`, using the paper's real constraint.
fn feasible_power(p: &CoolingProblem<'_>, x: &[f64]) -> Option<f64> {
    let t = p.max_temperature(x)?;
    if t.celsius() < 90.0 {
        p.objective(x)
    } else {
        None
    }
}

#[test]
fn sqp_matches_grid_search_on_optimization1() {
    let policy = TolerancePolicy::default();
    for b in [Benchmark::Basicmath, Benchmark::Crc32] {
        let system = coarse_system(b);
        let problem =
            CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
        let sqp = ActiveSetSqp::default()
            .solve(&problem, &[0.5, 0.5], &opts())
            .unwrap();
        let grid = GridSearch {
            points_per_dim: 33,
            ..Default::default()
        }
        .solve(&problem, &[0.5, 0.5], &opts())
        .unwrap();
        let sqp_p = feasible_power(&problem, &sqp.x).expect("SQP endpoint feasible");
        // Grid points are feasible by construction of the search.
        let gap = (sqp_p - grid.objective) / grid.objective;
        assert!(
            gap < policy.sqp_grid_rel_gap,
            "{b}: SQP {sqp_p:.3} W vs grid {:.3} W (gap {:.1}%)",
            grid.objective,
            100.0 * gap
        );
        // SQP (continuous) should beat or match the discrete grid.
        assert!(sqp_p <= grid.objective * (1.0 + policy.continuous_headroom));
    }
}

#[test]
fn three_nlp_methods_agree() {
    let system = coarse_system(Benchmark::StringSearch);
    let make = || CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
    let p1 = make();
    let sqp = ActiveSetSqp::default()
        .solve(&p1, &[0.5, 0.5], &opts())
        .unwrap();
    let p2 = make();
    let ip = InteriorPoint::default()
        .solve(&p2, &[0.5, 0.5], &opts())
        .unwrap();
    let p3 = make();
    let tr = TrustRegion::default()
        .solve(&p3, &[0.5, 0.5], &opts())
        .unwrap();
    let sqp_p = feasible_power(&p1, &sqp.x).unwrap();
    let ip_p = feasible_power(&p2, &ip.x).unwrap();
    // Trust region's penalty can exploit the interior margin; validate its
    // objective directly (it may sit microscopically outside the strict
    // check at other benchmarks, but not on this cool one).
    let tr_p = feasible_power(&p3, &tr.x).unwrap();
    let spread = [sqp_p, ip_p, tr_p];
    let min = spread.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = spread.iter().cloned().fold(0.0_f64, f64::max);
    assert!(
        (max - min) / min < TolerancePolicy::default().nlp_rel_gap,
        "solver disagreement: SQP {sqp_p:.3}, IP {ip_p:.3}, TR {tr_p:.3}"
    );
}

#[test]
fn optimization2_minimum_beats_any_corner() {
    // The full Optimization 2 solve must be at least as cool as the box
    // corners and the center (a weak but fully independent optimality
    // check).
    let system = coarse_system(Benchmark::Fft);
    let problem = CoolingProblem::new(
        system.tec_model(),
        CoolingObjective::MaxTemperature,
        system.t_max(),
    );
    let sqp = ActiveSetSqp::default()
        .solve(&problem, &[0.5, 0.5], &opts())
        .unwrap();
    let best = problem.max_temperature(&sqp.x).unwrap();
    let slack = TolerancePolicy::default().opt2_corner_slack_k;
    for probe in [[1.0, 0.0], [1.0, 1.0], [0.5, 0.5], [1.0, 0.5], [0.75, 0.25]] {
        if let Some(t) = problem.max_temperature(&probe) {
            assert!(
                best.kelvin() <= t.kelvin() + slack,
                "probe {probe:?} is cooler: {t} < {best}"
            );
        }
    }
}
