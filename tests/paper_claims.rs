//! The paper's headline claims, end to end, on the calibrated full grid:
//!
//! - OFTEC meets the 90 °C limit on **all eight** MiBench benchmarks;
//! - both fan-only baselines fail exactly the **five hot** benchmarks;
//! - on the three commonly-feasible benchmarks OFTEC consumes **less
//!   power** than both baselines while staying **cooler**;
//! - after Optimization 2, OFTEC is substantially cooler than the
//!   baselines on every benchmark.

use oftec::baselines::{fixed_speed_fan, variable_speed_fan};
use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;

fn systems() -> Vec<CoolingSystem> {
    Benchmark::ALL
        .iter()
        .map(|&b| CoolingSystem::for_benchmark(b))
        .collect()
}

#[test]
fn oftec_cools_all_eight_benchmarks() {
    let optimizer = Oftec::default();
    for system in systems() {
        let outcome = optimizer
            .run(&system)
            .unwrap_or_else(|e| panic!("{}: solver error {e}", system.name()));
        let sol = outcome
            .optimized()
            .unwrap_or_else(|| panic!("{} must be OFTEC-coolable", system.name()));
        assert!(
            sol.max_temperature < system.t_max(),
            "{}: {} ≥ T_max",
            system.name(),
            sol.max_temperature
        );
        // Physical sanity of the optimum.
        let op = sol.operating_point;
        assert!(op.fan_speed.rpm() > 0.0 && op.fan_speed.rpm() <= 5000.0);
        assert!(op.tec_current.amperes() >= 0.0 && op.tec_current.amperes() <= 5.0);
        assert!(sol.cooling_power.watts() > 0.0 && sol.cooling_power.watts() < 60.0);
    }
}

#[test]
fn baselines_fail_exactly_the_hot_five() {
    for system in systems() {
        let benchmark = Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name() == system.name())
            .unwrap();
        let var = variable_speed_fan(&system, true);
        let fixed = fixed_speed_fan(&system, oftec::fixed_baseline_speed());
        assert_eq!(
            var.is_feasible(),
            benchmark.is_cool(),
            "variable-ω on {}: expected feasible={}",
            system.name(),
            benchmark.is_cool()
        );
        assert_eq!(
            fixed.is_feasible(),
            benchmark.is_cool(),
            "fixed-ω on {}: expected feasible={}",
            system.name(),
            benchmark.is_cool()
        );
    }
}

#[test]
fn oftec_saves_power_on_the_cool_three() {
    let optimizer = Oftec::default();
    let mut var_savings = Vec::new();
    let mut fixed_savings = Vec::new();
    for benchmark in Benchmark::ALL.iter().copied().filter(|b| b.is_cool()) {
        let system = CoolingSystem::for_benchmark(benchmark);
        let sol = match optimizer.run(&system) {
            Ok(OftecOutcome::Optimized(sol)) => sol,
            _ => panic!("{benchmark} must be feasible"),
        };
        let var = variable_speed_fan(&system, true);
        let fixed = fixed_speed_fan(&system, oftec::fixed_baseline_speed());
        let var_p = var.cooling_power().expect("cool benchmark").watts();
        let fixed_p = fixed.cooling_power().expect("cool benchmark").watts();
        let oftec_p = sol.cooling_power.watts();

        assert!(
            oftec_p <= var_p + 1e-6,
            "{benchmark}: OFTEC {oftec_p:.2} W must not exceed variable-ω {var_p:.2} W"
        );
        assert!(
            oftec_p <= fixed_p + 1e-6,
            "{benchmark}: OFTEC {oftec_p:.2} W must not exceed fixed-ω {fixed_p:.2} W"
        );
        // And OFTEC must be at least as cool.
        assert!(sol.max_temperature.celsius() <= var.max_temperature().unwrap().celsius() + 1e-6);
        var_savings.push(100.0 * (var_p - oftec_p) / var_p);
        fixed_savings.push(100.0 * (fixed_p - oftec_p) / fixed_p);
    }
    // The paper reports 2.6% / 8.1% average savings; our substrate lands
    // in the same low-single-digit band — assert the band, not the digit.
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let var_avg = avg(&var_savings);
    let fixed_avg = avg(&fixed_savings);
    assert!(
        (0.1..15.0).contains(&var_avg),
        "variable-ω savings {var_avg:.2}% outside the plausible band"
    );
    assert!(
        (1.0..20.0).contains(&fixed_avg),
        "fixed-ω savings {fixed_avg:.2}% outside the plausible band"
    );
    assert!(
        fixed_avg > var_avg,
        "fixed-ω must be the weaker baseline (paper: 8.1% vs 2.6%)"
    );
}

#[test]
fn optimization2_puts_oftec_well_below_baselines() {
    let optimizer = Oftec::default();
    for system in systems() {
        let oftec_sol = optimizer
            .minimize_temperature(system.tec_model(), system.t_max())
            .expect("fan keeps every benchmark out of global runaway");
        let var = variable_speed_fan(&system, false);
        let var_t = var
            .max_temperature()
            .expect("coolest fan point exists")
            .celsius();
        let oftec_t = oftec_sol.max_temperature.celsius();
        assert!(
            oftec_t < var_t,
            "{}: OFTEC Opt2 {oftec_t:.2} °C must beat variable-ω {var_t:.2} °C",
            system.name()
        );
        assert!(
            oftec_t < 90.0,
            "{}: OFTEC Opt2 must meet T_max",
            system.name()
        );
        // And it pays for it with the highest power (Figure 6(d)).
        if let Some(var_p) = var.cooling_power() {
            assert!(
                oftec_sol.cooling_power.watts() > var_p.watts(),
                "{}: max-cooling OFTEC should burn more power than the baseline",
                system.name()
            );
        }
    }
}
