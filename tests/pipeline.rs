//! End-to-end pipeline checks across crate boundaries: workload synthesis
//! → thermal model → power accounting, plus serde round-trips of the
//! public data types.

use oftec::{CoolingSystem, SweepGrid};
use oftec_floorplan::{alpha21264, GridMap};
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current, Temperature};

#[test]
fn trace_to_thermal_pipeline() {
    // The paper's Figure 5 flow: benchmark → power trace → max vector →
    // thermal simulation.
    let fp = alpha21264();
    let cfg = PackageConfig::dac14_coarse();
    let trace = Benchmark::Susan.synthesize_trace(&fp, 256);
    assert_eq!(trace.unit_names().len(), fp.units().len());
    let max_vec = trace.max_per_unit();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let model = HybridCoolingModel::with_tec(&fp, &cfg, max_vec.clone(), &leak);
    let sol = model
        .solve(OperatingPoint::new(
            AngularVelocity::from_rpm(4000.0),
            Current::from_amperes(1.0),
        ))
        .unwrap();
    // Temperatures are physical: above ambient-ish, below runaway.
    assert!(sol.min_chip_temperature().celsius() > 30.0);
    assert!(sol.max_chip_temperature().celsius() < 120.0);
    // The breakdown components are individually positive and sum to 𝒫.
    let b = sol.breakdown();
    assert!(b.leakage.watts() > 0.0);
    assert!(b.tec.watts() > 0.0);
    assert!(b.fan.watts() > 0.0);
    assert!((b.objective().watts() - (b.leakage + b.tec + b.fan).watts()).abs() < 1e-12);
}

#[test]
fn unit_reduction_matches_gridmap() {
    // The solution's per-unit maxima must equal an independent reduction
    // through GridMap.
    let fp = alpha21264();
    let cfg = PackageConfig::dac14_coarse();
    let dyn_p = Benchmark::Fft.max_dynamic_power(&fp).unwrap();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let model = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak);
    let sol = model
        .solve(OperatingPoint::new(
            AngularVelocity::from_rpm(3500.0),
            Current::from_amperes(0.5),
        ))
        .unwrap();
    let map = GridMap::new(&fp, cfg.die_dims);
    let expect = map.unit_max(sol.chip_temperatures());
    let got = sol.unit_max_temperatures();
    for (e, g) in expect.iter().zip(&got) {
        assert!((e - g.kelvin()).abs() < 1e-12);
    }
    // The global max equals the hottest unit max.
    let hottest = got
        .iter()
        .cloned()
        .fold(Temperature::ABSOLUTE_ZERO, Temperature::max);
    assert_eq!(hottest, sol.max_chip_temperature());
}

#[test]
fn fan_only_and_hybrid_share_passive_behaviour() {
    // At I = 0 the hybrid stack and the fairness-boosted fan-only stack
    // are built to have comparable passive conduction; their temperatures
    // should be within a few degrees.
    let fp = alpha21264();
    let cfg = PackageConfig::dac14_coarse();
    let dyn_p = Benchmark::Basicmath.max_dynamic_power(&fp).unwrap();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let hybrid = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p.clone(), &leak);
    let fan = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &leak);
    let op = OperatingPoint::fan_only(AngularVelocity::from_rpm(3000.0));
    let t_hybrid = hybrid.solve(op).unwrap().max_chip_temperature();
    let t_fan = fan.solve(op).unwrap().max_chip_temperature();
    assert!(
        (t_hybrid.kelvin() - t_fan.kelvin()).abs() < 5.0,
        "passive stacks diverge: {t_hybrid} vs {t_fan}"
    );
}

#[test]
fn serde_round_trips() {
    // Public data types dump and reload losslessly (experiment artifacts).
    let system =
        CoolingSystem::for_benchmark_with_config(Benchmark::Crc32, &PackageConfig::dac14_coarse());
    let sweep = SweepGrid {
        omega_points: 4,
        current_points: 3,
    }
    .run(system.tec_model());
    let json = serde_json::to_string(&sweep).unwrap();
    let back: oftec::SweepResult = serde_json::from_str(&json).unwrap();
    // JSON float text round-trips to within an ULP; compare with tolerance.
    assert_eq!(back.samples.len(), sweep.samples.len());
    for (a, b) in back.samples.iter().zip(&sweep.samples) {
        assert_eq!(a.max_temp_celsius.is_some(), b.max_temp_celsius.is_some());
        if let (Some(pa), Some(pb)) = (a.power_watts, b.power_watts) {
            assert!((pa - pb).abs() < 1e-9);
        }
    }

    let cfg = PackageConfig::dac14();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: PackageConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back, cfg);

    let op = OperatingPoint::new(
        AngularVelocity::from_rpm(1234.0),
        Current::from_amperes(2.5),
    );
    let json = serde_json::to_string(&op).unwrap();
    let back: OperatingPoint = serde_json::from_str(&json).unwrap();
    assert_eq!(back, op);
}

#[test]
fn flp_export_feeds_back_into_the_pipeline() {
    // Export the bundled floorplan to HotSpot text, re-parse it, and run
    // the full stack on the re-parsed version.
    let fp = alpha21264();
    let text = oftec_floorplan::write_flp(&fp);
    let reparsed = oftec_floorplan::parse_flp("alpha21264", &text).unwrap();
    reparsed.validate().unwrap();
    let cfg = PackageConfig::dac14_coarse();
    let dyn_p = Benchmark::Crc32.max_dynamic_power(&reparsed).unwrap();
    let leak = McpatBudget::alpha21264_22nm().distribute(&reparsed);
    let model = HybridCoolingModel::with_tec(&reparsed, &cfg, dyn_p, &leak);
    let sol = model
        .solve(OperatingPoint::new(
            AngularVelocity::from_rpm(2000.0),
            Current::from_amperes(0.5),
        ))
        .unwrap();
    assert!(sol.max_chip_temperature().celsius() < 90.0);
}
