//! Integration surface for the OFTEC reproduction workspace.
//!
//! This crate exists to host the repository-level `examples/` and `tests/`
//! directories; it simply re-exports every workspace crate so examples and
//! integration tests can reach the whole stack through one dependency.
//!
//! See the individual crates for the actual functionality:
//!
//! - [`oftec`] — the paper's contribution (Algorithm 1 and baselines)
//! - [`oftec_thermal`] — layered RC thermal network simulator
//! - [`oftec_optim`] — active-set SQP and companion NLP solvers
//! - [`oftec_tec`] — thermoelectric-cooler device physics
//! - [`oftec_power`] — leakage models and workload synthesis
//! - [`oftec_floorplan`] — die floorplans
//! - [`oftec_linalg`] — dense/sparse linear algebra
//! - [`oftec_units`] — type-safe physical quantities

pub use oftec;
pub use oftec_floorplan;
pub use oftec_linalg;
pub use oftec_optim;
pub use oftec_power;
pub use oftec_tec;
pub use oftec_thermal;
pub use oftec_units;
