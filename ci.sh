#!/usr/bin/env sh
# Repository gate: build, tests, lints, formatting.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# Solver-path crates must not unwrap/expect outside tests (--lib skips
# test modules); a surprise in the solve pipeline must become a typed
# error, not an abort.
cargo clippy -p oftec -p oftec-optim -p oftec-thermal --lib -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
cargo fmt --all --check

# Fault-injection smoke: the no-panic robustness suite must hold on the
# serial path and on a parallel one (worker panics cross the scoped-
# thread executor differently than caller-thread panics).
OFTEC_THREADS=1 cargo test -q -p oftec --test fault_injection
OFTEC_THREADS=8 cargo test -q -p oftec --test fault_injection

# Telemetry smoke: the CLI must emit a parseable registry snapshot with
# real solver activity, including SQP traces for both optimization phases
# (qsort at 1.05× power is infeasible at the start point, so Algorithm 1
# runs Optimization 2 and then Optimization 1).
snap=$(mktemp)
trap 'rm -f "$snap"' EXIT
./target/release/oftec-cli optimize qsort --scale 1.05 --telemetry-json "$snap" > /dev/null
python3 - "$snap" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap["counters"]
assert counters.get("thermal.solves", 0) > 0, "no thermal solves recorded"
assert counters.get("sqp.iterations", 0) > 0, "no SQP iterations recorded"
for trace in ("sqp.opt1", "sqp.opt2"):
    assert snap["traces"].get(trace), f"missing convergence trace {trace}"
print("telemetry smoke ok:",
      counters["thermal.solves"], "thermal solves,",
      counters["sqp.iterations"], "SQP iterations")
PY
