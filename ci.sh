#!/usr/bin/env sh
# Repository gate: build, tests, lints, formatting.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check

# Telemetry smoke: the CLI must emit a parseable registry snapshot with
# real solver activity, including SQP traces for both optimization phases
# (qsort at 1.05× power is infeasible at the start point, so Algorithm 1
# runs Optimization 2 and then Optimization 1).
snap=$(mktemp)
trap 'rm -f "$snap"' EXIT
./target/release/oftec-cli optimize qsort --scale 1.05 --telemetry-json "$snap" > /dev/null
python3 - "$snap" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap["counters"]
assert counters.get("thermal.solves", 0) > 0, "no thermal solves recorded"
assert counters.get("sqp.iterations", 0) > 0, "no SQP iterations recorded"
for trace in ("sqp.opt1", "sqp.opt2"):
    assert snap["traces"].get(trace), f"missing convergence trace {trace}"
print("telemetry smoke ok:",
      counters["thermal.solves"], "thermal solves,",
      counters["sqp.iterations"], "SQP iterations")
PY
