#!/usr/bin/env sh
# Repository gate: build, tests, lints, formatting.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
# No unwrap/expect outside tests, anywhere in the workspace (libs and
# bins): a surprise on a solve or serving path must become a typed
# error, not an abort. (--lib/--bins skip #[cfg(test)] modules.)
cargo clippy --workspace --lib --bins -- \
    -D warnings -D clippy::unwrap_used -D clippy::expect_used
cargo fmt --all --check

# Workspace static analysis (oftec-lint, DESIGN.md §13 + §18): the
# invariants the compiler cannot see — typed errors on solve paths,
# scoped-executor-only parallelism, no wall clock in deterministic
# crates, tolerance-checked float compares, telemetry instead of
# printing, #[must_use] on solver entry points — plus the semantic layer:
# determinism taint (L008), relaxed-publication atomics (L009),
# lock-order cycles (L010), blocking-under-lock on serve hot paths
# (L011), lossy solver casts (L012), hot-path allocations (L013).
# Hard gate, run in parallel mode: any denied finding or stale baseline
# entry fails the build; the JSONL report and a SARIF 2.1.0 artifact are
# both kept.
./target/release/oftec-lint --format json --deny all --threads 8 \
    --sarif-out target/oftec-lint-report.sarif > target/oftec-lint-report.jsonl
# Determinism: a serial, warm-cache rerun must reproduce the parallel
# cold-cache report byte for byte (DESIGN.md §18 engine contract).
./target/release/oftec-lint --format json --deny all --threads 1 \
    > target/oftec-lint-rerun.jsonl
cmp target/oftec-lint-report.jsonl target/oftec-lint-rerun.jsonl \
    || { echo "lint report differs across thread counts / cache states"; exit 1; }
python3 - target/oftec-lint-report.jsonl target/oftec-lint-report.sarif <<'PY'
import json, sys
records = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
summaries = [r for r in records if r["type"] == "summary"]
assert len(summaries) == 1, "report must end with exactly one summary record"
s = summaries[0]
assert s["files_scanned"] > 0, "lint scanned no files"
assert s["active"] == 0, f"{s['active']} active findings"
assert s["stale_baseline"] == 0, "stale baseline entries"
assert not any(r["type"] == "stale_baseline" for r in records)
active = [r for r in records if r["type"] == "finding" and r["status"] == "active"]
assert not active
# The baseline may only grandfather L004 tolerance work; the panic/print
# rules ship with an empty baseline.
for rule in ("L001", "L005", "L006"):
    assert not any(r["type"] == "finding" and r["rule"] == rule
                   and r["status"] == "baselined" for r in records), \
        f"{rule} findings may not be baselined"
# The SARIF artifact is valid JSON and its result count agrees with the
# JSONL active-finding count (SARIF carries active findings only).
sarif = json.load(open(sys.argv[2]))
assert sarif["version"] == "2.1.0", "SARIF artifact version"
sarif_results = open(sys.argv[2]).read().count('{"ruleId": "')
assert sarif_results == len(active), \
    f"SARIF has {sarif_results} results, JSONL has {len(active)} active findings"
print("lint gate ok:", s["files_scanned"], "files,",
      s["suppressed"], "suppressed,", s["baselined"], "baselined,",
      sarif_results, "SARIF results")
PY
# Rule ids and DESIGN.md must agree in both directions: every id the
# binary knows is documented, and every documented table row is a rule
# the binary knows.
./target/release/oftec-lint --list-rules | awk '/^L[0-9]/ {print $1}' | sort -u \
    > target/oftec-lint-rules.txt
while read -r id; do
    grep -q "$id" DESIGN.md || { echo "rule $id missing from DESIGN.md"; exit 1; }
done < target/oftec-lint-rules.txt
grep -hoE '^\| L[0-9]{3} ' DESIGN.md | awk '{print $2}' | sort -u | while read -r id; do
    grep -q "^$id\$" target/oftec-lint-rules.txt \
        || { echo "DESIGN.md documents $id but the binary does not know it"; exit 1; }
done
# The gate must actually bite: a seeded violation per rule family — the
# token layer (L001) and every semantic rule (L008–L013) — must all be
# detected in one scratch workspace, and the run must exit non-zero.
scratch=$(mktemp -d)
mkdir -p "$scratch/crates/core/src" "$scratch/crates/serve/src" "$scratch/crates/thermal/src"
printf 'fn f() { x.unwrap(); }\n' > "$scratch/crates/core/src/seeded_l001.rs"
cat > "$scratch/crates/core/src/seeded_l008.rs" <<'EOF'
use std::collections::HashMap;
pub struct Registry { map: HashMap<u32, u32> }
impl Registry {
    pub fn snapshot(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for (_k, v) in self.map.iter() { out.push(*v); }
        out
    }
}
EOF
cat > "$scratch/crates/core/src/seeded_l009.rs" <<'EOF'
use std::sync::atomic::{AtomicU64, Ordering};
pub struct Flag { ready: AtomicU64, data: AtomicU64 }
impl Flag {
    pub fn publish(&self, v: u64) {
        self.data.store(v, Ordering::Relaxed);
        self.ready.store(1, Ordering::Relaxed);
    }
    pub fn consume(&self) -> u64 {
        if self.ready.load(Ordering::Relaxed) == 1 {
            return self.data.load(Ordering::Relaxed);
        }
        0
    }
}
EOF
cat > "$scratch/crates/core/src/seeded_l010.rs" <<'EOF'
use std::sync::Mutex;
pub struct Pair { a: Mutex<u32>, b: Mutex<u32> }
impl Pair {
    pub fn ab(&self) {
        let Ok(ga) = self.a.lock() else { return };
        let Ok(gb) = self.b.lock() else { return };
        let _ = (ga, gb);
    }
    pub fn ba(&self) {
        let Ok(gb) = self.b.lock() else { return };
        let Ok(ga) = self.a.lock() else { return };
        let _ = (ga, gb);
    }
}
EOF
cat > "$scratch/crates/serve/src/seeded_l011.rs" <<'EOF'
use std::sync::Mutex;
pub struct Shard { state: Mutex<u32> }
impl Shard {
    pub fn stall(&self) {
        let Ok(g) = self.state.lock() else { return };
        std::thread::sleep(std::time::Duration::from_millis(1));
        let _ = g;
    }
}
EOF
printf 'pub fn quantize(x: f64) -> u32 { x as u32 }\n' \
    > "$scratch/crates/thermal/src/seeded_l012.rs"
cat > "$scratch/crates/core/src/seeded_l013.rs" <<'EOF'
// oftec-lint: hot
pub fn hot_entry(n: usize) -> usize { helper(n) }
fn helper(n: usize) -> usize {
    let v: Vec<usize> = Vec::new();
    let _ = v;
    n
}
EOF
if ./target/release/oftec-lint --root "$scratch" --no-cache --format json \
    --deny all > "$scratch/report.jsonl"; then
    echo "oftec-lint failed to flag the seeded violations"
    rm -rf "$scratch"
    exit 1
fi
python3 - "$scratch/report.jsonl" <<'PY'
import json, sys
records = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
fired = {r["rule"] for r in records
         if r["type"] == "finding" and r["status"] == "active"}
missing = {"L001", "L008", "L009", "L010", "L011", "L012", "L013"} - fired
assert not missing, f"seeded violations not detected: {sorted(missing)}"
print("seeded-violation smoke ok:", len(fired), "rules fired")
PY
rm -rf "$scratch"

# Fault-injection smoke: the no-panic robustness suite must hold on the
# serial path and on a parallel one (worker panics cross the scoped-
# thread executor differently than caller-thread panics).
OFTEC_THREADS=1 cargo test -q -p oftec --test fault_injection
OFTEC_THREADS=8 cargo test -q -p oftec --test fault_injection

# Telemetry smoke: the CLI must emit a parseable registry snapshot with
# real solver activity, including SQP traces for both optimization phases
# (qsort at 1.05× power is infeasible at the start point, so Algorithm 1
# runs Optimization 2 and then Optimization 1).
snap=$(mktemp)
portfile=$(mktemp)
servesnap=$(mktemp)
servebench=$(mktemp)
redbench=$(mktemp)
obsport=$(mktemp)
obssnap=$(mktemp)
obsdump=$(mktemp)
burstport=$(mktemp)
burstsnap=$(mktemp)
burstbench=$(mktemp)
# On exit, reap any smoke server still running (a failed assert would
# otherwise orphan it holding our stdout pipe) before removing temp files.
trap 'for p in "${srv:-}" "${obssrv:-}" "${burstsrv:-}" "${dualsrv:-}"; do
        if [ -n "$p" ]; then kill "$p" 2> /dev/null || true; fi
    done
    rm -f "$snap" "$portfile" "$servesnap" "$servebench" "$redbench" \
    "$obsport" "$obssnap" "$obsdump" "$burstport" "$burstsnap" "$burstbench"' EXIT
./target/release/oftec-cli optimize qsort --scale 1.05 --telemetry-json "$snap" > /dev/null
python3 - "$snap" <<'PY'
import json, sys
snap = json.load(open(sys.argv[1]))
counters = snap["counters"]
assert counters.get("thermal.solves", 0) > 0, "no thermal solves recorded"
assert counters.get("sqp.iterations", 0) > 0, "no SQP iterations recorded"
for trace in ("sqp.opt1", "sqp.opt2"):
    assert snap["traces"].get(trace), f"missing convergence trace {trace}"
print("telemetry smoke ok:",
      counters["thermal.solves"], "thermal solves,",
      counters["sqp.iterations"], "SQP iterations")
PY

# Serve smoke: boot the cooling-control service on an ephemeral loopback
# port, drive it with the load generator's mixed traffic (valid, invalid,
# and repeated requests), then check the server-side counters and that a
# graceful drain exits 0.
: > "$portfile"
./target/release/oftec-cli serve --addr 127.0.0.1:0 --coarse \
    --port-file "$portfile" --telemetry-json "$servesnap" 2> /dev/null &
srv=$!
tries=0
while [ ! -s "$portfile" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "server never published its port"; kill "$srv"; exit 1; }
    sleep 0.1
done
addr="127.0.0.1:$(cat "$portfile")"
./target/release/oftec-loadgen --addr "$addr" --connections 32 --requests 20 \
    --key-reuse 0.6 --mix mixed --seed 7 --out "$servebench" --shutdown > /dev/null
wait "$srv"  # graceful drain: stop accepting, answer in-flight, exit 0
python3 - "$servesnap" "$servebench" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("serve.requests", 0) > 0, "no requests recorded"
assert counters.get("serve.cache.hits", 0) > 0, "no cache hits under 60% key reuse"
assert counters.get("serve.panics", 0) == 0, "server panicked under mixed load"
assert counters.get("serve.responses_err", 0) > 0, "mixed traffic must produce typed errors"
assert counters.get("serve.probes", 0) > 0, "health/shutdown probes not counted"
bench = json.load(open(sys.argv[2]))
assert bench["requests"] > 0 and bench["ok"] > 0, "loadgen recorded no traffic"
assert bench["latency"]["overall"]["p50_us"] > 0, "no latency percentiles"
# Errors are split by cause and the classes partition the error count.
# Mixed traffic's injected malformed requests are `rejected` (the server
# refusing them is correct behavior); `failed` — solver errors, panics,
# internal faults — must be zero on a healthy server.
split = (bench["shed"] + bench["deadline_exceeded"]
         + bench["rejected"] + bench["failed"])
assert split == bench["errors"], "error split does not partition errors"
assert bench["failed"] == 0, f"{bench['failed']} unexplained failures"
assert sum(bench["error_causes"].values()) == bench["errors"], \
    "per-kind causes do not partition errors"
# The client's ok count and the server's must agree exactly: probes
# (health/metrics scrapes) never touch the response counters.
assert bench["ok"] == counters["serve.responses_ok"], \
    "client/server ok counts disagree"
# Typed per-cause server counters partition serve.responses_err.
err_causes = sum(v for k, v in counters.items()
                 if k.startswith("serve.errors."))
assert err_causes == counters["serve.responses_err"], \
    "typed error counters do not partition responses_err"
# Per-stage latency breakdown from the response trace metadata.
for stage in ("parse", "queue", "batch", "cache", "solve"):
    assert bench["stages"][stage]["count"] > 0, f"no {stage} stage samples"
# The loadgen's live Prometheus scraper ran against the server mid-run.
assert bench["live_scrapes"]["scrapes"] > 0, "no live metrics scrapes"
assert bench["live_scrapes"]["last_serve_requests"] > 0, \
    "scraped exposition never showed serve_requests"
print("serve smoke ok:",
      counters["serve.requests"], "requests,",
      counters["serve.cache.hits"], "cache hits,",
      bench["live_scrapes"]["scrapes"], "live scrapes,",
      counters["serve.panics"], "panics")
PY

# Observability smoke: boot a fault-injected server (every solve errors),
# check the metrics endpoint's JSON and Prometheus forms agree, drive the
# solver-error SLO monitor to a breach, and confirm the flight recorder
# retains the failing traces and dumps them on the breach edge.
: > "$obsport"
./target/release/oftec-cli serve --addr 127.0.0.1:0 --coarse \
    --fault-kind err --fault-every 1 --flight-dump "$obsdump" \
    --port-file "$obsport" --telemetry-json "$obssnap" 2> /dev/null &
obssrv=$!
tries=0
while [ ! -s "$obsport" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "obs server never published its port"; kill "$obssrv"; exit 1; }
    sleep 0.1
done
python3 - "127.0.0.1:$(cat "$obsport")" <<'PY'
import json, socket, sys
host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
f = sock.makefile("rw", encoding="utf-8", newline="\n")
def rpc(line):
    f.write(line + "\n"); f.flush()
    return json.loads(f.readline())

# The JSON and Prometheus metric forms must expose the same counters.
js = rpc('{"cmd":"metrics"}')["result"]["counters"]
prom = rpc('{"cmd":"metrics","format":"prometheus"}')["result"]
exposed = {}
for line in prom.splitlines():
    if line and not line.startswith("#") and "{" not in line:
        name, value = line.rsplit(" ", 1)
        exposed[name] = float(value)
for name, value in js.items():
    prom_name = name.replace(".", "_")
    # serve.probes and serve.wire.* move between the two scrapes: each
    # scrape is itself a probe carried on the NDJSON wire.
    if name in ("serve.probes", "serve.wire.ndjson", "serve.wire.binary"):
        continue
    assert exposed.get(prom_name) == value, \
        f"{name}: prometheus says {exposed.get(prom_name)}, json says {value}"

# Every solve faults: drive the solver-error SLO monitor to a breach.
for i in range(10):
    resp = rpc(json.dumps({"cmd": "steady", "id": i, "benchmark": "qsort",
                           "rpm": 2400 + 10 * i, "amps": 1.0, "no_cache": True}))
    assert not resp["ok"] and resp["error"]["kind"] == "thermal", resp
    assert resp["trace"]["outcome"] == "solver", resp
slo = {m["name"]: m for m in rpc('{"cmd":"slo"}')["result"]["monitors"]}
solver = slo["serve.slo.solver_error_rate"]
assert solver["breached"] and solver["breaches"] >= 1, solver
# The flight recorder kept the failures.
trace = rpc('{"cmd":"trace","limit":16}')["result"]
assert trace["recorded"] >= 10, trace
assert any(not e["ok"] and e["outcome"] == "solver" for e in trace["entries"]), trace
rpc('{"cmd":"shutdown"}')
print("observability smoke ok:", trace["recorded"], "traces,",
      solver["breaches"], "solver-SLO breaches")
PY
wait "$obssrv"
python3 - "$obssnap" "$obsdump" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
assert counters.get("slo.breaches.solver_error_rate", 0) >= 1, \
    "breach counter missing from the final snapshot"
dump = [json.loads(l) for l in open(sys.argv[2]) if l.strip()]
assert dump and any(not e["ok"] for e in dump), \
    "SLO breach did not dump the flight recorder"
print("flight dump ok:", len(dump), "records")
PY

# Scale smoke (DESIGN.md §16): open-loop burst traffic at 32 connections
# over BOTH wire formats. Asserts the sustained/burst report blocks, a
# bounded shed rate, zero unexplained failures, and exact client/server
# counter agreement on each wire.
for wirefmt in ndjson binary; do
    : > "$burstport"
    ./target/release/oftec-cli serve --addr 127.0.0.1:0 --coarse --prewarm qsort \
        --port-file "$burstport" --telemetry-json "$burstsnap" 2> /dev/null &
    burstsrv=$!
    tries=0
    while [ ! -s "$burstport" ]; do
        tries=$((tries + 1))
        [ "$tries" -le 100 ] || { echo "burst server never published its port"; kill "$burstsrv"; exit 1; }
        sleep 0.1
    done
    ./target/release/oftec-loadgen --addr "127.0.0.1:$(cat "$burstport")" \
        --connections 32 --requests 25 --open-rps 120 --burst-requests 10 \
        --burst-mult 3 --wire "$wirefmt" --key-reuse 0.8 --mix mixed --seed 11 \
        --out "$burstbench" --shutdown > /dev/null
    wait "$burstsrv"
    python3 - "$burstsnap" "$burstbench" "$wirefmt" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1]))["counters"]
bench = json.load(open(sys.argv[2]))
wirefmt = sys.argv[3]
assert bench["config"]["wire"] == wirefmt, "report must record the wire format"
# Every injected request was answered: the open loop ran to completion.
assert bench["requests"] == 32 * 35, f"lost requests: {bench['requests']}"
assert bench["failed"] == 0, f"{bench['failed']} unexplained failures on {wirefmt}"
assert bench["failed_connections"] == 0, "connections died mid-run"
# Sustained and burst phases are reported separately, with tail latency.
sus, burst = bench["sustained"], bench["burst"]
assert sus["requests"] == 32 * 25 and burst["requests"] == 32 * 10
assert sus["achieved_rps"] > 0 and burst["achieved_rps"] > 0
assert sus["shed_rate"] < 0.2, f"sustained shed rate {sus['shed_rate']}"
assert bench["latency"]["overall"]["p999_us"] >= bench["latency"]["overall"]["p99_us"]
# Client and server agree exactly on each wire: no silent drops.
assert bench["ok"] == counters["serve.responses_ok"], \
    f"{wirefmt}: client ok {bench['ok']} != server {counters['serve.responses_ok']}"
assert counters.get("serve.panics", 0) == 0, "server panicked under burst load"
wire_counter = counters.get(f"serve.wire.{wirefmt}", 0)
assert wire_counter >= bench["requests"], \
    f"serve.wire.{wirefmt} = {wire_counter} missed workload messages"
print(f"burst smoke ok ({wirefmt}):",
      int(sus["achieved_rps"]), "rps sustained,",
      int(burst["achieved_rps"]), "rps burst,",
      f"shed {sus['shed_rate']:.3f}")
PY
done

# Dual-wire identity: the same solve over NDJSON and over a hand-packed
# binary frame (and interleaved on one connection) must return
# byte-identical result payloads.
: > "$burstport"
./target/release/oftec-cli serve --addr 127.0.0.1:0 --coarse \
    --port-file "$burstport" 2> /dev/null &
dualsrv=$!
tries=0
while [ ! -s "$burstport" ]; do
    tries=$((tries + 1))
    [ "$tries" -le 100 ] || { echo "dual-wire server never published its port"; kill "$dualsrv"; exit 1; }
    sleep 0.1
done
python3 - "127.0.0.1:$(cat "$burstport")" <<'PY'
import json, socket, struct, sys
host, port = sys.argv[1].rsplit(":", 1)
sock = socket.create_connection((host, int(port)), timeout=10)
buf = b""
def recv_line():
    global buf
    while b"\n" not in buf:
        buf += sock.recv(65536)
    line, buf = buf.split(b"\n", 1)
    return line.decode()
def recv_frame():
    global buf
    while len(buf) < 6:
        buf += sock.recv(65536)
    assert buf[0] == 0 and buf[1] == 1, "response frame header"
    n = struct.unpack("<I", buf[2:6])[0]
    while len(buf) < 6 + n:
        buf += sock.recv(65536)
    body, buf = buf[6:6 + n], buf[6 + n:]
    return body.decode()
def result_of(envelope):
    at = envelope.find('"result":')
    assert at >= 0, envelope
    return envelope[at + 9:-1]

# NDJSON steady (uncached solve).
sock.sendall(b'{"cmd":"steady","benchmark":"qsort","rpm":3000,"amps":1.0,"no_cache":true}\n')
nd = recv_line()
assert json.loads(nd)["ok"], nd
# The identical solve as a binary frame: cmd=steady(2), flags=NO_CACHE(1),
# benchmark index 5 (qsort), reserved 0, id, scale, rpm, amps, points,
# deadline — interleaved on the SAME connection.
body = struct.pack("<BBBBQdddHHQ", 2, 1, 5, 0, 0, 1.0, 3000.0, 1.0, 0, 0, 0)
sock.sendall(bytes([0, 1]) + struct.pack("<I", len(body)) + body)
bn = recv_frame()
assert json.loads(bn)["ok"], bn
assert result_of(nd) == result_of(bn), \
    "NDJSON and binary results differ for the same solve"
# And the cached replay across wires is byte-identical too.
sock.sendall(b'{"cmd":"steady","benchmark":"qsort","rpm":3000,"amps":1.0}\n')
nd2 = recv_line()
body = struct.pack("<BBBBQdddHHQ", 2, 0, 5, 0, 0, 1.0, 3000.0, 1.0, 0, 0, 0)
sock.sendall(bytes([0, 1]) + struct.pack("<I", len(body)) + body)
bn2 = recv_frame()
assert json.loads(bn2)["cached"], bn2
assert result_of(nd2) == result_of(bn2)
sock.sendall(b'{"cmd":"shutdown"}\n')
recv_line()
print("dual-wire identity ok: results byte-identical across formats")
PY
wait "$dualsrv"

# Reduced-order solve smoke (DESIGN.md §14): build the POD basis on the
# coarse DAC'14 package, sweep an operating-point grid, and assert the
# reduced path actually ran (reduction.solves > 0) and stayed inside the
# 0.1 K die-temperature accuracy budget against the full CG reference.
./target/release/reduction_accuracy --smoke --out "$redbench" > /dev/null
python3 - "$redbench" <<'PY'
import json, sys
bench = json.load(open(sys.argv[1]))
assert bench["grid"]["compared"] > 0, "no comparable grid points"
assert bench["grid"]["disagreements"] == 0, "reduced/full solvability disagreement"
assert bench["max_abs_error_k"] < 0.1, \
    f"reduced solve error {bench['max_abs_error_k']} K exceeds 0.1 K budget"
assert bench["counters"]["reduction.solves"] > 0, "reduced path never engaged"
print("reduction smoke ok:",
      bench["grid"]["compared"], "points,",
      "max err %.2e K," % bench["max_abs_error_k"],
      "speedup %.1fx" % bench["latency"]["speedup"])
PY

# Fleet smoke (DESIGN.md §17): a small sharded sweep of the seeded
# scenario population. Asserts the verdict partition sums to the scenario
# count with zero out-of-tolerance discrepancies, that a run killed
# mid-shard (with a torn tail past its checkpoint) resumes to the exact
# bytes of an uninterrupted run, and that a seeded fault injection exits
# nonzero with a reproducer that replays.
fleetdir=$(mktemp -d)
FLEET_SEED=20260808
./target/release/oftec-fleet run --seed "$FLEET_SEED" --shards 2 --per-shard 200 \
    --out "$fleetdir/full" --cross-check-divisor 16 > "$fleetdir/summary.json"
python3 - "$fleetdir/summary.json" <<'PY'
import json, sys
s = json.load(open(sys.argv[1]))
v = s["verdicts"]
total = sum(v[k] for k in ("feasible", "fan_only", "tec_required",
                           "runaway", "solver_error"))
assert s["scenarios"] == 400, f"expected 400 scenarios, got {s['scenarios']}"
assert total == s["scenarios"], "verdict partition does not sum to scenario count"
assert s["cross_checks"] > 0, "subsample selected no cross-checks"
assert s["discrepancies"] == 0, f"{s['discrepancies']} solver discrepancies"
assert not s["stopped_early"]
print("fleet sweep ok:", s["scenarios"], "scenarios,",
      s["cross_checks"], "cross-checked,", v["tec_required"], "tec_required")
PY
# Kill-then-resume: stop mid-shard, corrupt the tail past the checkpoint,
# resume, and compare the concatenated verdict stream byte for byte.
./target/release/oftec-fleet run --seed "$FLEET_SEED" --shards 2 --per-shard 200 \
    --out "$fleetdir/resumed" --cross-check-divisor 16 --stop-after 130 > /dev/null
printf '{"torn":' >> "$fleetdir/resumed/shard-0000.jsonl"
./target/release/oftec-fleet run --seed "$FLEET_SEED" --shards 2 --per-shard 200 \
    --out "$fleetdir/resumed" --cross-check-divisor 16 > /dev/null
cat "$fleetdir/full"/shard-*.jsonl > "$fleetdir/full.cat"
cat "$fleetdir/resumed"/shard-*.jsonl > "$fleetdir/resumed.cat"
cmp "$fleetdir/full.cat" "$fleetdir/resumed.cat" \
    || { echo "resumed fleet stream differs from uninterrupted run"; rm -rf "$fleetdir"; exit 1; }
echo "fleet resume ok: $(wc -c < "$fleetdir/full.cat") bytes identical"
# The differential gate must bite: a seeded NaN fault in the SQP path
# (seed 9000's scenario 0/0 is comfortably feasible, so the poisoned
# solver visibly diverges from the grid oracle) exits 3 and leaves a
# minimized reproducer that replays with exit 0.
if ./target/release/oftec-fleet run --seed 9000 --shards 1 --per-shard 1 \
    --out "$fleetdir/fault" --fault 0:0:sqp:non_finite:0 > /dev/null 2>&1; then
    echo "fleet gate failed to flag a seeded solver fault"
    rm -rf "$fleetdir"
    exit 1
fi
./target/release/oftec-fleet repro "$fleetdir/fault"/repro_*.json > /dev/null \
    || { echo "fleet reproducer did not replay"; rm -rf "$fleetdir"; exit 1; }
echo "fleet fault gate ok: seeded discrepancy caught, minimized and replayed"
rm -rf "$fleetdir"
