#!/usr/bin/env sh
# Repository gate: build, tests, lints, formatting.
set -eu

cargo build --release --workspace
cargo test -q --workspace
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all --check
