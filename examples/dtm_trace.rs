//! Dynamic thermal management in the time domain: drive the thermal
//! network with the benchmark's actual time-varying power trace (rather
//! than the paper's conservative per-unit maximum) at OFTEC's optimized
//! operating point, and watch the hot-spot trajectory.
//!
//! ```text
//! cargo run --release --example dtm_trace [benchmark]
//! ```

use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;

fn sparkline(values: &[f64]) -> String {
    const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    values
        .iter()
        .map(|v| RAMP[(((v - lo) / span) * 7.0).round() as usize])
        .collect()
}

fn main() {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .copied()
                .find(|b| b.name().eq_ignore_ascii_case(&n))
        })
        .unwrap_or(Benchmark::Susan);
    let system = CoolingSystem::for_benchmark(benchmark);

    // Optimize against the max-power envelope, as the paper does.
    let sol = match Oftec::default().run(&system) {
        Ok(OftecOutcome::Optimized(sol)) => sol,
        Ok(OftecOutcome::Infeasible(_)) => {
            println!("{benchmark} is not coolable");
            return;
        }
        Err(e) => {
            println!("solver error: {e}");
            return;
        }
    };
    println!(
        "{benchmark}: OFTEC operating point ω* = {:.0} RPM, I* = {:.2} A",
        sol.operating_point.fan_speed.rpm(),
        sol.operating_point.tec_current.amperes()
    );
    println!(
        "steady max-power envelope: {:.2} °C (the number OFTEC guarantees)",
        sol.max_temperature.celsius()
    );

    // Now the actual workload: a 2-second phased trace at 1 ms sampling.
    let trace = benchmark.synthesize_trace(system.floorplan(), 2000);
    let driven = match system.tec_model().simulate_power_trace(
        sol.operating_point,
        &trace,
        Some(&sol.solution),
        20,
    ) {
        Ok(d) => d,
        Err(e) => {
            println!("transient simulation failed at the optimized point: {e}");
            return;
        }
    };

    let celsius: Vec<f64> = driven.max_chip.iter().map(|t| t.celsius()).collect();
    println!("\nhot-spot trajectory over the 2 s trace (one char = 20 ms):");
    println!("  {}", sparkline(&celsius));
    println!(
        "  range {:.2}–{:.2} °C, envelope margin {:.2} K at the worst moment",
        celsius.iter().cloned().fold(f64::INFINITY, f64::min),
        celsius.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        sol.max_temperature.celsius() - celsius.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
    );
    println!(
        "\nthe per-unit-maximum envelope the paper feeds OFTEC is conservative: \
         real phase behaviour stays below it, with slack available for less \
         pessimistic control (e.g. the LUT controller per phase)"
    );
}
