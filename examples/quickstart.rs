//! Quickstart: optimize the cooling of one benchmark with OFTEC.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;

fn main() {
    // The paper's setup for one MiBench workload: Alpha 21264 die,
    // Table 1 package, thin-film TECs everywhere except the caches,
    // T_max = 90 °C, ambient 45 °C.
    let system = CoolingSystem::for_benchmark(Benchmark::Fft);
    println!(
        "workload: {} ({:.1} W max dynamic power)",
        system.name(),
        system.total_dynamic_power().watts()
    );

    // Algorithm 1: find (ω*, I*_TEC) minimizing
    // 𝒫 = P_leakage + P_TEC + P_fan subject to every die cell < 90 °C.
    match Oftec::default().run(&system) {
        Err(e) => println!("solver error: {e}"),
        Ok(OftecOutcome::Optimized(sol)) => {
            println!(
                "ω* = {:.0} RPM, I* = {:.2} A  ({} ms)",
                sol.operating_point.fan_speed.rpm(),
                sol.operating_point.tec_current.amperes(),
                sol.runtime.as_millis()
            );
            println!(
                "max die temperature {:.2} °C (limit {:.0} °C)",
                sol.max_temperature.celsius(),
                system.t_max().celsius()
            );
            let b = sol.solution.breakdown();
            println!(
                "cooling power 𝒫 = {:.2} W  (leakage {:.2} + TEC {:.2} + fan {:.2})",
                b.objective().watts(),
                b.leakage.watts(),
                b.tec.watts(),
                b.fan.watts()
            );
        }
        Ok(OftecOutcome::Infeasible(report)) => {
            println!(
                "no cooling settings can meet T_max; best achievable {:.2} °C",
                report.best_temperature.celsius()
            );
        }
    }
}
