//! Design-space exploration: render the Figure 6(a)(b) surfaces of one
//! benchmark as ASCII heat maps and locate their minima.
//!
//! ```text
//! cargo run --release --example design_space [benchmark]
//! ```

use oftec::{CoolingSystem, SweepGrid};
use oftec_power::Benchmark;

fn pick_benchmark(name: Option<String>) -> Benchmark {
    match name.as_deref() {
        Some(n) => Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(n))
            .unwrap_or_else(|| {
                eprintln!("unknown benchmark `{n}`, using basicmath");
                Benchmark::Basicmath
            }),
        None => Benchmark::Basicmath,
    }
}

fn shade(frac: f64) -> char {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    RAMP[(frac.clamp(0.0, 1.0) * 9.0).round() as usize]
}

fn heatmap(
    title: &str,
    grid: &oftec::SweepResult,
    value: impl Fn(&oftec::SweepSample) -> Option<f64>,
) {
    let vals: Vec<f64> = grid.samples.iter().filter_map(&value).collect();
    let lo = vals.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    println!("\n{title}   [{lo:.1} .. {hi:.1}], 'X' = thermal runaway");
    println!("I(A) ↑, ω(RPM) →");
    // Rows: current from high to low; columns: omega ascending.
    for ci in (0..grid.current_points).rev() {
        let mut row = String::new();
        for wi in 0..grid.omega_points {
            let s = &grid.samples[wi * grid.current_points + ci];
            match value(s) {
                Some(v) => row.push(shade((v - lo) / (hi - lo).max(1e-12))),
                None => row.push('X'),
            }
        }
        let amps = 5.0 * ci as f64 / (grid.current_points - 1) as f64;
        println!("{amps:>4.1} |{row}|");
    }
}

fn main() {
    let benchmark = pick_benchmark(std::env::args().nth(1));
    let system = CoolingSystem::for_benchmark(benchmark);
    println!(
        "sweeping the (ω, I_TEC) plane for {} — the paper's Figure 6(a)(b)",
        system.name()
    );
    let sweep = SweepGrid {
        omega_points: 56,
        current_points: 21,
    }
    .run(system.tec_model());

    heatmap("maximum die temperature 𝒯 (°C)", &sweep, |s| {
        s.max_temp_celsius
    });
    heatmap("cooling power 𝒫 (W)", &sweep, |s| s.power_watts);

    if let Some((t, cool)) = sweep
        .coolest()
        .and_then(|c| c.max_temp_celsius.map(|t| (t, c)))
    {
        println!(
            "\ncoolest:  {t:.2} °C at ω = {:.0} RPM, I = {:.2} A",
            cool.omega_rpm, cool.current_a
        );
    }
    if let Some((p, cheap)) = sweep.cheapest().and_then(|c| c.power_watts.map(|p| (p, c))) {
        println!(
            "cheapest: {p:.2} W at ω = {:.0} RPM, I = {:.2} A",
            cheap.omega_rpm, cheap.current_a
        );
    }
    println!(
        "runaway region: {:.1}% of the plane",
        100.0 * sweep.runaway_fraction()
    );
}
