//! Using the library beyond the bundled Alpha 21264: define a custom
//! four-core die, a custom workload, and a custom leakage budget, then
//! optimize its hybrid cooling — the path a user takes for their own chip.
//!
//! ```text
//! cargo run --release --example custom_chip
//! ```

use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_floorplan::{Floorplan, FunctionalUnit, Rect};
use oftec_power::McpatBudget;
use oftec_thermal::PackageConfig;
use oftec_units::{Length, Power, Temperature};
use std::process::ExitCode;

fn main() -> ExitCode {
    // A 12 × 12 mm quad-core die: four 5×5 mm cores in the corners, an
    // L2 cross in the middle.
    let mm = Length::from_mm;
    let core = |name: &str, x: f64, y: f64| {
        FunctionalUnit::new(name, Rect::new(mm(x), mm(y), mm(5.0), mm(5.0)))
    };
    let floorplan = Floorplan::new(
        "quadcore",
        mm(12.0),
        mm(12.0),
        vec![
            core("Core0", 0.0, 0.0),
            core("Core1", 7.0, 0.0),
            core("Core2", 0.0, 7.0),
            core("Core3", 7.0, 7.0),
            FunctionalUnit::new("L2_v", Rect::new(mm(5.0), mm(0.0), mm(2.0), mm(12.0))),
            FunctionalUnit::new("L2_h0", Rect::new(mm(0.0), mm(5.0), mm(5.0), mm(2.0))),
            FunctionalUnit::new("L2_h1", Rect::new(mm(7.0), mm(5.0), mm(5.0), mm(2.0))),
        ],
    );
    if let Err(e) = floorplan.validate() {
        eprintln!("custom floorplan does not tile the die: {e}");
        return ExitCode::FAILURE;
    }

    // Asymmetric workload: Core0 is blasting, Core3 moderate, others idle.
    let dyn_power: Vec<f64> = floorplan
        .units()
        .iter()
        .map(|u| match u.name() {
            "Core0" => 22.0,
            "Core3" => 9.0,
            "Core1" | "Core2" => 1.5,
            _ => 2.0, // L2 slices
        })
        .collect();

    // 20 W leakage budget at 45 °C (a leakier process than the default).
    let leakage = McpatBudget {
        total_at_ref: Power::from_watts(6.0),
        ..McpatBudget::alpha21264_22nm()
    }
    .distribute(&floorplan);

    // The Table 1 package, but a tighter 85 °C limit.
    let system = CoolingSystem::new(
        "quadcore-hotspot",
        floorplan,
        PackageConfig::dac14(),
        dyn_power,
        leakage,
        Temperature::from_celsius(85.0),
    );
    println!(
        "custom die: {} units, {:.1} W dynamic, T_max {:.0} °C",
        system.floorplan().units().len(),
        system.total_dynamic_power().watts(),
        system.t_max().celsius()
    );

    match Oftec::default().run(&system) {
        Err(e) => println!("solver error: {e}"),
        Ok(OftecOutcome::Optimized(sol)) => {
            println!(
                "ω* = {:.0} RPM, I* = {:.2} A, 𝒫 = {:.2} W, T = {:.2} °C",
                sol.operating_point.fan_speed.rpm(),
                sol.operating_point.tec_current.amperes(),
                sol.cooling_power.watts(),
                sol.max_temperature.celsius()
            );
            println!("\nper-unit maximum temperatures:");
            let temps = sol.solution.unit_max_temperatures();
            for (unit, t) in system.tec_model().unit_names().iter().zip(&temps) {
                println!("  {unit:>8}: {:.2} °C", t.celsius());
            }
        }
        Ok(OftecOutcome::Infeasible(report)) => {
            println!(
                "this workload cannot be cooled below {:.0} °C (best {:.2} °C) — \
                 throttle Core0 or raise the limit",
                system.t_max().celsius(),
                report.best_temperature.celsius()
            );
        }
    }
    ExitCode::SUCCESS
}
