//! Development probe: prints per-benchmark steady states for the fan-only
//! baseline at ω_max and the hybrid TEC model over a coarse (ω, I) grid,
//! to verify the workload calibration reproduces the paper's hot/cool
//! split. Not part of the paper's experiments (see `oftec-bench` for
//! those).

use oftec_floorplan::alpha21264;
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current};

fn main() {
    let fp = alpha21264();
    let cfg = PackageConfig::dac14();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);

    println!("=== fan-only baseline at ω_max (5000 RPM) ===");
    for b in Benchmark::ALL {
        let dyn_p = match b.max_dynamic_power(&fp) {
            Ok(p) => p,
            Err(e) => {
                println!("{:>14}  cannot synthesize: {e}", b.name());
                continue;
            }
        };
        let total: f64 = dyn_p.iter().sum();
        let model = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &leak);
        let op = OperatingPoint::fan_only(AngularVelocity::from_rpm(5000.0));
        match model.solve(op) {
            Ok(sol) => println!(
                "{:>14}  dyn {:5.1} W  Tmax {:6.2} °C  leak {:5.2} W  {}",
                b.name(),
                total,
                sol.max_chip_temperature().celsius(),
                sol.breakdown().leakage.watts(),
                if sol.max_chip_temperature().celsius() < 90.0 {
                    "OK"
                } else {
                    "FAIL"
                },
            ),
            Err(e) => println!("{:>14}  dyn {:5.1} W  {}", b.name(), total, e),
        }
    }

    println!("\n=== hybrid TEC grid probe (best point found) ===");
    for b in Benchmark::ALL {
        let dyn_p = match b.max_dynamic_power(&fp) {
            Ok(p) => p,
            Err(e) => {
                println!("{:>14}  cannot synthesize: {e}", b.name());
                continue;
            }
        };
        let model = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p, &leak);
        let mut best: Option<(f64, f64, f64, f64)> = None; // (T, P, rpm, amps)
        let mut coolest: Option<(f64, f64, f64)> = None; // (T, rpm, amps)
        for rpm_i in (500..=5000).step_by(500) {
            for amp_i in 0..=10 {
                let op = OperatingPoint::new(
                    AngularVelocity::from_rpm(rpm_i as f64),
                    Current::from_amperes(amp_i as f64 * 0.5),
                );
                if let Ok(sol) = model.solve(op) {
                    let t = sol.max_chip_temperature().celsius();
                    let p = sol.objective_power().watts();
                    if coolest.is_none_or(|(ct, _, _)| t < ct) {
                        coolest = Some((t, rpm_i as f64, amp_i as f64 * 0.5));
                    }
                    if t < 90.0 && best.is_none_or(|(_, bp, _, _)| p < bp) {
                        best = Some((t, p, rpm_i as f64, amp_i as f64 * 0.5));
                    }
                }
            }
        }
        match best {
            Some((t, p, rpm, amps)) => println!(
                "{:>14}  best 𝒫 {:6.2} W at ({:4.0} RPM, {:3.1} A), T {:6.2} °C",
                b.name(),
                p,
                rpm,
                amps,
                t
            ),
            None => match coolest {
                Some((t, rpm, amps)) => println!(
                    "{:>14}  INFEASIBLE; coolest {:6.2} °C at ({:4.0} RPM, {:3.1} A)",
                    b.name(),
                    t,
                    rpm,
                    amps
                ),
                None => println!("{:>14}  RUNAWAY everywhere", b.name()),
            },
        }
    }
}
