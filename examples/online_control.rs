//! Online control (the paper's §6.2 deployment sketch): pre-compute a
//! look-up table of OFTEC solutions over power classes, serve settings
//! instantly as the workload shifts, and bridge sudden spikes with the
//! transient current boost while a fresh solution would be computed.
//!
//! ```text
//! cargo run --release --example online_control
//! ```

use oftec::controller::{LutController, TransientBoost};
use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_units::{Current, Power};

fn main() {
    // Build the LUT from a reference workload, spanning 15–45 W of total
    // dynamic power in six classes. Each class stores a full OFTEC
    // optimization of its upper edge.
    let reference = CoolingSystem::for_benchmark(Benchmark::Susan);
    println!("pre-computing LUT (6 classes over 15–63 W)…");
    let lut = LutController::precompute(&reference, 15.0, 63.0, 6);
    println!("class edges (W): {:?}", lut.edges());

    // Phase 1: the runtime sees a sequence of workload power readings and
    // serves table entries with zero optimization latency.
    println!("\nonline lookups:");
    for watts in [17.0, 26.0, 33.0, 41.0] {
        match lut.lookup(Power::from_watts(watts)) {
            Some(op) => println!(
                "  {watts:>5.1} W → ω = {:>4.0} RPM, I = {:.2} A",
                op.fan_speed.rpm(),
                op.tec_current.amperes()
            ),
            None => println!("  {watts:>5.1} W → class uncoolable or out of range"),
        }
    }

    // Phase 2: a sudden spike lands between re-optimizations. Bridge it
    // with the 1 A / 1 s transient boost (Peltier acts instantly, the
    // Joule penalty arrives late). The running workload sits in the 45 W
    // class; simulate the boost on that workload from its class setting.
    let running_watts = 45.0;
    let running = reference.scaled(running_watts / reference.total_dynamic_power().watts());
    let Some(op) = lut.lookup(Power::from_watts(running_watts)) else {
        println!("the {running_watts:.1} W class is uncoolable; skipping the boost demo");
        return;
    };
    println!("\ntransient boost from the {running_watts:.1} W class setting:");
    let report = match (TransientBoost {
        boost: Current::from_amperes(1.0),
        duration_seconds: 1.0,
    })
    .simulate(&running, op)
    {
        Ok(r) => r,
        Err(e) => {
            println!("boost simulation failed: {e}");
            return;
        }
    };
    println!(
        "  steady {:.2} °C → boosted minimum {:.2} °C (transient gain {:.2} K)",
        report.steady_temperature.celsius(),
        report.boosted_minimum.celsius(),
        report.peak_gain()
    );
    println!(
        "  after 1 s the trajectory settles at {:.2} °C as the Joule heat arrives",
        report.end_temperature.celsius()
    );
}
