//! Scaling OFTEC beyond the paper's single-core Alpha: synthetic `n × n`
//! multicore dies with one core blasting, TECs over the cores only (L2
//! slices excluded, like the paper excludes the caches).
//!
//! ```text
//! cargo run --release --example multicore_scaling
//! ```

use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_floorplan::multicore_floorplan;
use oftec_power::McpatBudget;
use oftec_thermal::PackageConfig;
use oftec_units::{Length, Power, Temperature};

fn main() {
    println!("one hot core on an n×n multicore, 15.9 mm die, T_max 90 °C:");
    println!(
        "{:>5} | {:>9} | {:>8} | {:>9} | {:>9} | {:>10}",
        "cores", "hot core", "ω* RPM", "I* (A)", "𝒫 (W)", "T_max °C"
    );
    for n in [2usize, 3, 4] {
        let fp = multicore_floorplan(Length::from_mm(15.9), n, 0.6);
        // The hot core burns 24 W; the others idle at 2 W; L2 slices 1 W.
        let dyn_power: Vec<f64> = fp
            .units()
            .iter()
            .map(|u| match u.name() {
                "Core0" => 24.0,
                name if name.starts_with("Core") => 2.0,
                _ => 1.0,
            })
            .collect();
        let leakage = McpatBudget {
            total_at_ref: Power::from_watts(4.5),
            ..McpatBudget::alpha21264_22nm()
        }
        .distribute(&fp);
        let excluded: Vec<String> = fp
            .units()
            .iter()
            .filter(|u| u.name().starts_with("L2_"))
            .map(|u| u.name().to_owned())
            .collect();
        let excluded_refs: Vec<&str> = excluded.iter().map(String::as_str).collect();
        let system = CoolingSystem::with_tec_exclusions(
            format!("multicore{n}x{n}"),
            fp,
            PackageConfig::dac14(),
            dyn_power,
            leakage,
            Temperature::from_celsius(90.0),
            &excluded_refs,
        );
        match Oftec::default().run(&system) {
            Err(e) => println!("{:>2}×{:<2} | solver error: {e}", n, n),
            Ok(OftecOutcome::Optimized(sol)) => {
                let core0 = system
                    .tec_model()
                    .unit_names()
                    .iter()
                    .position(|u| u == "Core0");
                let hot = core0
                    .map(|i| sol.solution.unit_max_temperatures()[i].celsius())
                    .unwrap_or(f64::NAN);
                println!(
                    "{:>2}×{:<2} | {:>8.2}° | {:>8.0} | {:>9.2} | {:>9.2} | {:>10.2}",
                    n,
                    n,
                    hot,
                    sol.operating_point.fan_speed.rpm(),
                    sol.operating_point.tec_current.amperes(),
                    sol.cooling_power.watts(),
                    sol.max_temperature.celsius(),
                );
            }
            Ok(OftecOutcome::Infeasible(report)) => println!(
                "{:>2}×{:<2} | infeasible (best {:.2} °C)",
                n,
                n,
                report.best_temperature.celsius()
            ),
        }
    }
    println!(
        "\nsmaller cores concentrate the same 24 W into less area: the optimizer \
         responds with more TEC current and fan speed — hot-spot density, not \
         total power, drives the cooling budget"
    );
}
