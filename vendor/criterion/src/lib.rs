//! Offline stand-in for `criterion`.
//!
//! Keeps the authoring surface this workspace uses — `criterion_group!`,
//! `criterion_main!`, `bench_function`, `benchmark_group`/`sample_size`,
//! `BenchmarkId::from_parameter`, `Bencher::iter` — and measures with
//! plain `std::time::Instant`: per benchmark, one calibration pass sizes
//! the iteration count so each sample runs a few tens of milliseconds,
//! then `sample_size` samples are timed and min/mean/max per-iteration
//! times reported. No statistics engine, no HTML reports.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    /// Set when the binary is run by `cargo test` (`--test` flag): each
    /// benchmark body runs exactly once, as a smoke test.
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for arg in std::env::args().skip(1) {
            if arg == "--test" {
                test_mode = true;
            } else if !arg.starts_with('-') && filter.is_none() {
                filter = Some(arg);
            }
        }
        Criterion {
            filter,
            test_mode,
            sample_size: 10,
        }
    }
}

impl Criterion {
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.into_benchmark_id().0;
        run_benchmark(self, &name, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().0);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let saved = std::mem::replace(&mut self.criterion.sample_size, samples);
        run_benchmark(self.criterion, &full, f);
        self.criterion.sample_size = saved;
        self
    }

    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Timing context passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    if let Some(filter) = &c.filter {
        if !name.contains(filter.as_str()) {
            return;
        }
    }
    if c.test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Calibration: one iteration to size the per-sample batch at roughly
    // 50 ms without letting slow benchmarks balloon the run.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let single = b.elapsed.max(Duration::from_nanos(1));
    let target = Duration::from_millis(50);
    let iters = (target.as_nanos() / single.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter: Vec<f64> = Vec::with_capacity(c.sample_size);
    for _ in 0..c.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "{name:<40} time:   [{} {} {}]  ({} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
        per_iter.len(),
    );
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a function running every listed benchmark with a fresh
/// default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher {
            iters: 17,
            elapsed: Duration::ZERO,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 17);
        assert!(b.elapsed > Duration::ZERO || calls == 17);
    }

    #[test]
    fn time_formatting() {
        assert_eq!(fmt_time(2.5), "2.500 s");
        assert_eq!(fmt_time(2.5e-3), "2.500 ms");
        assert_eq!(fmt_time(2.5e-6), "2.500 us");
        assert_eq!(fmt_time(2.5e-9), "2.5 ns");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("a", "b").0, "a/b");
        assert_eq!(BenchmarkId::from_parameter(42).0, "42");
    }
}
