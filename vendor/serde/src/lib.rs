//! Offline stand-in for `serde`.
//!
//! The container this workspace builds in has no network access and no
//! registry cache, so the real serde cannot be resolved. Both producers
//! (`#[derive]` via the vendored `serde_derive`) and consumers
//! (`serde_json`) live in this repository, which lets the data model be a
//! simple owned value tree instead of serde's zero-copy visitor protocol:
//!
//! - [`Serialize`] renders a value into a [`Value`] tree;
//! - [`Deserialize`] rebuilds a value from a [`Value`] tree.
//!
//! The public surface mirrors the subset of serde this workspace uses:
//! derive macros re-exported under the same names, impls for the std types
//! that appear in derived structs, and nothing else.

pub use serde_derive::{Deserialize, Serialize};

/// The serialized form: a JSON-shaped owned tree.
///
/// Maps preserve insertion order (they are association lists, not hash
/// maps) so serialization is deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// First value for `key` in an association-list map. Used by derived
/// `Deserialize` impls; public for the macro expansion only.
#[doc(hidden)]
pub fn __find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization/deserialization error: a message.
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Debug for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders `self` as a [`Value`] tree.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::Num(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(f64::deserialize(v)? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                // All integers in this workspace fit f64's exact range.
                Value::Num(*self as f64)
            }
        }

        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::msg("expected integer"))?;
                if n.fract() != 0.0 || !n.is_finite() {
                    return Err(Error::msg("expected integer, found fraction"));
                }
                if n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::msg("integer out of range"));
                }
                Ok(n as $t)
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::msg("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

macro_rules! tuple_impls {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$idx.serialize()),+])
            }
        }

        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::msg("expected tuple sequence"))?;
                let expected = [$($idx),+].len();
                if seq.len() != expected {
                    return Err(Error::msg("wrong tuple length"));
                }
                Ok(($($t::deserialize(&seq[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(f64::deserialize(&1.5f64.serialize()).unwrap(), 1.5);
        assert_eq!(usize::deserialize(&7usize.serialize()).unwrap(), 7);
        assert!(usize::deserialize(&Value::Num(1.5)).is_err());
        assert_eq!(
            Option::<f64>::deserialize(&Value::Null).unwrap(),
            None::<f64>
        );
        let v = vec![1.0, 2.0];
        assert_eq!(Vec::<f64>::deserialize(&v.serialize()).unwrap(), v);
    }

    #[test]
    fn map_find_takes_first() {
        let m = vec![
            ("a".to_string(), Value::Num(1.0)),
            ("b".to_string(), Value::Num(2.0)),
        ];
        assert_eq!(__find(&m, "b"), Some(&Value::Num(2.0)));
        assert_eq!(__find(&m, "c"), None);
    }
}
