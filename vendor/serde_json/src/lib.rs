//! Offline stand-in for `serde_json`: prints and parses JSON over the
//! vendored serde's [`serde::Value`] tree.
//!
//! Floats are written with Rust's shortest-round-trip `Display`, which is
//! exactly the `float_roundtrip` guarantee this workspace asks of the real
//! crate: `from_str(&to_string(&x))` reproduces `x` bit-for-bit for finite
//! values. Non-finite floats are an error, as in real serde_json.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Serializes any [`Serialize`] value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize())?;
    Ok(out)
}

/// Serializes any [`Serialize`] value to indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&mut out, &value.serialize(), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg("trailing characters after JSON value"));
    }
    T::deserialize(&v)
}

fn write_value(out: &mut String, v: &Value) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => write_number(out, *n)?,
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_value_pretty(out: &mut String, v: &Value, indent: usize) -> Result<(), Error> {
    const STEP: usize = 2;
    match v {
        Value::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                write_value_pretty(out, item, indent + STEP)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, item, indent + STEP)?;
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_value(out, other)?,
    }
    Ok(())
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

fn write_number(out: &mut String, n: f64) -> Result<(), Error> {
    if !n.is_finite() {
        return Err(Error::msg("cannot serialize non-finite float as JSON"));
    }
    use std::fmt::Write;
    // Rust's f64 Display is the shortest decimal that round-trips.
    write!(out, "{n}").expect("writing to String cannot fail");
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to String cannot fail");
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::msg("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::msg("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::msg(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            // Surrogate pairs don't occur in this workspace's
                            // data; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::msg("unsupported \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::msg("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance over one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().expect("non-empty by peek");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::msg("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, 6.02214076e23, -0.0, 42.0, f64::MIN_POSITIVE] {
            let s = to_string(&x).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{s}");
        }
    }

    #[test]
    fn structures_round_trip() {
        let v: Vec<Option<f64>> = vec![Some(1.5), None, Some(-2.25)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1.5,null,-2.25]");
        let back: Vec<Option<f64>> = from_str(&s).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn strings_escape() {
        let s = to_string(&String::from("a\"b\\c\nd")).unwrap();
        assert_eq!(s, r#""a\"b\\c\nd""#);
        let back: String = from_str(&s).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn pretty_prints_nested() {
        let v: Vec<Vec<f64>> = vec![vec![1.0], vec![]];
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(s, "[\n  [\n    1\n  ],\n  []\n]");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("1.0 extra").is_err());
        assert!(from_str::<f64>("nope").is_err());
        assert!(to_string(&f64::NAN).is_err());
    }
}
