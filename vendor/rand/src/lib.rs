//! Offline stand-in for `rand` 0.8.
//!
//! Implements the subset this workspace uses — `StdRng::seed_from_u64` +
//! `Rng::gen_range` over `f64` ranges — **bit-exactly** compatible with
//! the real crate, so seed-calibrated behavior (workload synthesis
//! envelopes, benchmark power draws) reproduces upstream sequences:
//!
//! - `StdRng` is ChaCha12 (RFC 8439 core, 12 rounds, 64-bit block
//!   counter, zero stream), as in `rand 0.8` / `rand_chacha 0.3`;
//! - `seed_from_u64` expands the seed with the PCG-XSH-RR step from
//!   `rand_core 0.6`;
//! - `gen_range(Range<f64>)` uses rand's uniform-float algorithm: a
//!   mantissa draw in `[1, 2)` scaled as `v * scale + (low - scale)`.
//!
//! Integer ranges use a plain modulo draw (nothing in this workspace
//! samples integers through `rand`; they are provided for completeness
//! and make no upstream-compatibility claim).

use std::ops::Range;

/// Core 64-bit generator interface.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;

    fn next_u64(&mut self) -> u64 {
        // Low word first, as in rand_core's BlockRng over u32 words.
        let low = u64::from(self.next_u32());
        let high = u64::from(self.next_u32());
        (high << 32) | low
    }
}

/// Construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling over [`RngCore`] generators.
pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let scale = self.end - self.start;
        loop {
            // 52 mantissa bits with exponent 0 → uniform in [1, 2).
            let mantissa = rng.next_u64() >> 12;
            let value1_2 = f64::from_bits((1023u64 << 52) | mantissa);
            let res = value1_2 * scale + (self.start - scale);
            if res < self.end {
                return res;
            }
        }
    }
}

macro_rules! int_range_impls {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_range_impls!(usize, u64, u32, i64, i32);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

    /// ChaCha12 generator matching `rand 0.8`'s `StdRng` stream.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 16],
        idx: usize,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            // rand_core 0.6's default seed expansion (PCG-XSH-RR steps).
            const MUL: u64 = 6_364_136_223_846_793_005;
            const INC: u64 = 11_634_580_027_462_260_723;
            let mut seed = [0u8; 32];
            for chunk in seed.chunks_mut(4) {
                state = state.wrapping_mul(MUL).wrapping_add(INC);
                let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
                let rot = (state >> 59) as u32;
                chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
            }
            let mut key = [0u32; 8];
            for (k, bytes) in key.iter_mut().zip(seed.chunks(4)) {
                *k = u32::from_le_bytes(bytes.try_into().expect("4-byte chunk"));
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 16],
                idx: 16,
            }
        }
    }

    #[inline]
    fn quarter_round(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }

    impl StdRng {
        fn refill(&mut self) {
            let mut state = [0u32; 16];
            state[..4].copy_from_slice(&CHACHA_CONSTANTS);
            state[4..12].copy_from_slice(&self.key);
            state[12] = self.counter as u32;
            state[13] = (self.counter >> 32) as u32;
            // words 14–15: stream id, zero for seed_from_u64.
            let mut w = state;
            for _ in 0..6 {
                // Double round: columns, then diagonals.
                quarter_round(&mut w, 0, 4, 8, 12);
                quarter_round(&mut w, 1, 5, 9, 13);
                quarter_round(&mut w, 2, 6, 10, 14);
                quarter_round(&mut w, 3, 7, 11, 15);
                quarter_round(&mut w, 0, 5, 10, 15);
                quarter_round(&mut w, 1, 6, 11, 12);
                quarter_round(&mut w, 2, 7, 8, 13);
                quarter_round(&mut w, 3, 4, 9, 14);
            }
            for (wi, si) in w.iter_mut().zip(&state) {
                *wi = wi.wrapping_add(*si);
            }
            self.buf = w;
            self.counter = self.counter.wrapping_add(1);
            self.idx = 0;
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.idx >= 16 {
                self.refill();
            }
            let word = self.buf[self.idx];
            self.idx += 1;
            word
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0..1.0f64), b.gen_range(0.0..1.0f64));
        }
    }

    #[test]
    fn stream_advances_across_blocks() {
        // 16 words per ChaCha block; draws beyond the first block must
        // come from a fresh block, not a repeat of the first.
        let mut rng = StdRng::seed_from_u64(0);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
        assert!(first_block.iter().any(|&w| w != 0));
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0.7..1.3f64);
            assert!((0.7..1.3).contains(&x));
            let n = rng.gen_range(3usize..12);
            assert!((3..12).contains(&n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xa: Vec<f64> = (0..8).map(|_| a.gen_range(0.0..1.0)).collect();
        let xb: Vec<f64> = (0..8).map(|_| b.gen_range(0.0..1.0)).collect();
        assert_ne!(xa, xb);
    }
}
