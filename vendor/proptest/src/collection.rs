//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specifications accepted by [`vec`]: a fixed length or a
/// half-open range of lengths.
pub trait SizeRange {
    fn sample_len(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn sample_len(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn sample_len(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "cannot sample empty length range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// Strategy for `Vec`s whose elements are drawn from `element` and whose
/// length is drawn from `size`.
pub fn vec<S: Strategy, L: SizeRange>(element: S, size: L) -> VecStrategy<S, L> {
    VecStrategy { element, size }
}

pub struct VecStrategy<S, L> {
    element: S,
    size: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample_len(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_ranged_lengths() {
        let mut rng = TestRng::from_seed(3);
        let fixed = vec(0.0..1.0f64, 15usize);
        assert_eq!(fixed.sample(&mut rng).len(), 15);
        let ranged = vec(0.0..1.0f64, 1usize..12);
        for _ in 0..200 {
            let v = ranged.sample(&mut rng);
            assert!((1..12).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn tuple_elements() {
        let mut rng = TestRng::from_seed(4);
        let s = vec((0usize..5, 0usize..5, -1.0..1.0f64), 1usize..40);
        let v = s.sample(&mut rng);
        assert!(!v.is_empty());
    }
}
