//! Offline stand-in for `proptest`.
//!
//! Same authoring surface as the subset of proptest this workspace uses —
//! `proptest! { fn case(x in strategy, ..) { .. } }`, `prop_assert*!`,
//! `prop_assume!`, range/tuple/vec/map/flat_map/select strategies — but a
//! much simpler engine: each case is sampled from a deterministic RNG
//! derived from the test name and case index. No shrinking; a failing
//! case reports the case index so it can be replayed (the seed is a pure
//! function of name × index).

pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Mirrors `proptest::prelude::prop`, which exposes the strategy modules.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` header
/// followed by `#[test]` functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_case! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_case! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident(
        $($pat:pat_param in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::execute(&__cfg, stringify!($name), |__rng| {
                    $(let $pat = $crate::strategy::Strategy::sample(&($strat), __rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
}

/// Fails the current case with a message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{:?}` == `{:?}`", __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, $($fmt)+);
    }};
}

/// Discards the current case (resampled, not counted) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
