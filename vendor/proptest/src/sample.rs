//! Sampling from explicit value sets (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy drawing uniformly from an owned list of values.
pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
    assert!(!values.is_empty(), "cannot select from an empty list");
    Select { values }
}

pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.values.len() as u64) as usize;
        self.values[idx].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_choices() {
        let mut rng = TestRng::from_seed(11);
        let s = select(vec![1, 2, 3]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.sample(&mut rng) - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
    }
}
