//! The `Strategy` trait and combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value` from a [`TestRng`].
///
/// Unlike real proptest there is no value tree or shrinking: `sample`
/// draws one concrete value.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategies are object-safe enough to pass by reference.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty f64 range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty f32 range");
        self.start + (self.end - self.start) * rng.unit_f64() as f32
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "cannot sample empty range");
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + rng.below(span) as $t
            }
        }
    )*};
}

int_strategies!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

macro_rules! tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Always yields a clone of the given value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(99)
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let x = (1.5..2.5f64).sample(&mut r);
            assert!((1.5..2.5).contains(&x));
            let n = (3usize..=12).sample(&mut r);
            assert!((3..=12).contains(&n));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut r = rng();
        let s = (0usize..10).prop_map(|n| n * 2);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut r) % 2, 0);
        }
        let nested = (1usize..4).prop_flat_map(|n| (0.0..n as f64).prop_map(move |x| (n, x)));
        for _ in 0..100 {
            let (n, x) = nested.sample(&mut r);
            assert!(x < n as f64);
        }
    }

    #[test]
    fn tuples_sample_componentwise() {
        let mut r = rng();
        let ((a, b), c) = (((0.0..1.0f64), (5usize..6)), (1i32..2)).sample(&mut r);
        assert!((0.0..1.0).contains(&a));
        assert_eq!(b, 5);
        assert_eq!(c, 1);
    }
}
