//! Case execution: deterministic per-case RNG, rejection handling, panic
//! on failure.

/// Run configuration. Only `cases` is consulted; the struct is
/// non-exhaustive in spirit but kept open for struct-literal updates.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections across the whole run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The property failed; the message explains how.
    Fail(String),
    /// `prop_assume!` rejected the inputs; resample without counting.
    Reject,
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }

    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// Deterministic splitmix64 stream handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }
}

fn fnv1a(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `cases` samples of `body`, panicking on the first failure.
///
/// Each case's RNG seed is `hash(name) ⊕ f(case_index)`, so failures are
/// reproducible run-to-run and independent of execution order.
pub fn execute<F>(config: &ProptestConfig, name: &str, mut body: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name);
    let mut rejects = 0u32;
    let mut draw = 0u64;
    for case in 0..config.cases {
        loop {
            let mut rng = TestRng::from_seed(base ^ draw.wrapping_mul(0x2545_F491_4F6C_DD1D));
            draw += 1;
            match body(&mut rng) {
                Ok(()) => break,
                Err(TestCaseError::Reject) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejects}) — assumptions are unsatisfiable"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {case} (draw {}): {msg}",
                        draw - 1
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_all_cases() {
        let mut n = 0u32;
        execute(&ProptestConfig::with_cases(40), "count", |_| {
            n += 1;
            Ok(())
        });
        assert_eq!(n, 40);
    }

    #[test]
    fn rejections_do_not_count_as_cases() {
        let mut accepted = 0u32;
        let mut toggle = false;
        execute(&ProptestConfig::with_cases(10), "rej", |_| {
            toggle = !toggle;
            if toggle {
                Err(TestCaseError::Reject)
            } else {
                accepted += 1;
                Ok(())
            }
        });
        assert_eq!(accepted, 10);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_panic() {
        execute(&ProptestConfig::with_cases(5), "fail", |_| {
            Err(TestCaseError::fail("boom".to_string()))
        });
    }

    #[test]
    fn deterministic_streams() {
        let mut a = Vec::new();
        execute(&ProptestConfig::with_cases(5), "det", |rng| {
            a.push(rng.next_u64());
            Ok(())
        });
        let mut b = Vec::new();
        execute(&ProptestConfig::with_cases(5), "det", |rng| {
            b.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(a, b);
    }
}
