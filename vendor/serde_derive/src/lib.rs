//! Offline stand-in for `serde_derive`.
//!
//! The real crate expands against serde's visitor-based data model via
//! `syn`/`quote`; neither is available offline, so this derive parses the
//! item with the bare `proc_macro` API and generates implementations of the
//! vendored serde's much smaller value-tree traits
//! (`Serialize::serialize(&self) -> Value`,
//! `Deserialize::deserialize(&Value) -> Result<Self, Error>`).
//!
//! Supported shapes — exactly what this workspace uses:
//! - structs with named fields (with optional `#[serde(default)]` per field)
//! - tuple structs
//! - `#[serde(transparent)]` single-field structs (the unit newtypes)
//! - enums whose variants are all unit variants (serialized as name strings)

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    Named {
        fields: Vec<Field>,
        transparent: bool,
    },
    Tuple {
        arity: usize,
        transparent: bool,
    },
    UnitEnum {
        variants: Vec<String>,
    },
}

struct Field {
    name: String,
    default: bool,
}

struct Item {
    name: String,
    shape: Shape,
}

/// Returns the idents inside a `#[serde(...)]` attribute group, or `None`
/// if the bracketed group is some other attribute.
fn serde_attr_idents(group: &proc_macro::Group) -> Option<Vec<String>> {
    let mut it = group.stream().into_iter();
    match it.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let args = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
        _ => return Some(Vec::new()),
    };
    Some(
        args.stream()
            .into_iter()
            .filter_map(|t| match t {
                TokenTree::Ident(id) => Some(id.to_string()),
                _ => None,
            })
            .collect(),
    )
}

fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        let mut default = false;
        // Attributes (doc comments, serde attrs) before the field.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.next() {
                        if let Some(idents) = serde_attr_idents(&g) {
                            if idents.iter().any(|i| i == "default") {
                                default = true;
                            }
                        }
                    }
                }
                _ => break,
            }
        }
        // Visibility.
        if let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive stub: unexpected token in field list: {other}"),
            None => break,
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            _ => panic!("serde_derive stub: expected `:` after field `{name}`"),
        }
        // Skip the type: everything up to a comma at angle-bracket depth 0.
        let mut angle = 0i32;
        for t in tokens.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, default });
    }
    fields
}

fn parse_tuple_arity(group: &proc_macro::Group) -> usize {
    let mut arity = 0usize;
    let mut angle = 0i32;
    let mut in_field = false;
    for t in group.stream() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => in_field = false,
            _ => {
                if !in_field {
                    arity += 1;
                    in_field = true;
                }
            }
        }
    }
    arity
}

fn parse_unit_variants(group: &proc_macro::Group) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        // Skip attributes on the variant.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        match tokens.next() {
            Some(TokenTree::Ident(id)) => variants.push(id.to_string()),
            Some(other) => panic!("serde_derive stub: unexpected token in enum body: {other}"),
            None => break,
        }
        // Skip to the next comma; reject data-carrying variants.
        loop {
            match tokens.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(TokenTree::Group(_)) => {
                    panic!("serde_derive stub: only unit enum variants are supported")
                }
                Some(_) => {}
                None => return variants,
            }
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut transparent = false;
    let mut tokens = input.into_iter().peekable();
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    if let Some(idents) = serde_attr_idents(&g) {
                        if idents.iter().any(|i| i == "transparent") {
                            transparent = true;
                        }
                    }
                }
            }
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "pub" => {
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                "struct" => {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => panic!("serde_derive stub: expected struct name"),
                    };
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Item {
                                name,
                                shape: Shape::Named {
                                    fields: parse_named_fields(&g),
                                    transparent,
                                },
                            };
                        }
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                            return Item {
                                name,
                                shape: Shape::Tuple {
                                    arity: parse_tuple_arity(&g),
                                    transparent,
                                },
                            };
                        }
                        _ => panic!(
                            "serde_derive stub: generics and unit structs are not supported \
                             (struct `{name}`)"
                        ),
                    }
                }
                "enum" => {
                    let name = match tokens.next() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        _ => panic!("serde_derive stub: expected enum name"),
                    };
                    match tokens.next() {
                        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                            return Item {
                                name,
                                shape: Shape::UnitEnum {
                                    variants: parse_unit_variants(&g),
                                },
                            };
                        }
                        _ => panic!("serde_derive stub: generic enums are not supported"),
                    }
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive stub: no struct or enum found in derive input"),
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named {
            fields,
            transparent: true,
        } => {
            let f = &fields[0].name;
            format!("::serde::Serialize::serialize(&self.{f})")
        }
        Shape::Named {
            fields,
            transparent: false,
        } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{0}\"), \
                         ::serde::Serialize::serialize(&self.{0}))",
                        f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple {
            transparent: true, ..
        } => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple { arity, .. } => {
            let entries: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::UnitEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\","))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named {
            fields,
            transparent: true,
        } => {
            let f = &fields[0].name;
            format!(
                "::std::result::Result::Ok({name} {{ \
                     {f}: ::serde::Deserialize::deserialize(__v)? \
                 }})"
            )
        }
        Shape::Named {
            fields,
            transparent: false,
        } => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let missing = if f.default {
                        "::std::default::Default::default()".to_string()
                    } else {
                        format!(
                            "return ::std::result::Result::Err(::serde::Error::msg(\
                             \"missing field `{}` for {name}\"))",
                            f.name
                        )
                    };
                    format!(
                        "{0}: match ::serde::__find(__map, \"{0}\") {{ \
                             ::std::option::Option::Some(__x) => \
                                 ::serde::Deserialize::deserialize(__x)?, \
                             ::std::option::Option::None => {missing}, \
                         }}",
                        f.name
                    )
                })
                .collect();
            format!(
                "let __map = __v.as_map().ok_or_else(|| \
                     ::serde::Error::msg(\"expected map for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(", ")
            )
        }
        Shape::Tuple {
            transparent: true, ..
        } => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple { arity, .. } => {
            let inits: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Deserialize::deserialize(&__seq[{i}])?"))
                .collect();
            format!(
                "let __seq = __v.as_seq().ok_or_else(|| \
                     ::serde::Error::msg(\"expected sequence for {name}\"))?;\n\
                 if __seq.len() != {arity} {{ \
                     return ::std::result::Result::Err(::serde::Error::msg(\
                         \"wrong tuple length for {name}\")); \
                 }}\n\
                 ::std::result::Result::Ok({name}({}))",
                inits.join(", ")
            )
        }
        Shape::UnitEnum { variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "match __v.as_str().ok_or_else(|| \
                     ::serde::Error::msg(\"expected string for {name}\"))? {{ \
                     {} \
                     _ => ::std::result::Result::Err(::serde::Error::msg(\
                         \"unknown variant for {name}\")), \
                 }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("serde_derive stub: generated Deserialize impl failed to parse")
}
