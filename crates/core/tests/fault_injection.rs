//! No-panic robustness suite: every public solve entry point must return
//! a typed error or a verdict — never abort — when the thermal model
//! returns NaN, returns `Err`, or panics at an arbitrary call index.
//!
//! Faults are injected through [`oftec::faults::FaultyModel`]; the
//! proptest harness sweeps the (fault kind × call index × stickiness)
//! space, and the deterministic tests below pin the degradation paths the
//! paper's Algorithm 1 must take (grid-search recovery, feasible-point
//! fallback, surfaced `solver_error`).

use oftec::baselines::{
    fixed_speed_fan_on_model, tec_only_on_model, variable_speed_fan_on_model, BaselineOutcome,
};
use oftec::faults::{FaultKind, FaultyModel};
use oftec::reactive::{
    run_closed_loop_on_model, run_fan_loop_on_model, ConstantCurrent, PiFanController,
};
use oftec::{CoolingSystem, Oftec, OftecOutcome, SweepGrid};
use oftec_power::Benchmark;
use oftec_thermal::PackageConfig;
use oftec_units::{AngularVelocity, Current, Temperature};
use proptest::prelude::*;
use std::sync::{Once, OnceLock};

/// Silences panic reports for the suite's *injected* panics (which run on
/// the named test thread via `catch_unwind`) and for unnamed worker
/// threads; real failures on named threads keep the default report.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if msg.starts_with("injected panic") || std::thread::current().name().is_none() {
                return;
            }
            default(info);
        }));
    });
}

fn cool_system() -> &'static CoolingSystem {
    static SYSTEM: OnceLock<CoolingSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &PackageConfig::dac14_coarse(),
        )
    })
}

fn hot_system() -> &'static CoolingSystem {
    static SYSTEM: OnceLock<CoolingSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        CoolingSystem::for_benchmark_with_config(Benchmark::Fft, &PackageConfig::dac14_coarse())
    })
}

fn fault_kind() -> impl Strategy<Value = FaultKind> {
    prop::sample::select(vec![
        FaultKind::NonFinite,
        FaultKind::Error,
        FaultKind::Panic,
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Algorithm 1 under injected faults: the optimizer must return
    /// `Ok(verdict)` or `Err(typed)` at every fault kind, call index, and
    /// stickiness — never unwind.
    #[test]
    fn oftec_never_panics_under_faults(
        kind in fault_kind(),
        fail_at in 0usize..12,
        sticky in prop::sample::select(vec![true, false]),
    ) {
        quiet_injected_panics();
        let system = cool_system();
        let faulty = if sticky {
            FaultyModel::new(system.tec_model(), kind, fail_at)
        } else {
            FaultyModel::once(system.tec_model(), kind, fail_at)
        };
        let outcome = Oftec::default().run_on_model(&faulty, system.t_max());
        // Any verdict or typed error is acceptable; reaching here at all
        // is the property (no unwinding through the public API).
        prop_assert!(outcome.is_ok() || outcome.is_err());

        let cooled = Oftec::default().minimize_temperature(&faulty, system.t_max());
        if let Some(sol) = cooled {
            prop_assert!(sol.max_temperature.kelvin().is_finite());
        }
    }

    /// The design-space sweep keeps its grid shape under faults: every
    /// row is present, faulted cells degrade to `None`, and the selectors
    /// never return a non-finite winner.
    #[test]
    fn sweep_never_panics_under_faults(
        kind in fault_kind(),
        fail_at in 0usize..12,
        threads in 1usize..=8,
    ) {
        quiet_injected_panics();
        let system = cool_system();
        let faulty = FaultyModel::new(system.tec_model(), kind, fail_at);
        let grid = SweepGrid { omega_points: 4, current_points: 3 };
        let result = grid.run_threaded(&faulty, threads);
        prop_assert_eq!(result.samples.len(), 12);
        for sample in &result.samples {
            if let Some(t) = sample.max_temp_celsius {
                prop_assert!(t.is_finite());
            }
        }
        if let Some(best) = result.coolest() {
            prop_assert!(best.max_temp_celsius.unwrap().is_finite());
        }
    }

    /// Baselines and reactive loops under faults: verdicts stay typed,
    /// reports keep their shape, loops abort with an error instead of
    /// unwinding.
    #[test]
    fn baselines_and_loops_never_panic_under_faults(
        kind in fault_kind(),
        fail_at in 0usize..8,
    ) {
        quiet_injected_panics();
        let system = cool_system();
        let t_max = system.t_max();

        let faulty = FaultyModel::new(system.fan_model(), kind, fail_at);
        let var = variable_speed_fan_on_model(&faulty, t_max, true);
        let var_is_verdict = matches!(
            var,
            BaselineOutcome::Feasible { .. } | BaselineOutcome::Infeasible { .. }
        );
        prop_assert!(var_is_verdict, "variable-speed baseline returned no verdict");
        let fixed = fixed_speed_fan_on_model(&faulty, t_max, AngularVelocity::from_rpm(2000.0));
        if let BaselineOutcome::Feasible { solution, .. } = &fixed {
            prop_assert!(solution.max_chip_temperature().kelvin().is_finite());
        }

        let faulty_tec = FaultyModel::new(system.tec_model(), kind, fail_at);
        let report = tec_only_on_model(&faulty_tec, 6);
        prop_assert_eq!(report.currents.len(), 7);
        prop_assert_eq!(report.max_temperatures.len(), 7);

        let mut policy = ConstantCurrent(Current::from_amperes(1.0));
        let closed = run_closed_loop_on_model(
            &faulty_tec,
            AngularVelocity::from_rpm(2600.0),
            &mut policy,
            3,
            0.2,
        );
        if let Ok(report) = &closed {
            prop_assert!(report.temperatures.iter().all(|t| t.kelvin().is_finite()));
        }

        let mut pi = PiFanController::new(Temperature::from_celsius(80.0), 20.0, 8.0);
        let fan_loop = run_fan_loop_on_model(
            &faulty_tec,
            Current::from_amperes(1.0),
            &mut pi,
            3,
            0.2,
        );
        prop_assert!(fan_loop.is_ok() || fan_loop.is_err());
    }
}

/// A one-shot fault before the optimizer even starts must be absorbed:
/// the remaining (healthy) calls carry Algorithm 1 to a real optimum.
#[test]
fn one_shot_error_at_the_start_still_optimizes() {
    quiet_injected_panics();
    let system = cool_system();
    let faulty = FaultyModel::once(system.tec_model(), FaultKind::Error, 0);
    let outcome = Oftec::default()
        .run_on_model(&faulty, system.t_max())
        .expect("one-shot fault must be recoverable");
    let sol = outcome.optimized().expect("basicmath is coolable");
    assert!(sol.max_temperature < system.t_max());
    assert_eq!(faulty.injections(), 1, "exactly one fault fired");
}

/// A model that errors on *every* call cannot produce a verdict of
/// "optimized" — but it must still produce a verdict, and the swallowed
/// solver error must surface in the infeasibility report.
#[test]
fn sticky_errors_surface_in_the_infeasible_report() {
    quiet_injected_panics();
    let system = cool_system();
    oftec_telemetry::set_collecting(true);
    let (outcome, buf) = oftec_telemetry::capture(|| {
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::Error, 0);
        let outcome = Oftec::default().run_on_model(&faulty, system.t_max());
        assert!(faulty.injections() > 0, "fault never fired");
        outcome
    });
    let snap = oftec_telemetry::Snapshot::from_buffer(buf);
    assert!(
        snap.counter("oftec.fallback.gridsearch") >= 1,
        "the SQP → grid-search fallback must be counted"
    );
    match outcome {
        Ok(OftecOutcome::Infeasible(report)) => {
            let err = report
                .solver_error
                .as_deref()
                .expect("swallowed faults must be surfaced");
            assert!(
                err.contains("injected error") || err.contains("grid-search"),
                "unexpected solver_error: {err}"
            );
        }
        Ok(OftecOutcome::Optimized(_)) => {
            panic!("an always-failing model cannot certify an optimum")
        }
        Err(_) => {} // a typed error is an equally valid no-panic outcome
    }
}

/// Sticky panics through every entry point: the panic boundary converts
/// them into typed errors/verdicts, and the injection telemetry records
/// each one.
#[test]
fn sticky_panics_are_contained_and_counted() {
    quiet_injected_panics();
    let system = cool_system();
    oftec_telemetry::set_collecting(true);
    let (outcome, buf) = oftec_telemetry::capture(|| {
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::Panic, 0);
        Oftec::default().run_on_model(&faulty, system.t_max())
    });
    assert!(outcome.is_ok() || outcome.is_err(), "no unwinding");
    let snap = oftec_telemetry::Snapshot::from_buffer(buf);
    assert!(
        snap.counter("faults.injected") > 0,
        "injections must be counted"
    );
    assert!(
        snap.counter("problem.model_panics") > 0,
        "caught panics must be counted"
    );
}

/// The clean infeasibility path (no faults): a hot workload on the
/// fan-only model is certified infeasible with a best-achievable
/// temperature and *no* solver error.
#[test]
fn clean_infeasibility_reports_no_solver_error() {
    let system = hot_system();
    let outcome = Oftec::default()
        .run_on_model(system.fan_model(), system.t_max())
        .expect("clean infeasibility is a verdict, not an error");
    match outcome {
        OftecOutcome::Infeasible(report) => {
            assert!(report.best_temperature > system.t_max());
            assert!(
                report.solver_error.is_none(),
                "clean run must not report a fault: {:?}",
                report.solver_error
            );
        }
        OftecOutcome::Optimized(_) => panic!("FFT must defeat the fan-only baseline"),
    }
}

/// NaN-poisoned solutions must not leak into an "optimized" verdict: the
/// non-finite screen rejects them at the model boundary.
#[test]
fn poisoned_solutions_never_reach_the_optimum() {
    quiet_injected_panics();
    let system = cool_system();
    for fail_at in [0, 2, 5] {
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::NonFinite, fail_at);
        if let Ok(OftecOutcome::Optimized(sol)) =
            Oftec::default().run_on_model(&faulty, system.t_max())
        {
            assert!(
                sol.max_temperature.kelvin().is_finite() && sol.cooling_power.watts().is_finite(),
                "NaN leaked into the optimum at fail_at = {fail_at}"
            );
        }
    }
}
