//! Telemetry determinism: the metrics registry and span tree produced by
//! a sweep must be identical (modulo wall-clock span durations) at every
//! worker-thread count. Thread-local buffers are handed off per work item
//! and merged on the caller thread in index order, so nothing about the
//! schedule may leak into the snapshot.

use oftec::{CoolingSystem, SweepGrid};
use oftec_power::Benchmark;
use oftec_thermal::PackageConfig;

fn sweep_snapshot(threads: usize) -> oftec_telemetry::Snapshot {
    let system = CoolingSystem::for_benchmark_with_config(
        Benchmark::Basicmath,
        &PackageConfig::dac14_coarse(),
    );
    let grid = SweepGrid {
        omega_points: 10,
        current_points: 5,
    };
    // Collection stays on for the whole test binary: tests run on
    // concurrent threads and the flag is global, while `capture` keeps the
    // buffers themselves thread-isolated.
    oftec_telemetry::set_collecting(true);
    let ((), buf) = oftec_telemetry::capture(|| {
        grid.run_threaded(system.tec_model(), threads);
    });
    let mut snap = oftec_telemetry::Snapshot::from_buffer(buf);
    snap.redact_times();
    snap
}

#[test]
fn sweep_telemetry_is_identical_at_any_thread_count() {
    let serial = sweep_snapshot(1);

    // The sweep itself must have produced real telemetry, not an empty
    // registry that is trivially "deterministic".
    assert_eq!(serial.counter("sweep.rows"), 10);
    assert_eq!(serial.counter("sweep.points"), 50);
    assert!(serial.counter("thermal.solves") >= 50 - serial.counter("thermal.runaway"));
    let cg = serial
        .histogram("cg.iterations")
        .expect("CG iteration histogram must be populated");
    assert!(cg.total > 0);

    for threads in [2, 8] {
        let parallel = sweep_snapshot(threads);
        assert_eq!(
            parallel, serial,
            "telemetry snapshot diverged at {threads} threads"
        );
    }
}

#[test]
fn span_tree_nests_rows_under_the_sweep() {
    let snap = sweep_snapshot(4);
    let root = snap
        .spans
        .iter()
        .find(|s| s.name == "sweep.run")
        .expect("sweep.run span missing");
    let rows = root
        .children
        .iter()
        .filter(|c| c.name == "sweep.row")
        .count();
    assert_eq!(rows, 10, "every ω-row must report a child span");
    // Each row's thermal solves nest under that row, not at the root.
    assert!(root
        .children
        .iter()
        .filter(|c| c.name == "sweep.row")
        .all(|c| c.children.iter().any(|g| g.name == "thermal.solve")));
}

#[test]
fn histogram_merge_is_associative() {
    const BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];
    let record = |values: &[u64]| {
        let ((), buf) = oftec_telemetry::capture(|| {
            for &v in values {
                oftec_telemetry::histogram_record("assoc.test", BOUNDS, v);
            }
        });
        buf
    };
    oftec_telemetry::set_collecting(true);
    let (a, b, c) = (record(&[1, 7, 300]), record(&[2, 2, 1024]), record(&[65]));

    // (a ⊎ b) ⊎ c == a ⊎ (b ⊎ c)
    let mut left = a.clone();
    left.merge(b.clone());
    left.merge(c.clone());
    let mut bc = b;
    bc.merge(c);
    let mut right = a;
    right.merge(bc);
    assert_eq!(
        oftec_telemetry::Snapshot::from_buffer(left),
        oftec_telemetry::Snapshot::from_buffer(right)
    );
}
