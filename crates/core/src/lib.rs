//! **OFTEC** — power-aware deployment and control of forced-convection
//! and thermoelectric coolers.
//!
//! Reproduction of M. J. Dousti and M. Pedram, *"Power-Aware Deployment
//! and Control of Forced-Convection and Thermoelectric Coolers"*,
//! DAC 2014. The crate ties the substrate crates together and implements
//! the paper's contribution:
//!
//! - [`CoolingSystem`] — one benchmark's complete cooling setup: die,
//!   package (Table 1), TEC deployment (§6.1), workload power, leakage;
//! - [`problems`] — Optimization 1 (minimum cooling power, Eq. (10)) and
//!   Optimization 2 (minimum peak temperature, Eq. (19)) as
//!   [`oftec_optim::NlpProblem`]s over `(ω, I_TEC)`;
//! - [`Oftec`] — Algorithm 1: feasibility phase via Optimization 2 with
//!   early stopping, then power minimization via active-set SQP;
//! - [`baselines`] — the paper's two comparison systems (variable-speed
//!   fan without TECs, fixed 2000 RPM fan) and the TEC-only system that
//!   always hits thermal runaway;
//! - [`SweepGrid`] — the Figure 6(a)(b) design-space surfaces;
//! - [`controller`] — the §6.2 extensions: a pre-computed look-up-table
//!   controller and the 1 A / 1 s transient boost.
//!
//! # Examples
//!
//! ```no_run
//! use oftec::{CoolingSystem, Oftec};
//! use oftec_power::Benchmark;
//!
//! # fn main() -> Result<(), oftec::OftecError> {
//! let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
//! match Oftec::default().run(&system)? {
//!     oftec::OftecOutcome::Optimized(sol) => {
//!         println!(
//!             "ω* = {:.0} RPM, I* = {:.2} A, 𝒫 = {:.2} W",
//!             sol.operating_point.fan_speed.rpm(),
//!             sol.operating_point.tec_current.amperes(),
//!             sol.cooling_power.watts(),
//!         );
//!     }
//!     oftec::OftecOutcome::Infeasible(report) => {
//!         println!("cannot cool below T_max; best {}", report.best_temperature);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

mod algorithm;
pub mod baselines;
pub mod controller;
mod error;
pub mod faults;
pub mod problems;
pub mod reactive;
mod sweep;
mod system;

pub use algorithm::{InfeasibleReport, Oftec, OftecOutcome, OftecSolution};
pub use error::OftecError;
pub use sweep::{SweepGrid, SweepResult, SweepSample};
pub use system::CoolingSystem;

/// The paper's maximum die temperature `T_max` (90 °C).
pub fn default_t_max() -> oftec_units::Temperature {
    oftec_units::Temperature::from_celsius(90.0)
}

/// The paper's fixed-speed baseline fan setting (2000 RPM).
pub fn fixed_baseline_speed() -> oftec_units::AngularVelocity {
    oftec_units::AngularVelocity::from_rpm(2000.0)
}
