//! Design-space surface sweeps — Figure 6(a)(b) of the paper.
//!
//! The sweep is embarrassingly parallel across ω-rows and warm-startable
//! along each row's current axis: neighboring `(ω, I)` points have nearly
//! identical temperature fields, so chaining each solve from the previous
//! solution on the row cuts CG iterations several-fold. Rows are
//! distributed over [`oftec_parallel`] worker threads; each row is still
//! swept serially in ascending `I` so the warm-start chain (and the
//! result) is identical at every thread count.

use std::fmt::Write as _;

use oftec_thermal::{CoolingModel, OperatingPoint};
use oftec_units::Current;

/// One sample of the `(ω, I_TEC)` plane.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepSample {
    /// Fan speed (RPM, as plotted by the paper).
    pub omega_rpm: f64,
    /// TEC current (A).
    pub current_a: f64,
    /// Maximum die temperature 𝒯 (°C); `None` = thermal runaway (the dark
    /// "infinite" region of Figure 6(a)(b)).
    pub max_temp_celsius: Option<f64>,
    /// Cooling power 𝒫 (W); `None` = runaway.
    pub power_watts: Option<f64>,
}

/// A rectangular sweep specification.
#[derive(Debug, Clone, Copy)]
pub struct SweepGrid {
    /// Samples along ω.
    pub omega_points: usize,
    /// Samples along I.
    pub current_points: usize,
}

impl Default for SweepGrid {
    fn default() -> Self {
        Self {
            omega_points: 40,
            current_points: 26,
        }
    }
}

/// The swept surfaces.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SweepResult {
    /// Samples in row-major order: `samples[i * current_points + j]` for
    /// ω index `i`, current index `j`.
    pub samples: Vec<SweepSample>,
    /// ω sample count.
    pub omega_points: usize,
    /// I sample count.
    pub current_points: usize,
}

impl SweepGrid {
    /// Sweeps the model over `[0, ω_max] × [0, I_max]`.
    ///
    /// # Panics
    ///
    /// Panics if either resolution is below 2.
    pub fn run<M: CoolingModel>(&self, model: &M) -> SweepResult {
        self.run_threaded(model, oftec_parallel::thread_count())
    }

    /// [`SweepGrid::run`] with an explicit worker-thread count. The result
    /// is bit-identical for every `threads` value: parallelism is across
    /// ω-rows only, and each row's warm-start chain stays serial.
    ///
    /// A row whose model panics mid-solve is recorded as all-runaway
    /// (every sample `None`), counted under `sweep.row_panics`, and
    /// WARN-logged; the rest of the sweep completes. Non-finite model
    /// output is screened into runaway samples the same way.
    ///
    /// # Panics
    ///
    /// Panics if either resolution is below 2.
    pub fn run_threaded<M: CoolingModel>(&self, model: &M, threads: usize) -> SweepResult {
        assert!(
            self.omega_points >= 2 && self.current_points >= 2,
            "sweep needs at least a 2×2 grid"
        );
        let omega_max = model.config().fan.omega_max;
        let i_max = 5.0;
        let _span = oftec_telemetry::span("sweep.run");
        oftec_telemetry::counter_add("sweep.rows", self.omega_points as u64);
        oftec_telemetry::counter_add(
            "sweep.points",
            (self.omega_points * self.current_points) as u64,
        );
        let current_at =
            |ci: usize| -> f64 { i_max * ci as f64 / (self.current_points - 1) as f64 };
        let omega_at = |wi: usize| omega_max * (wi as f64 / (self.omega_points - 1) as f64);
        let rows = oftec_parallel::par_try_map_range_with(threads, self.omega_points, |wi| {
            let _row_span = oftec_telemetry::span("sweep.row");
            let omega = omega_at(wi);
            let mut row = Vec::with_capacity(self.current_points);
            // Warm-start each solve from the last success on this row.
            let mut last_state: Option<Vec<f64>> = None;
            for ci in 0..self.current_points {
                let amps = current_at(ci);
                let op = OperatingPoint::new(omega, Current::from_amperes(amps));
                let (t, p) = match model.solve_from(op, last_state.as_deref()) {
                    // Screen non-finite solver output into runaway cells
                    // so a poisoned model cannot contaminate the surface.
                    Ok(sol) => {
                        let t = sol.max_chip_temperature().celsius();
                        let p = sol.objective_power().watts();
                        if t.is_finite() && p.is_finite() {
                            last_state = Some(sol.node_temperatures().to_vec());
                            (Some(t), Some(p))
                        } else {
                            oftec_telemetry::counter_add("sweep.non_finite", 1);
                            last_state = None;
                            (None, None)
                        }
                    }
                    Err(_) => (None, None),
                };
                row.push(SweepSample {
                    omega_rpm: omega.rpm(),
                    current_a: amps,
                    max_temp_celsius: t,
                    power_watts: p,
                });
            }
            row
        });
        let samples = rows
            .into_iter()
            .enumerate()
            .flat_map(|(wi, row)| match row {
                Ok(row) => row,
                Err(panic) => {
                    // The whole row degrades to runaway; the sweep keeps
                    // its shape and the other rows their values.
                    oftec_telemetry::counter_add("sweep.row_panics", 1);
                    oftec_telemetry::event(
                        oftec_telemetry::Severity::Warn,
                        "sweep.row_panic",
                        &[
                            ("row", oftec_telemetry::Field::U64(wi as u64)),
                            ("message", oftec_telemetry::Field::Str(&panic.message)),
                        ],
                    );
                    let omega = omega_at(wi);
                    (0..self.current_points)
                        .map(|ci| SweepSample {
                            omega_rpm: omega.rpm(),
                            current_a: current_at(ci),
                            max_temp_celsius: None,
                            power_watts: None,
                        })
                        .collect()
                }
            })
            .collect();
        let result = SweepResult {
            samples,
            omega_points: self.omega_points,
            current_points: self.current_points,
        };
        oftec_telemetry::gauge_set("sweep.runaway_fraction", result.runaway_fraction());
        result
    }
}

impl SweepResult {
    /// The sample minimizing 𝒯 (Figure 6(a)'s minimum, which the paper
    /// observes near the middle of the plane).
    ///
    /// NaN/inf temperatures (possible in deserialized or hand-built
    /// results) are excluded, never selected, and never panic the
    /// comparison.
    pub fn coolest(&self) -> Option<&SweepSample> {
        self.samples
            .iter()
            .filter(|s| s.max_temp_celsius.is_some_and(f64::is_finite))
            .min_by(|a, b| {
                let ta = a.max_temp_celsius.unwrap_or(f64::INFINITY);
                let tb = b.max_temp_celsius.unwrap_or(f64::INFINITY);
                ta.total_cmp(&tb)
            })
    }

    /// The sample minimizing 𝒫 (Figure 6(b)'s minimum, near the origin of
    /// the *feasible* region). Non-finite powers are excluded, like
    /// [`SweepResult::coolest`].
    pub fn cheapest(&self) -> Option<&SweepSample> {
        self.samples
            .iter()
            .filter(|s| s.power_watts.is_some_and(f64::is_finite))
            .min_by(|a, b| {
                let pa = a.power_watts.unwrap_or(f64::INFINITY);
                let pb = b.power_watts.unwrap_or(f64::INFINITY);
                pa.total_cmp(&pb)
            })
    }

    /// Fraction of samples in the runaway region.
    pub fn runaway_fraction(&self) -> f64 {
        let n = self.samples.len();
        if n == 0 {
            return 0.0;
        }
        let bad = self
            .samples
            .iter()
            .filter(|s| s.max_temp_celsius.is_none())
            .count();
        bad as f64 / n as f64
    }

    /// The smallest ω (RPM) with any non-runaway sample — the paper's
    /// "ω should be increased to about 150 RPM" observation. Samples with
    /// non-finite temperatures or fan speeds are ignored.
    pub fn runaway_boundary_rpm(&self) -> Option<f64> {
        self.samples
            .iter()
            .filter(|s| s.max_temp_celsius.is_some_and(f64::is_finite) && s.omega_rpm.is_finite())
            .map(|s| s.omega_rpm)
            .min_by(f64::total_cmp)
    }

    /// Serializes to CSV (`omega_rpm,current_a,max_temp_c,power_w`;
    /// runaway cells are empty fields).
    pub fn to_csv(&self) -> String {
        // One String for the whole table, written row by row with
        // `fmt::Write` — no per-row format! temporaries.
        let mut out = String::with_capacity(32 * (self.samples.len() + 1));
        out.push_str("omega_rpm,current_a,max_temp_c,power_w\n");
        for s in &self.samples {
            let _ = write!(out, "{:.1},{:.3},", s.omega_rpm, s.current_a);
            if let Some(t) = s.max_temp_celsius {
                let _ = write!(out, "{t:.3}");
            }
            out.push(',');
            if let Some(p) = s.power_watts {
                let _ = write!(out, "{p:.4}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoolingSystem;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;

    fn sweep() -> SweepResult {
        let system = CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &PackageConfig::dac14_coarse(),
        );
        SweepGrid {
            omega_points: 12,
            current_points: 6,
        }
        .run(system.tec_model())
    }

    #[test]
    fn shape_and_counts() {
        let r = sweep();
        assert_eq!(r.samples.len(), 72);
        assert_eq!(r.samples[0].omega_rpm, 0.0);
        assert_eq!(r.samples[0].current_a, 0.0);
        let last = r.samples.last().unwrap();
        assert!((last.omega_rpm - 5000.0).abs() < 1.0);
        assert!((last.current_a - 5.0).abs() < 1e-12);
    }

    #[test]
    fn runaway_region_exists_at_low_omega() {
        let r = sweep();
        assert!(r.runaway_fraction() > 0.0, "no runaway region found");
        assert!(r.runaway_fraction() < 0.9, "almost everything ran away");
        let boundary = r.runaway_boundary_rpm().unwrap();
        assert!(
            boundary > 0.0 && boundary < 2000.0,
            "runaway boundary at {boundary} RPM"
        );
        // Increasing I at ω = 0 cannot rescue the chip (paper: "increasing
        // I_TEC alone cannot rescue the chip").
        for s in r.samples.iter().filter(|s| s.omega_rpm == 0.0) {
            assert!(s.max_temp_celsius.is_none());
        }
    }

    #[test]
    fn minima_locations_match_figure6() {
        let r = sweep();
        let coolest = r.coolest().unwrap();
        let cheapest = r.cheapest().unwrap();
        // Figure 6(a): the temperature minimum is well inside the plane
        // (needs real fan and TEC effort); Figure 6(b): the power minimum
        // sits at low-but-nonzero ω, near the feasible region's origin.
        assert!(coolest.omega_rpm > 1000.0);
        assert!(cheapest.omega_rpm < coolest.omega_rpm);
        assert!(cheapest.power_watts.unwrap() < coolest.power_watts.unwrap());
        assert!(coolest.max_temp_celsius.unwrap() < cheapest.max_temp_celsius.unwrap());
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_serial() {
        let system = CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &PackageConfig::dac14_coarse(),
        );
        let grid = SweepGrid {
            omega_points: 9,
            current_points: 5,
        };
        let serial = grid.run_threaded(system.tec_model(), 1);
        for threads in [2, 8] {
            let parallel = grid.run_threaded(system.tec_model(), threads);
            assert_eq!(parallel, serial, "sweep diverged at {threads} threads");
        }
    }

    #[test]
    fn warm_start_sweep_matches_cold_solves_within_tolerance() {
        let system = CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &PackageConfig::dac14_coarse(),
        );
        let model = system.tec_model();
        let r = SweepGrid {
            omega_points: 6,
            current_points: 5,
        }
        .run_threaded(model, 1);
        for s in &r.samples {
            let op = OperatingPoint::new(
                oftec_units::AngularVelocity::from_rpm(s.omega_rpm),
                Current::from_amperes(s.current_a),
            );
            match model.solve(op) {
                Ok(cold) => {
                    let warm_t = s.max_temp_celsius.expect("sweep found this point feasible");
                    let dt = (warm_t - cold.max_chip_temperature().celsius()).abs();
                    assert!(dt < 1e-6, "warm/cold mismatch {dt} K at {op:?}");
                }
                Err(_) => assert!(
                    s.max_temp_celsius.is_none(),
                    "sweep feasible where cold solve ran away at {op:?}"
                ),
            }
        }
    }

    #[test]
    fn poisoned_rows_are_skipped_by_the_selectors() {
        // Hand-built result with NaN/inf-poisoned rows, as a corrupted
        // solver or a deserialized file could contain. The selectors must
        // neither panic nor let a poisoned sample win.
        let mk = |rpm: f64, t: Option<f64>, p: Option<f64>| SweepSample {
            omega_rpm: rpm,
            current_a: 0.0,
            max_temp_celsius: t,
            power_watts: p,
        };
        let r = SweepResult {
            samples: vec![
                mk(f64::NAN, Some(f64::NAN), Some(f64::NAN)),
                mk(1000.0, Some(f64::INFINITY), Some(f64::NEG_INFINITY)),
                mk(2000.0, Some(80.0), Some(30.0)),
                mk(3000.0, Some(70.0), Some(40.0)),
                mk(500.0, None, None),
            ],
            omega_points: 5,
            current_points: 1,
        };
        assert_eq!(r.coolest().unwrap().omega_rpm, 3000.0);
        assert_eq!(r.cheapest().unwrap().omega_rpm, 2000.0);
        assert_eq!(r.runaway_boundary_rpm(), Some(2000.0));

        let all_poisoned = SweepResult {
            samples: vec![mk(0.0, Some(f64::NAN), Some(f64::NAN)), mk(1.0, None, None)],
            omega_points: 2,
            current_points: 1,
        };
        assert!(all_poisoned.coolest().is_none());
        assert!(all_poisoned.cheapest().is_none());
        assert!(all_poisoned.runaway_boundary_rpm().is_none());
    }

    #[test]
    fn csv_round_shape() {
        let r = sweep();
        let csv = r.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 73); // header + samples
        assert!(lines[0].starts_with("omega_rpm"));
        // Runaway rows have empty fields.
        assert!(lines.iter().any(|l| l.ends_with(",,")));
    }
}
