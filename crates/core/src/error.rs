//! The typed error taxonomy of the OFTEC pipeline.
//!
//! Every failure a solve can hit — thermal, optimization, linear-algebra,
//! non-finite data, or an outright panic inside a model — is folded into
//! [`OftecError`], carrying the operating point and iteration at which it
//! occurred whenever the caller knows them. The `From` conversions let
//! the substrate crates' errors propagate with `?` while the context
//! fields are attached at the layer that has them.

use oftec_linalg::LinalgError;
use oftec_optim::OptimError;
use oftec_parallel::ItemPanic;
use oftec_thermal::{OperatingPoint, ThermalError};

/// An error from the OFTEC solve pipeline (Algorithm 1, sweeps,
/// baselines, reactive loops).
#[derive(Debug, Clone, PartialEq)]
pub enum OftecError {
    /// A NaN/inf value reached a boundary that requires finite data.
    NonFinite {
        /// What was non-finite (objective, gradient, temperature, ...).
        what: String,
        /// The operating point being evaluated, when known.
        operating_point: Option<OperatingPoint>,
        /// The solver iteration at which the value appeared (0 = before
        /// the first iteration).
        iteration: usize,
    },
    /// The thermal simulator failed.
    Thermal {
        /// The underlying thermal error.
        source: ThermalError,
        /// The operating point being solved, when known.
        operating_point: Option<OperatingPoint>,
    },
    /// An optimization solver failed.
    Optim {
        /// The underlying solver error.
        source: OptimError,
        /// Which phase of Algorithm 1 was running ("feasibility",
        /// "power", ...).
        phase: &'static str,
    },
    /// A linear-algebra kernel failed outside a thermal solve.
    Linalg(LinalgError),
    /// The thermal model panicked during an evaluation (caught at the
    /// model boundary; the pipeline keeps running).
    ModelPanic {
        /// The panic payload's message.
        message: String,
        /// The operating point being solved, when known.
        operating_point: Option<OperatingPoint>,
    },
    /// A parallel work item panicked (caught by the executor).
    WorkerPanic {
        /// Index of the panicking item in its batch.
        index: usize,
        /// The panic payload's message.
        message: String,
    },
}

fn write_op(f: &mut core::fmt::Formatter<'_>, op: &Option<OperatingPoint>) -> core::fmt::Result {
    if let Some(op) = op {
        write!(
            f,
            " at (ω = {:.0} RPM, I = {:.2} A)",
            op.fan_speed.rpm(),
            op.tec_current.amperes()
        )?;
    }
    Ok(())
}

impl core::fmt::Display for OftecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NonFinite {
                what,
                operating_point,
                iteration,
            } => {
                write!(f, "non-finite {what}")?;
                write_op(f, operating_point)?;
                write!(f, " (iteration {iteration})")
            }
            Self::Thermal {
                source,
                operating_point,
            } => {
                write!(f, "thermal solve failed")?;
                write_op(f, operating_point)?;
                write!(f, ": {source}")
            }
            Self::Optim { source, phase } => {
                write!(f, "{phase} optimization failed: {source}")
            }
            Self::Linalg(e) => write!(f, "linear algebra failure: {e}"),
            Self::ModelPanic {
                message,
                operating_point,
            } => {
                write!(f, "thermal model panicked")?;
                write_op(f, operating_point)?;
                write!(f, ": {message}")
            }
            Self::WorkerPanic { index, message } => {
                write!(f, "parallel work item {index} panicked: {message}")
            }
        }
    }
}

impl std::error::Error for OftecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Thermal { source, .. } => Some(source),
            Self::Optim { source, .. } => Some(source),
            Self::Linalg(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ThermalError> for OftecError {
    fn from(source: ThermalError) -> Self {
        match source {
            ThermalError::NonFinite(what) => Self::NonFinite {
                what,
                operating_point: None,
                iteration: 0,
            },
            source => Self::Thermal {
                source,
                operating_point: None,
            },
        }
    }
}

impl From<OptimError> for OftecError {
    fn from(source: OptimError) -> Self {
        match source {
            OptimError::NonFinite { what, iteration } => Self::NonFinite {
                what: what.to_string(),
                operating_point: None,
                iteration,
            },
            source => Self::Optim {
                source,
                phase: "unspecified",
            },
        }
    }
}

impl From<LinalgError> for OftecError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::NonFinite(what) => Self::NonFinite {
                what: what.to_string(),
                operating_point: None,
                iteration: 0,
            },
            other => Self::Linalg(other),
        }
    }
}

impl From<ItemPanic> for OftecError {
    fn from(p: ItemPanic) -> Self {
        Self::WorkerPanic {
            index: p.index,
            message: p.message,
        }
    }
}

impl OftecError {
    /// Attaches the operating point to errors that can carry one and do
    /// not already have it.
    #[must_use]
    pub fn with_operating_point(self, op: OperatingPoint) -> Self {
        match self {
            Self::NonFinite {
                what,
                operating_point: None,
                iteration,
            } => Self::NonFinite {
                what,
                operating_point: Some(op),
                iteration,
            },
            Self::Thermal {
                source,
                operating_point: None,
            } => Self::Thermal {
                source,
                operating_point: Some(op),
            },
            Self::ModelPanic {
                message,
                operating_point: None,
            } => Self::ModelPanic {
                message,
                operating_point: Some(op),
            },
            other => other,
        }
    }

    /// Returns `true` for the dedicated non-finite-data error.
    pub fn is_non_finite(&self) -> bool {
        matches!(self, Self::NonFinite { .. })
    }

    /// A stable machine-readable code for this error, suitable for wire
    /// protocols and log aggregation. The distinguished thermal outcomes
    /// (runaway, invalid operating point) get their own codes because
    /// clients act on them differently from solver failures.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::NonFinite { .. } => "non_finite",
            Self::Thermal { source, .. } => match source {
                ThermalError::Runaway(_) => "runaway",
                ThermalError::InvalidOperatingPoint(_) => "invalid_operating_point",
                _ => "thermal",
            },
            Self::Optim { .. } => "optim",
            Self::Linalg(_) => "linalg",
            Self::ModelPanic { .. } => "model_panic",
            Self::WorkerPanic { .. } => "worker_panic",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_units::{AngularVelocity, Current};

    fn op() -> OperatingPoint {
        OperatingPoint::new(
            AngularVelocity::from_rpm(2500.0),
            Current::from_amperes(1.5),
        )
    }

    #[test]
    fn conversions_classify_non_finite() {
        let e: OftecError = ThermalError::NonFinite("fan conductance".into()).into();
        assert!(e.is_non_finite());
        let e: OftecError = OptimError::NonFinite {
            what: "objective",
            iteration: 7,
        }
        .into();
        assert!(matches!(e, OftecError::NonFinite { iteration: 7, .. }));
        let e: OftecError = LinalgError::NonFinite("dense system matrix").into();
        assert!(e.is_non_finite());
        let e: OftecError = ThermalError::Runaway("test").into();
        assert!(matches!(e, OftecError::Thermal { .. }));
    }

    #[test]
    fn operating_point_attaches_once() {
        let e: OftecError = ThermalError::Runaway("test").into();
        let e = e.with_operating_point(op());
        let text = e.to_string();
        assert!(text.contains("2500 RPM"), "{text}");
        assert!(text.contains("1.50 A"), "{text}");
        // A second attach does not overwrite.
        let other = OperatingPoint::new(AngularVelocity::ZERO, Current::ZERO);
        assert_eq!(e.clone().with_operating_point(other), e);
    }

    #[test]
    fn worker_panic_from_item_panic() {
        let e: OftecError = ItemPanic {
            index: 3,
            message: "boom".into(),
        }
        .into();
        assert_eq!(e.to_string(), "parallel work item 3 panicked: boom");
    }

    #[test]
    fn kind_codes_are_stable() {
        let runaway: OftecError = ThermalError::Runaway("test").into();
        assert_eq!(runaway.kind(), "runaway");
        let invalid: OftecError = ThermalError::InvalidOperatingPoint("ω".into()).into();
        assert_eq!(invalid.kind(), "invalid_operating_point");
        let config: OftecError = ThermalError::Config("x".into()).into();
        assert_eq!(config.kind(), "thermal");
        let nf: OftecError = ThermalError::NonFinite("t".into()).into();
        assert_eq!(nf.kind(), "non_finite");
        let wp: OftecError = ItemPanic {
            index: 0,
            message: "b".into(),
        }
        .into();
        assert_eq!(wp.kind(), "worker_panic");
    }

    #[test]
    fn display_mentions_phase() {
        let e = OftecError::Optim {
            source: OptimError::BadStart("x".into()),
            phase: "feasibility",
        };
        assert!(e.to_string().starts_with("feasibility optimization failed"));
    }
}
