//! Online-control extensions sketched in the paper's §6.2:
//!
//! - a **look-up-table controller**: classify the input dynamic power
//!   vector into categories, pre-calculate optimization solutions, and
//!   serve them immediately at runtime;
//! - the **transient boost** of reference \[8\]: raise `I*_TEC` by ~1 A for
//!   ~1 s to exploit the instant Peltier effect while the Joule heat is
//!   still in flight through the package.

use crate::{CoolingSystem, Oftec, OftecOutcome};
use oftec_thermal::{OperatingPoint, ThermalError, TransientOptions, TransientTrace};
use oftec_units::{Current, Power, Temperature};

/// A pre-computed control table indexed by total dynamic power.
///
/// Built by scaling a reference workload across a power range and running
/// the full OFTEC optimization per class; lookups then cost nothing — the
/// deployment mode the paper proposes for runtime control.
#[derive(Debug, Clone)]
pub struct LutController {
    /// Class upper edges (total dynamic power, W), ascending.
    edges: Vec<f64>,
    /// Optimized operating point per class; `None` marks classes OFTEC
    /// certified as uncoolable.
    entries: Vec<Option<OperatingPoint>>,
}

impl LutController {
    /// Pre-computes a table over `classes` power classes spanning
    /// `[lo_watts, hi_watts]` total dynamic power, by uniformly scaling
    /// `reference`'s power vector.
    ///
    /// # Panics
    ///
    /// Panics if `classes == 0`, the range is empty, or the reference
    /// workload has zero power.
    pub fn precompute(
        reference: &CoolingSystem,
        lo_watts: f64,
        hi_watts: f64,
        classes: usize,
    ) -> Self {
        assert!(classes > 0, "need at least one power class");
        assert!(hi_watts > lo_watts && lo_watts >= 0.0, "empty power range");
        let base = reference.total_dynamic_power().watts();
        assert!(base > 0.0, "reference workload has no dynamic power");

        let optimizer = Oftec::default();
        let mut edges = Vec::with_capacity(classes);
        let mut entries = Vec::with_capacity(classes);
        for k in 0..classes {
            // Represent each class by its upper edge (conservative: the
            // stored setting cools every workload in the class).
            let hi_edge = lo_watts + (hi_watts - lo_watts) * (k + 1) as f64 / classes as f64;
            let scaled = reference.scaled(hi_edge / base);
            // A solver error marks the class uncoolable, same as a
            // certified infeasibility — the LUT must always build.
            let entry = match optimizer.run(&scaled) {
                Ok(OftecOutcome::Optimized(sol)) => Some(sol.operating_point),
                Ok(OftecOutcome::Infeasible(_)) | Err(_) => None,
            };
            edges.push(hi_edge);
            entries.push(entry);
        }
        Self { edges, entries }
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the table is empty (cannot happen via
    /// [`LutController::precompute`]).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Looks up the pre-computed operating point for a workload with the
    /// given total dynamic power. Returns `None` when the power exceeds
    /// the table range or the matching class is uncoolable.
    pub fn lookup(&self, total_dynamic: Power) -> Option<OperatingPoint> {
        let p = total_dynamic.watts();
        let idx = self.edges.iter().position(|&e| p <= e)?;
        self.entries[idx]
    }

    /// The class edges (diagnostics).
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }
}

/// The transient-boost policy: `I = I* + boost` for `duration` seconds.
#[derive(Debug, Clone, Copy)]
pub struct TransientBoost {
    /// Extra current on top of `I*` (the paper's reference \[8\] suggests
    /// about 1 A).
    pub boost: Current,
    /// Boost duration (about 1 s).
    pub duration_seconds: f64,
}

impl Default for TransientBoost {
    fn default() -> Self {
        Self {
            boost: Current::from_amperes(1.0),
            duration_seconds: 1.0,
        }
    }
}

/// Outcome of simulating a transient boost from a steady state.
#[derive(Debug, Clone)]
pub struct BoostReport {
    /// Chip max temperature at the steady operating point.
    pub steady_temperature: Temperature,
    /// Coolest chip max temperature reached during the boost.
    pub boosted_minimum: Temperature,
    /// Chip max temperature at the end of the boost window.
    pub end_temperature: Temperature,
    /// The simulated trajectory.
    pub trace: TransientTrace,
}

impl BoostReport {
    /// Transient cooling gained at the best moment of the boost.
    pub fn peak_gain(&self) -> f64 {
        self.steady_temperature.kelvin() - self.boosted_minimum.kelvin()
    }
}

impl TransientBoost {
    /// Simulates the boost on the hybrid model of `system`, starting from
    /// the steady state at `op` (usually OFTEC's `(ω*, I*)`).
    ///
    /// # Errors
    ///
    /// Propagates thermal-model errors — including
    /// [`ThermalError::InvalidOperatingPoint`] if `I* + boost` exceeds the
    /// TEC current limit.
    pub fn simulate(
        &self,
        system: &CoolingSystem,
        op: OperatingPoint,
    ) -> Result<BoostReport, ThermalError> {
        let model = system.tec_model();
        let steady = model.solve(op)?;
        let boosted = OperatingPoint::new(op.fan_speed, op.tec_current + self.boost);
        let dt = 0.01;
        let steps = (self.duration_seconds / dt).ceil().max(1.0) as usize;
        let trace = model.simulate_transient(
            boosted,
            Some(&steady),
            steps,
            &TransientOptions {
                dt_seconds: dt,
                record_every: 1,
            },
        )?;
        let steady_temperature = steady.max_chip_temperature();
        let boosted_minimum = trace
            .max_chip
            .iter()
            .copied()
            .fold(Temperature::from_kelvin(f64::MAX / 2.0), Temperature::min);
        Ok(BoostReport {
            steady_temperature,
            boosted_minimum,
            end_temperature: trace.last(),
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;
    use oftec_units::AngularVelocity;

    fn coarse(b: Benchmark) -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(b, &PackageConfig::dac14_coarse())
    }

    #[test]
    fn lut_lookup_serves_classes() {
        let system = coarse(Benchmark::Basicmath);
        let lut = LutController::precompute(&system, 10.0, 40.0, 3);
        assert_eq!(lut.len(), 3);
        // A 15 W workload falls in the first class.
        let op = lut.lookup(Power::from_watts(15.0)).expect("class exists");
        assert!(op.fan_speed.rpm() > 0.0);
        // Heavier classes need at least as much fan.
        let op_hi = lut.lookup(Power::from_watts(39.0)).expect("class exists");
        assert!(op_hi.fan_speed.rpm() + 1.0 >= op.fan_speed.rpm());
        // Out of range → None.
        assert!(lut.lookup(Power::from_watts(100.0)).is_none());
    }

    #[test]
    fn transient_boost_cools_briefly() {
        let system = coarse(Benchmark::Dijkstra);
        let op = OperatingPoint::new(
            AngularVelocity::from_rpm(3000.0),
            Current::from_amperes(1.5),
        );
        let report = TransientBoost::default()
            .simulate(&system, op)
            .expect("boost within limits");
        assert!(
            report.peak_gain() > 0.1,
            "boost gained only {} K",
            report.peak_gain()
        );
        assert!(report.boosted_minimum < report.steady_temperature);
    }

    #[test]
    fn boost_beyond_current_limit_rejected() {
        let system = coarse(Benchmark::Basicmath);
        let op = OperatingPoint::new(
            AngularVelocity::from_rpm(3000.0),
            Current::from_amperes(4.5),
        );
        let err = TransientBoost::default().simulate(&system, op).unwrap_err();
        assert!(matches!(err, ThermalError::InvalidOperatingPoint(_)));
    }

    #[test]
    #[should_panic(expected = "empty power range")]
    fn bad_range_panics() {
        let system = coarse(Benchmark::Basicmath);
        let _ = LutController::precompute(&system, 40.0, 10.0, 3);
    }
}
