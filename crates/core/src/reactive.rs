//! Reactive TEC controllers from the paper's related work (its reference
//! \[5\], Alexandrov et al., ASP-DAC 2012), plus a closed-loop transient
//! simulator to compare them against OFTEC's steady operating points.
//!
//! Reference \[5\] proposes two simple controllers that switch a constant
//! TEC current on and off based on the observed hot-spot temperature:
//!
//! - **threshold**: ON whenever `T > T_on`, OFF otherwise — reacts fast
//!   but chatters around the threshold;
//! - **hysteresis** ("maximum cooling based"): ON above `T_on`, OFF only
//!   below `T_off < T_on` — fewer ON/OFF transitions at the cost of
//!   deeper temperature excursions.
//!
//! The paper's critique (§3) is that such bang-bang control with a fixed
//! current neither finds the power-optimal operating point nor
//! coordinates with the fan. The closed-loop harness here lets the
//! experiments quantify that: transitions, energy, and temperature ripple
//! versus OFTEC's single optimized `(ω*, I*)`.

use crate::{CoolingSystem, OftecError};
use oftec_telemetry as telemetry;
use oftec_thermal::{CoolingModel, OperatingPoint, TransientOptions};
use oftec_units::{AngularVelocity, Current, Temperature};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs one model call behind a panic boundary so a faulting model aborts
/// the loop with a typed error instead of unwinding through the control
/// harness. Panics are counted and WARN-logged.
fn guard<T>(
    op: OperatingPoint,
    call: impl FnOnce() -> Result<T, oftec_thermal::ThermalError>,
) -> Result<T, OftecError> {
    match catch_unwind(AssertUnwindSafe(call)) {
        Ok(result) => result.map_err(|e| OftecError::from(e).with_operating_point(op)),
        Err(payload) => {
            let message = oftec_parallel::payload_message(payload);
            telemetry::counter_add("reactive.model_panics", 1);
            telemetry::event(
                telemetry::Severity::Warn,
                "reactive.model_panic",
                &[("message", telemetry::Field::Str(&message))],
            );
            Err(OftecError::ModelPanic {
                message,
                operating_point: Some(op),
            })
        }
    }
}

/// Rejects a non-finite observation before it reaches a policy (a NaN
/// temperature would silently corrupt every later control decision).
fn check_observed(observed: Temperature, op: OperatingPoint) -> Result<(), OftecError> {
    if observed.kelvin().is_finite() {
        Ok(())
    } else {
        Err(OftecError::NonFinite {
            what: "observed hot-spot temperature".into(),
            operating_point: Some(op),
            iteration: 0,
        })
    }
}

/// A reactive TEC current policy: observes the hottest die temperature at
/// the end of each control window and picks the current for the next one.
pub trait TecPolicy {
    /// Next window's TEC current given the observed hot-spot temperature.
    fn current(&mut self, observed: Temperature) -> Current;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

/// The threshold controller of reference \[5\]: fixed current, ON strictly
/// above the threshold.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdController {
    /// Switch-on temperature.
    pub threshold: Temperature,
    /// Current applied while ON.
    pub drive: Current,
}

impl TecPolicy for ThresholdController {
    fn current(&mut self, observed: Temperature) -> Current {
        if observed > self.threshold {
            self.drive
        } else {
            Current::ZERO
        }
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

/// The hysteresis ("maximum cooling based") controller of reference \[5\]:
/// ON above `on_above`, OFF only once the temperature falls below
/// `off_below`.
#[derive(Debug, Clone, Copy)]
pub struct HysteresisController {
    /// Switch-on temperature.
    pub on_above: Temperature,
    /// Switch-off temperature (must be below `on_above`).
    pub off_below: Temperature,
    /// Current applied while ON.
    pub drive: Current,
    /// Internal state: currently driving?
    on: bool,
}

impl HysteresisController {
    /// Creates the controller (initially OFF).
    ///
    /// # Panics
    ///
    /// Panics if `off_below >= on_above` (no hysteresis band).
    pub fn new(on_above: Temperature, off_below: Temperature, drive: Current) -> Self {
        assert!(
            off_below < on_above,
            "hysteresis band requires off_below < on_above"
        );
        Self {
            on_above,
            off_below,
            drive,
            on: false,
        }
    }
}

impl TecPolicy for HysteresisController {
    fn current(&mut self, observed: Temperature) -> Current {
        if observed > self.on_above {
            self.on = true;
        } else if observed < self.off_below {
            self.on = false;
        }
        if self.on {
            self.drive
        } else {
            Current::ZERO
        }
    }

    fn name(&self) -> &'static str {
        "hysteresis"
    }
}

/// A constant-current "policy" (OFTEC's steady `(ω*, I*)` in closed loop).
#[derive(Debug, Clone, Copy)]
pub struct ConstantCurrent(pub Current);

impl TecPolicy for ConstantCurrent {
    fn current(&mut self, _observed: Temperature) -> Current {
        self.0
    }

    fn name(&self) -> &'static str {
        "constant"
    }
}

/// Result of one closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopReport {
    /// End-of-window times (s).
    pub times: Vec<f64>,
    /// Hot-spot temperature at each window end.
    pub temperatures: Vec<Temperature>,
    /// Current applied during each window.
    pub currents: Vec<Current>,
    /// Number of OFF→ON and ON→OFF transitions (TEC wear, ref. \[5\]'s
    /// concern).
    pub transitions: usize,
    /// TEC electrical energy over the run (J), from the per-window steady
    /// power at the window-end temperatures.
    pub tec_energy_joules: f64,
}

impl ClosedLoopReport {
    /// Peak hot-spot temperature over the run.
    ///
    /// # Panics
    ///
    /// Panics on an empty report (cannot happen via [`run_closed_loop`]).
    pub fn peak(&self) -> Temperature {
        self.temperatures
            .iter()
            .copied()
            .fold(Temperature::ABSOLUTE_ZERO, Temperature::max)
    }

    /// Temperature ripple (peak − trough) over the second half of the run
    /// (after the initial transient).
    pub fn ripple(&self) -> f64 {
        let tail = &self.temperatures[self.temperatures.len() / 2..];
        let hi = tail
            .iter()
            .map(|t| t.kelvin())
            .fold(f64::NEG_INFINITY, f64::max);
        let lo = tail
            .iter()
            .map(|t| t.kelvin())
            .fold(f64::INFINITY, f64::min);
        hi - lo
    }
}

/// Runs a reactive policy in closed loop on the hybrid model of `system`:
/// fixed fan speed, `windows` control windows of `window_seconds` each,
/// the policy observing the hot-spot temperature at every window boundary.
///
/// # Errors
///
/// Propagates thermal-model errors (an aggressive policy cannot cause
/// runaway by itself as long as the fan speed is healthy).
///
/// # Panics
///
/// Panics if `windows == 0` or `window_seconds <= 0`.
pub fn run_closed_loop<P: TecPolicy + ?Sized>(
    system: &CoolingSystem,
    fan: AngularVelocity,
    policy: &mut P,
    windows: usize,
    window_seconds: f64,
) -> Result<ClosedLoopReport, OftecError> {
    run_closed_loop_on_model(system.tec_model(), fan, policy, windows, window_seconds)
}

/// [`run_closed_loop`] on an arbitrary (e.g. fault-injecting) model. Model
/// panics are caught at every call and surface as
/// [`OftecError::ModelPanic`]; non-finite observations abort with
/// [`OftecError::NonFinite`] instead of corrupting the policy state.
///
/// # Errors
///
/// Propagates thermal-model errors, panics, and non-finite observations as
/// typed [`OftecError`]s.
///
/// # Panics
///
/// Panics if `windows == 0` or `window_seconds <= 0`.
pub fn run_closed_loop_on_model<M: CoolingModel, P: TecPolicy + ?Sized>(
    model: &M,
    fan: AngularVelocity,
    policy: &mut P,
    windows: usize,
    window_seconds: f64,
) -> Result<ClosedLoopReport, OftecError> {
    assert!(windows > 0, "need at least one control window");
    assert!(window_seconds > 0.0, "window must have positive length");
    let _span = telemetry::span("reactive.tec_loop");
    telemetry::counter_add("reactive.windows", windows as u64);

    // Start from the passive steady state (TECs off).
    let start_op = OperatingPoint::fan_only(fan);
    let start = guard(start_op, || model.solve(start_op))?;
    let mut state = start.node_temperatures().to_vec();
    let mut observed = start.max_chip_temperature();
    check_observed(observed, start_op)?;

    let dt = (window_seconds / 10.0).min(0.02);
    let steps = (window_seconds / dt).ceil() as usize;
    let opts = TransientOptions {
        dt_seconds: dt,
        record_every: steps,
    };

    let mut times = Vec::with_capacity(windows);
    let mut temperatures = Vec::with_capacity(windows);
    let mut currents = Vec::with_capacity(windows);
    let mut transitions = 0usize;
    let mut tec_energy = 0.0f64;
    let mut last_current = Current::ZERO;

    for w in 0..windows {
        let i = policy.current(observed);
        if (i.amperes() > 0.0) != (last_current.amperes() > 0.0) {
            transitions += 1;
        }
        last_current = i;
        let op = OperatingPoint::new(fan, i);
        let trace = guard(op, || {
            model.simulate_transient_from(op, Some(&state), steps, &opts)
        })?;
        state = trace.final_state.clone();
        observed = trace.last();
        check_observed(observed, op)?;

        // Energy accounting from the steady TEC power at this state's
        // temperatures (adequate at these slow control rates).
        if i.amperes() > 0.0 {
            if let Ok(sol) = guard(op, || model.solve(op)) {
                tec_energy += sol.breakdown().tec.watts() * window_seconds;
            }
        }
        times.push((w + 1) as f64 * window_seconds);
        temperatures.push(observed);
        currents.push(i);
    }

    Ok(ClosedLoopReport {
        times,
        temperatures,
        currents,
        transitions,
        tec_energy_joules: tec_energy,
    })
}

/// A proportional-integral fan-speed controller regulating the hot-spot
/// temperature to a setpoint — the fan-side counterpart of the reactive
/// TEC policies (a natural "online" extension of the paper's framework:
/// hold `I*` and let the fan absorb workload drift).
#[derive(Debug, Clone, Copy)]
pub struct PiFanController {
    /// Temperature setpoint.
    pub target: Temperature,
    /// Proportional gain (rad/s per Kelvin of error).
    pub kp: f64,
    /// Integral gain (rad/s per Kelvin-second).
    pub ki: f64,
    /// Accumulated integral term (rad/s), clamped for anti-windup.
    integral: f64,
}

impl PiFanController {
    /// Creates the controller with zeroed integral state.
    pub fn new(target: Temperature, kp: f64, ki: f64) -> Self {
        Self {
            target,
            kp,
            ki,
            integral: 0.0,
        }
    }

    /// Next window's fan speed given the observed hot-spot temperature,
    /// clamped to `[0, ω_max]` with integral anti-windup.
    pub fn speed(
        &mut self,
        observed: Temperature,
        window_seconds: f64,
        omega_max: AngularVelocity,
    ) -> AngularVelocity {
        let error = observed.kelvin() - self.target.kelvin(); // >0 = too hot
        self.integral =
            (self.integral + self.ki * error * window_seconds).clamp(0.0, omega_max.rad_per_s());
        let command = self.kp * error + self.integral;
        AngularVelocity::from_rad_per_s(command.clamp(0.0, omega_max.rad_per_s()))
    }
}

/// Trajectory of a fan-control closed loop.
#[derive(Debug, Clone)]
pub struct FanLoopReport {
    /// End-of-window times (s).
    pub times: Vec<f64>,
    /// Hot-spot temperature at each window end.
    pub temperatures: Vec<Temperature>,
    /// Fan speed applied during each window.
    pub speeds: Vec<AngularVelocity>,
}

impl FanLoopReport {
    /// Worst absolute deviation from `target` over the last quarter of
    /// the run (steady-state tracking error).
    pub fn tracking_error(&self, target: Temperature) -> f64 {
        let tail = &self.temperatures[self.temperatures.len() * 3 / 4..];
        tail.iter()
            .map(|t| (t.kelvin() - target.kelvin()).abs())
            .fold(0.0, f64::max)
    }
}

/// Runs the PI fan controller in closed loop at a fixed TEC current.
///
/// # Errors
///
/// Propagates thermal-model errors (e.g. the controller driving ω to zero
/// on a workload that then runs away — a real failure mode worth
/// surfacing).
///
/// # Panics
///
/// Panics if `windows == 0` or `window_seconds <= 0`.
pub fn run_fan_loop(
    system: &CoolingSystem,
    tec_current: Current,
    controller: &mut PiFanController,
    windows: usize,
    window_seconds: f64,
) -> Result<FanLoopReport, OftecError> {
    run_fan_loop_on_model(
        system.tec_model(),
        tec_current,
        controller,
        windows,
        window_seconds,
    )
}

/// [`run_fan_loop`] on an arbitrary (e.g. fault-injecting) model, with the
/// same panic and non-finite guards as [`run_closed_loop_on_model`].
///
/// # Errors
///
/// Propagates thermal-model errors, panics, and non-finite observations as
/// typed [`OftecError`]s.
///
/// # Panics
///
/// Panics if `windows == 0` or `window_seconds <= 0`.
pub fn run_fan_loop_on_model<M: CoolingModel>(
    model: &M,
    tec_current: Current,
    controller: &mut PiFanController,
    windows: usize,
    window_seconds: f64,
) -> Result<FanLoopReport, OftecError> {
    assert!(windows > 0, "need at least one control window");
    assert!(window_seconds > 0.0, "window must have positive length");
    let _span = telemetry::span("reactive.fan_loop");
    telemetry::counter_add("reactive.windows", windows as u64);
    let omega_max = model.config().fan.omega_max;

    // Start at half speed, passive steady state.
    let start_op = OperatingPoint::new(omega_max * 0.5, tec_current);
    let start = guard(start_op, || model.solve(start_op))?;
    let mut state = start.node_temperatures().to_vec();
    let mut observed = start.max_chip_temperature();
    check_observed(observed, start_op)?;

    let dt = (window_seconds / 10.0).min(0.02);
    let steps = (window_seconds / dt).ceil() as usize;
    let opts = TransientOptions {
        dt_seconds: dt,
        record_every: steps,
    };

    let mut times = Vec::with_capacity(windows);
    let mut temperatures = Vec::with_capacity(windows);
    let mut speeds = Vec::with_capacity(windows);
    for w in 0..windows {
        let omega = controller.speed(observed, window_seconds, omega_max);
        let op = OperatingPoint::new(omega, tec_current);
        let trace = guard(op, || {
            model.simulate_transient_from(op, Some(&state), steps, &opts)
        })?;
        state = trace.final_state.clone();
        observed = trace.last();
        check_observed(observed, op)?;
        times.push((w + 1) as f64 * window_seconds);
        temperatures.push(observed);
        speeds.push(omega);
    }
    Ok(FanLoopReport {
        times,
        temperatures,
        speeds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;

    fn system() -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(
            Benchmark::Dijkstra,
            &PackageConfig::dac14_coarse(),
        )
    }

    fn rpm(v: f64) -> AngularVelocity {
        AngularVelocity::from_rpm(v)
    }

    #[test]
    fn threshold_controller_regulates() {
        let system = system();
        // Passive steady state at 2600 RPM sits above the threshold we
        // pick, so the controller must engage.
        let passive = system
            .tec_model()
            .solve(OperatingPoint::fan_only(rpm(2600.0)))
            .unwrap()
            .max_chip_temperature();
        let mut policy = ThresholdController {
            threshold: Temperature::from_kelvin(passive.kelvin() - 2.0),
            drive: Current::from_amperes(2.0),
        };
        let report = run_closed_loop(&system, rpm(2600.0), &mut policy, 30, 0.5).unwrap();
        assert!(report.transitions >= 1, "controller never engaged");
        assert!(
            report.peak().kelvin() <= passive.kelvin() + 0.5,
            "controller made things worse"
        );
        // Some window must actually drive current.
        assert!(report.currents.iter().any(|i| i.amperes() > 0.0));
        assert!(report.tec_energy_joules > 0.0);
    }

    #[test]
    fn hysteresis_switches_less_than_threshold() {
        let system = system();
        let passive = system
            .tec_model()
            .solve(OperatingPoint::fan_only(rpm(2600.0)))
            .unwrap()
            .max_chip_temperature();
        let t_on = Temperature::from_kelvin(passive.kelvin() - 1.0);
        let mut thr = ThresholdController {
            threshold: t_on,
            drive: Current::from_amperes(2.5),
        };
        let mut hys = HysteresisController::new(
            t_on,
            Temperature::from_kelvin(t_on.kelvin() - 3.0),
            Current::from_amperes(2.5),
        );
        let a = run_closed_loop(&system, rpm(2600.0), &mut thr, 60, 0.5).unwrap();
        let b = run_closed_loop(&system, rpm(2600.0), &mut hys, 60, 0.5).unwrap();
        assert!(
            b.transitions <= a.transitions,
            "hysteresis ({}) must not switch more than threshold ({})",
            b.transitions,
            a.transitions
        );
    }

    #[test]
    fn constant_current_has_no_transitions_after_start() {
        let system = system();
        let mut policy = ConstantCurrent(Current::from_amperes(1.0));
        let report = run_closed_loop(&system, rpm(2600.0), &mut policy, 10, 0.5).unwrap();
        // One OFF→ON transition at the start, none after.
        assert_eq!(report.transitions, 1);
        assert!(report.ripple() < 1.0, "constant drive must not ripple");
    }

    #[test]
    fn pi_fan_controller_tracks_the_setpoint() {
        let system = system();
        // Pick a setpoint the fan can actually reach at I = 1 A: between
        // the full-speed and half-speed steady temps.
        let model = system.tec_model();
        let i = Current::from_amperes(1.0);
        let t_fast = model
            .solve(OperatingPoint::new(system.package().fan.omega_max, i))
            .unwrap()
            .max_chip_temperature();
        let t_slow = model
            .solve(OperatingPoint::new(system.package().fan.omega_max * 0.4, i))
            .unwrap()
            .max_chip_temperature();
        let target = Temperature::from_kelvin(0.5 * (t_fast.kelvin() + t_slow.kelvin()));
        let mut pi = PiFanController::new(target, 20.0, 8.0);
        let report = run_fan_loop(&system, i, &mut pi, 80, 1.0).unwrap();
        let err = report.tracking_error(target);
        assert!(err < 1.0, "PI tracking error {err} K at target {target}");
        // The loop actually moved the fan.
        let (lo, hi) = report
            .speeds
            .iter()
            .fold((f64::MAX, f64::MIN), |(a, b), s| {
                (a.min(s.rpm()), b.max(s.rpm()))
            });
        assert!(hi - lo > 100.0, "fan never moved: {lo}..{hi} RPM");
    }

    #[test]
    #[should_panic(expected = "hysteresis band")]
    fn inverted_band_panics() {
        let _ = HysteresisController::new(
            Temperature::from_celsius(80.0),
            Temperature::from_celsius(85.0),
            Current::from_amperes(1.0),
        );
    }
}
