//! A complete per-workload cooling setup.

use std::sync::OnceLock;

use oftec_floorplan::{alpha21264, Floorplan};
use oftec_power::{Benchmark, LeakageModel, McpatBudget};
use oftec_tec::TecDeviceParams;
use oftec_thermal::{
    CoolingConfig, HybridCoolingModel, PackageConfig, ReducedCoolingModel, ReducedModel,
    ReductionOptions,
};
use oftec_units::{Power, Temperature};

/// Evaluation count at which a POD basis build pays for itself: the build
/// costs roughly this many full steady solves (BENCH_reduction.json
/// measures the break-even at ≈ 44 on the dac14 package), so callers
/// expecting fewer evaluations should stay on the full path.
pub const REDUCED_BUILD_AMORTIZATION_EVALS: usize = 44;

/// Everything OFTEC needs for one workload: the die, the Table 1 package,
/// the per-unit maximum dynamic power vector, the leakage model, and the
/// thermal limit — with pre-built thermal models for both the hybrid
/// (TEC + fan) assembly and the fan-only baseline.
#[derive(Debug, Clone)]
pub struct CoolingSystem {
    name: String,
    floorplan: Floorplan,
    package: PackageConfig,
    t_max: Temperature,
    dynamic_power: Vec<f64>,
    leakage: LeakageModel,
    tec_model: HybridCoolingModel,
    fan_model: HybridCoolingModel,
    /// Lazily built reduced-order companion of `tec_model`. `Some(None)`
    /// records a failed build so it is attempted only once; the reduced
    /// wrapper then transparently degrades to the full model.
    reduced: OnceLock<Option<ReducedModel>>,
}

impl CoolingSystem {
    /// Builds the paper's setup for one MiBench benchmark: Alpha 21264
    /// floorplan, Table 1 package, 22 nm leakage budget, TECs everywhere
    /// except the caches, `T_max` = 90 °C.
    pub fn for_benchmark(benchmark: Benchmark) -> Self {
        Self::for_benchmark_with_config(benchmark, &PackageConfig::dac14())
    }

    /// Like [`CoolingSystem::for_benchmark`] with a custom package
    /// configuration (e.g. a coarser grid for tests).
    ///
    /// # Panics
    ///
    /// Panics only if the bundled floorplan and profiles disagree (they
    /// cannot).
    pub fn for_benchmark_with_config(benchmark: Benchmark, package: &PackageConfig) -> Self {
        let floorplan = alpha21264();
        let dynamic_power = benchmark
            .max_dynamic_power(&floorplan)
            // oftec-lint: allow(L006, documented panicking constructor; the bundled floorplan carries every profiled unit)
            .unwrap_or_else(|e| panic!("bundled floorplan has every profiled unit: {e}"));
        let leakage = McpatBudget::alpha21264_22nm().distribute(&floorplan);
        Self::new(
            benchmark.name(),
            floorplan,
            package.clone(),
            dynamic_power,
            leakage,
            crate::default_t_max(),
        )
    }

    /// Fully custom construction, with the paper's TEC deployment policy
    /// (everything except units named `Icache`/`Dcache`).
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the floorplan (propagated from
    /// the thermal model builders).
    pub fn new(
        name: impl Into<String>,
        floorplan: Floorplan,
        package: PackageConfig,
        dynamic_power: Vec<f64>,
        leakage: LeakageModel,
        t_max: Temperature,
    ) -> Self {
        Self::with_tec_exclusions(
            name,
            floorplan,
            package,
            dynamic_power,
            leakage,
            t_max,
            &["Icache", "Dcache"],
        )
    }

    /// Like [`CoolingSystem::new`] but with an explicit list of units left
    /// uncovered by TECs (for custom dies where the cold blocks are not
    /// named like the Alpha's caches).
    ///
    /// # Panics
    ///
    /// Panics if the vectors do not match the floorplan.
    pub fn with_tec_exclusions(
        name: impl Into<String>,
        floorplan: Floorplan,
        package: PackageConfig,
        dynamic_power: Vec<f64>,
        leakage: LeakageModel,
        t_max: Temperature,
        excluded_units: &[&str],
    ) -> Self {
        let deployment = oftec_tec::TecDeployment::tile_except(
            &floorplan,
            package.die_dims,
            TecDeviceParams::superlattice_thin_film(),
            excluded_units,
        );
        let tec_model = HybridCoolingModel::new(
            &floorplan,
            &package,
            CoolingConfig::HybridTec(deployment),
            dynamic_power.clone(),
            &leakage,
        )
        // oftec-lint: allow(L006, documented panicking constructor; inputs validated by the caller contract)
        .unwrap_or_else(|e| panic!("inputs validated by the caller contract: {e}"));
        let fan_model =
            HybridCoolingModel::fan_only(&floorplan, &package, dynamic_power.clone(), &leakage);
        Self {
            name: name.into(),
            floorplan,
            package,
            t_max,
            dynamic_power,
            leakage,
            tec_model,
            fan_model,
            reduced: OnceLock::new(),
        }
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The die floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// The package configuration.
    pub fn package(&self) -> &PackageConfig {
        &self.package
    }

    /// The thermal limit `T_max` (constraint (15)).
    pub fn t_max(&self) -> Temperature {
        self.t_max
    }

    /// Replaces the thermal limit.
    pub fn set_t_max(&mut self, t_max: Temperature) {
        self.t_max = t_max;
    }

    /// The per-unit maximum dynamic power vector (W, floorplan order).
    pub fn dynamic_power(&self) -> &[f64] {
        &self.dynamic_power
    }

    /// Total dynamic power of the workload.
    pub fn total_dynamic_power(&self) -> Power {
        Power::from_watts(self.dynamic_power.iter().sum())
    }

    /// The leakage model.
    pub fn leakage(&self) -> &LeakageModel {
        &self.leakage
    }

    /// The hybrid (TEC + fan) thermal model.
    pub fn tec_model(&self) -> &HybridCoolingModel {
        &self.tec_model
    }

    /// The reduced-order view of the hybrid model: steady-state solves go
    /// through the precomputed POD basis (microseconds per evaluation)
    /// with a residual-certified fallback to the full CG path.
    ///
    /// The reduced model is built on first use and cached for the life of
    /// the system (a few dozen warm-started full solves). If the build
    /// fails — e.g. too few feasible snapshot points — the failure is
    /// cached too and the returned wrapper simply delegates everything to
    /// the full model.
    pub fn reduced_tec_model(&self) -> ReducedCoolingModel<'_> {
        let reduced = self
            .reduced
            .get_or_init(|| {
                self.tec_model
                    .build_reduced(&ReductionOptions::default())
                    .ok()
            })
            .as_ref();
        ReducedCoolingModel::new(&self.tec_model, reduced)
    }

    /// [`CoolingSystem::reduced_tec_model`] with an evaluation-budget
    /// hint: `expected_evals` is how many steady solves the caller
    /// expects to perform against the returned model.
    ///
    /// Building the POD basis costs a few dozen warm-started full solves
    /// (≈ [`REDUCED_BUILD_AMORTIZATION_EVALS`] per BENCH_reduction.json),
    /// so a caller that will only make a handful of evaluations is better
    /// served by the full model. Below the amortization point this skips
    /// the build (counting `reduction.builds_skipped`) and returns a
    /// wrapper that delegates to the full model — unless a basis is
    /// already cached, in which case using it is free and the budget is
    /// irrelevant.
    pub fn reduced_tec_model_with_budget(&self, expected_evals: usize) -> ReducedCoolingModel<'_> {
        if self.reduced.get().is_none() && expected_evals < REDUCED_BUILD_AMORTIZATION_EVALS {
            oftec_telemetry::counter_add("reduction.builds_skipped", 1);
            return ReducedCoolingModel::new(&self.tec_model, None);
        }
        self.reduced_tec_model()
    }

    /// The fan-only baseline thermal model (fairness-boosted TIM1, §6.1).
    pub fn fan_model(&self) -> &HybridCoolingModel {
        &self.fan_model
    }

    /// Builds the "unfair" plain-paste baseline model on demand (used by
    /// ablation experiments only).
    pub fn plain_fan_model(&self) -> HybridCoolingModel {
        HybridCoolingModel::new(
            &self.floorplan,
            &self.package,
            CoolingConfig::fan_only_plain(
                &self.package,
                &TecDeviceParams::superlattice_thin_film(),
            ),
            self.dynamic_power.clone(),
            &self.leakage,
        )
        // oftec-lint: allow(L006, documented panicking constructor; mirrors the already-validated models)
        .unwrap_or_else(|e| panic!("construction mirrors the validated models: {e}"))
    }

    /// Builds a copy of this system with the dynamic power uniformly
    /// scaled — used by the LUT controller to span power classes.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        Self::new(
            format!("{}×{:.2}", self.name, factor),
            self.floorplan.clone(),
            self.package.clone(),
            self.dynamic_power.iter().map(|p| p * factor).collect(),
            self.leakage.clone(),
            self.t_max,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_system_is_consistent() {
        let s = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        assert_eq!(s.name(), "CRC32");
        assert_eq!(s.dynamic_power().len(), s.floorplan().units().len());
        assert!(s.tec_model().has_tec());
        assert!(!s.fan_model().has_tec());
        assert_eq!(s.t_max(), Temperature::from_celsius(90.0));
        assert!(s.total_dynamic_power().watts() > 10.0);
    }

    #[test]
    fn scaling_scales_power() {
        let s = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        let half = s.scaled(0.5);
        assert!(
            (half.total_dynamic_power().watts() - 0.5 * s.total_dynamic_power().watts()).abs()
                < 1e-9
        );
    }

    #[test]
    fn reduced_model_is_built_once_and_agrees() {
        use oftec_thermal::{CoolingModel, OperatingPoint};
        use oftec_units::{AngularVelocity, Current};
        let s = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        let reduced = s.reduced_tec_model();
        assert!(reduced.reduced_model().is_some());
        // Second call reuses the cached build (same allocation).
        let again = s.reduced_tec_model();
        assert!(std::ptr::eq(
            reduced.reduced_model().unwrap(),
            again.reduced_model().unwrap()
        ));
        let op = OperatingPoint::new(
            AngularVelocity::from_rpm(3200.0),
            Current::from_amperes(1.0),
        );
        let fast = reduced.solve(op).unwrap();
        let full = s.tec_model().solve(op).unwrap();
        assert!(
            (fast.max_chip_temperature().kelvin() - full.max_chip_temperature().kelvin()).abs()
                < 0.1
        );
    }

    #[test]
    fn short_eval_budget_skips_the_basis_build() {
        oftec_telemetry::set_collecting(true);
        let s = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        let (_, buf) = oftec_telemetry::capture(|| {
            let m = s.reduced_tec_model_with_budget(REDUCED_BUILD_AMORTIZATION_EVALS - 1);
            assert!(
                m.reduced_model().is_none(),
                "a budget below the amortization point must not build"
            );
        });
        assert_eq!(buf.counter("reduction.builds_skipped"), 1);
        // At the amortization point the build happens; afterwards even a
        // one-eval budget rides the cached basis for free.
        let m = s.reduced_tec_model_with_budget(REDUCED_BUILD_AMORTIZATION_EVALS);
        assert!(m.reduced_model().is_some());
        let (_, buf) = oftec_telemetry::capture(|| {
            let m = s.reduced_tec_model_with_budget(1);
            assert!(m.reduced_model().is_some(), "cached basis is free");
        });
        assert_eq!(buf.counter("reduction.builds_skipped"), 0);
    }

    #[test]
    fn plain_model_builds() {
        let s = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        let plain = s.plain_fan_model();
        assert!(!plain.has_tec());
    }
}
