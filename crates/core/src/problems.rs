//! Optimization 1 and Optimization 2 as [`NlpProblem`]s.
//!
//! Decision variables are scaled to the unit square:
//! `x = (ω/ω_max, I/I_max)` (or just `ω/ω_max` for fan-only systems), so
//! the SQP/BFGS machinery sees well-conditioned steps regardless of the
//! physical units (rad/s vs amperes).
//!
//! Every objective/constraint evaluation is one steady-state thermal
//! solve; a small memo cache deduplicates the objective + constraint
//! evaluations the solvers make at the same point. Runaway points
//! evaluate to `None`, which the solvers treat as prohibitively bad —
//! the "infinite" region of Figure 6(a)(b).

use oftec_optim::NlpProblem;
use oftec_telemetry::Counter;
use oftec_thermal::{CoolingModel, HybridCoolingModel, OperatingPoint};
use oftec_units::{AngularVelocity, Current, Temperature};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Mutex, PoisonError};

/// Which objective is being minimized.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoolingObjective {
    /// Optimization 1: total cooling-related power 𝒫 (Eq. (10)), with the
    /// `T_i < T_max` inequality as an explicit constraint.
    Power,
    /// Optimization 2: maximum die temperature 𝒯 (Eq. (19)), with box
    /// bounds only.
    MaxTemperature,
}

/// Temperature scale (K) used to normalize the thermal constraint.
const CONSTRAINT_SCALE: f64 = 10.0;

/// Interior margin (K) subtracted from `T_max` in the Optimization 1
/// constraint. The paper's constraint (15) is strict (`T_i < T_max`) while
/// SQP rides active constraints to equality; the margin keeps the returned
/// optimum strictly feasible at a negligible power cost.
const T_MAX_MARGIN_KELVIN: f64 = 0.1;

/// Memoized evaluation of one operating point.
#[derive(Debug, Clone, Copy)]
struct Eval {
    /// Objective 𝒫 in watts; `None` when the point has no steady state.
    power: Option<f64>,
    /// Max chip temperature in Kelvin; `None` on runaway.
    max_temp: Option<f64>,
}

/// Memo cache, behind one mutex so the problem is `Sync` and can be
/// evaluated from the parallel grid-search/multistart workers. The lock
/// is never held across a thermal solve.
#[derive(Debug, Default)]
struct CacheState {
    /// FIFO of recent evaluations; eviction pops the front in O(1).
    entries: VecDeque<([f64; 2], Eval)>,
}

/// The shared machinery of both problems.
///
/// Instrumentation lives on [`oftec_telemetry::Counter`] handles: each
/// keeps an exact per-instance count (the [`CoolingProblem::cache_hits`]
/// family of accessors) and mirrors the same increments into the global
/// registry under its metric name whenever telemetry is collecting.
#[derive(Debug)]
pub struct CoolingProblem<'a, M: CoolingModel = HybridCoolingModel> {
    model: &'a M,
    objective: CoolingObjective,
    t_max: Temperature,
    with_tec: bool,
    cache: Mutex<CacheState>,
    /// Most recent non-runaway model fault (panic message, solver error,
    /// or non-finite screen), for surfacing in infeasibility reports.
    last_fault: Mutex<Option<String>>,
    /// Thermal solves performed (`problem.thermal_solves`).
    solves: Counter,
    /// Evaluations answered from the cache (`problem.cache.hits`).
    hits: Counter,
    /// Evaluations that had to solve (`problem.cache.misses`).
    misses: Counter,
}

impl<'a, M: CoolingModel> CoolingProblem<'a, M> {
    /// Builds a problem over `(ω, I_TEC)` for a hybrid model, or over `ω`
    /// alone for a fan-only model (detected from the model).
    pub fn new(model: &'a M, objective: CoolingObjective, t_max: Temperature) -> Self {
        Self {
            model,
            objective,
            t_max,
            with_tec: model.has_tec(),
            cache: Mutex::new(CacheState::default()),
            last_fault: Mutex::new(None),
            solves: Counter::new("problem.thermal_solves"),
            hits: Counter::new("problem.cache.hits"),
            misses: Counter::new("problem.cache.misses"),
        }
    }

    /// Number of thermal solves performed so far (diagnostics; the paper
    /// reports solver runtimes that are dominated by these).
    pub fn thermal_solves(&self) -> usize {
        self.solves.get() as usize
    }

    /// Evaluations answered from the memo cache.
    pub fn cache_hits(&self) -> usize {
        self.hits.get() as usize
    }

    /// Evaluations that required a thermal solve.
    pub fn cache_misses(&self) -> usize {
        self.misses.get() as usize
    }

    /// The most recent model fault seen at the evaluation boundary: a
    /// caught panic, a non-runaway solver error, or a non-finite screen.
    /// `None` if every evaluation so far was clean or plain runaway.
    pub fn last_fault(&self) -> Option<String> {
        self.last_fault
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    fn record_fault(&self, description: String) {
        *self
            .last_fault
            .lock()
            .unwrap_or_else(PoisonError::into_inner) = Some(description);
    }

    /// Converts scaled decision variables to a physical operating point.
    pub fn operating_point(&self, x: &[f64]) -> OperatingPoint {
        let fan = self.model.config().fan.omega_max * x[0].clamp(0.0, 1.0);
        let current = if self.with_tec {
            Current::from_amperes(5.0 * x[1].clamp(0.0, 1.0))
        } else {
            Current::ZERO
        };
        OperatingPoint::new(fan, current)
    }

    /// Converts a physical operating point to scaled variables.
    pub fn scale_point(&self, op: OperatingPoint) -> Vec<f64> {
        let w = op.fan_speed.rad_per_s() / self.model.config().fan.omega_max.rad_per_s();
        if self.with_tec {
            vec![w, op.tec_current.amperes() / 5.0]
        } else {
            vec![w]
        }
    }

    fn key(&self, x: &[f64]) -> [f64; 2] {
        [x[0], if self.with_tec { x[1] } else { 0.0 }]
    }

    fn evaluate(&self, x: &[f64]) -> Eval {
        let key = self.key(x);
        {
            let state = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some((_, e)) = state
                .entries
                .iter()
                .find(|(k, _)| k[0] == key[0] && k[1] == key[1])
            {
                let e = *e;
                drop(state);
                self.hits.add(1);
                return e;
            }
        }
        // Solve outside the lock so concurrent workers don't serialize on
        // the cache; two workers may redundantly solve the same fresh
        // point, which is benign (identical result, counted as a miss).
        // The solve runs behind catch_unwind and a non-finite screen: a
        // panicking or NaN-spewing model degrades into an infeasible
        // evaluation (with the fault recorded) instead of taking down the
        // whole optimization.
        let op = self.operating_point(x);
        let bad = Eval {
            power: None,
            max_temp: None,
        };
        let eval = match catch_unwind(AssertUnwindSafe(|| self.model.solve(op))) {
            Ok(Ok(sol)) => {
                let power = sol.objective_power().watts();
                let max_temp = sol.max_chip_temperature().kelvin();
                if power.is_finite() && max_temp.is_finite() {
                    Eval {
                        power: Some(power),
                        max_temp: Some(max_temp),
                    }
                } else {
                    oftec_telemetry::counter_add("problem.non_finite", 1);
                    oftec_telemetry::event(
                        oftec_telemetry::Severity::Warn,
                        "problem.non_finite",
                        &[
                            ("omega_rpm", oftec_telemetry::Field::F64(op.fan_speed.rpm())),
                            (
                                "current_a",
                                oftec_telemetry::Field::F64(op.tec_current.amperes()),
                            ),
                        ],
                    );
                    self.record_fault(format!(
                        "non-finite solution (𝒫 = {power}, 𝒯 = {max_temp} K) at {op:?}"
                    ));
                    bad
                }
            }
            Ok(Err(e)) => {
                if !e.is_runaway() {
                    self.record_fault(format!("thermal solve failed at {op:?}: {e}"));
                }
                bad
            }
            Err(payload) => {
                let message = oftec_parallel::payload_message(payload);
                oftec_telemetry::counter_add("problem.model_panics", 1);
                oftec_telemetry::event(
                    oftec_telemetry::Severity::Warn,
                    "problem.model_panic",
                    &[
                        ("message", oftec_telemetry::Field::Str(&message)),
                        ("omega_rpm", oftec_telemetry::Field::F64(op.fan_speed.rpm())),
                    ],
                );
                self.record_fault(format!("model panicked at {op:?}: {message}"));
                bad
            }
        };
        self.solves.add(1);
        self.misses.add(1);
        let mut state = self.cache.lock().unwrap_or_else(PoisonError::into_inner);
        if state.entries.len() >= 16 {
            state.entries.pop_front();
        }
        state.entries.push_back((key, eval));
        eval
    }

    /// Maximum die temperature at scaled point `x` (for early-stop
    /// predicates), `None` on runaway.
    pub fn max_temperature(&self, x: &[f64]) -> Option<Temperature> {
        self.evaluate(x).max_temp.map(Temperature::from_kelvin)
    }

    /// The fan speed corresponding to `x\[0\] = 1`.
    pub fn omega_max(&self) -> AngularVelocity {
        self.model.config().fan.omega_max
    }

    /// Decodes the maximum die temperature (Kelvin) embedded in an SQP
    /// convergence sample of *this* problem, inverting the objective /
    /// constraint scaling: Optimization 2 stores it in the objective
    /// (`T = T_amb + scale·f`), Optimization 1 in the thermal constraint
    /// (`T = T_max − margin − scale·c₀`). Returns `None` for penalty
    /// (runaway) samples.
    pub fn sample_max_temperature(&self, sample: &oftec_optim::IterSample) -> Option<f64> {
        match self.objective {
            CoolingObjective::MaxTemperature => {
                if sample.objective >= oftec_optim::PENALTY_OBJECTIVE {
                    return None;
                }
                Some(self.model.config().ambient.kelvin() + CONSTRAINT_SCALE * sample.objective)
            }
            CoolingObjective::Power => {
                let c0 = *sample.constraints.first()?;
                if c0 <= -oftec_optim::PENALTY_OBJECTIVE / CONSTRAINT_SCALE {
                    return None;
                }
                Some(self.t_max.kelvin() - T_MAX_MARGIN_KELVIN - CONSTRAINT_SCALE * c0)
            }
        }
    }
}

impl<M: CoolingModel> NlpProblem for CoolingProblem<'_, M> {
    fn dim(&self) -> usize {
        if self.with_tec {
            2
        } else {
            1
        }
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (vec![0.0; self.dim()], vec![1.0; self.dim()])
    }

    fn objective(&self, x: &[f64]) -> Option<f64> {
        let e = self.evaluate(x);
        match self.objective {
            CoolingObjective::Power => e.power,
            // Normalize 𝒯 to ~O(1): Kelvin above ambient / scale.
            CoolingObjective::MaxTemperature => e
                .max_temp
                .map(|t| (t - self.model.config().ambient.kelvin()) / CONSTRAINT_SCALE),
        }
    }

    fn n_constraints(&self) -> usize {
        match self.objective {
            CoolingObjective::Power => 1,
            CoolingObjective::MaxTemperature => 0,
        }
    }

    fn constraints(&self, x: &[f64]) -> Option<Vec<f64>> {
        match self.objective {
            CoolingObjective::MaxTemperature => Some(Vec::new()),
            CoolingObjective::Power => self
                .evaluate(x)
                .max_temp
                .map(|t| vec![(self.t_max.kelvin() - T_MAX_MARGIN_KELVIN - t) / CONSTRAINT_SCALE]),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoolingSystem;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;

    fn system() -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &PackageConfig::dac14_coarse(),
        )
    }

    #[test]
    fn dimensions_follow_model() {
        let s = system();
        let p2 = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        assert_eq!(p2.dim(), 2);
        assert_eq!(p2.n_constraints(), 1);
        let p1 = CoolingProblem::new(s.fan_model(), CoolingObjective::MaxTemperature, s.t_max());
        assert_eq!(p1.dim(), 1);
        assert_eq!(p1.n_constraints(), 0);
    }

    #[test]
    fn scaling_round_trip() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        let op = p.operating_point(&[0.5, 0.4]);
        assert!((op.fan_speed.rpm() - 2500.0).abs() < 1.0);
        assert!((op.tec_current.amperes() - 2.0).abs() < 1e-9);
        let back = p.scale_point(op);
        assert!((back[0] - 0.5).abs() < 1e-12);
        assert!((back[1] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn objective_and_constraint_are_consistent() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        let x = [0.6, 0.2];
        let f = p.objective(&x).unwrap();
        assert!(f > 5.0 && f < 60.0, "𝒫 = {f} W");
        let c = p.constraints(&x).unwrap();
        // Basicmath at 3000 RPM is comfortably below 90 °C.
        assert!(c[0] > 0.0);
        let t = p.max_temperature(&x).unwrap();
        assert!((c[0] - (s.t_max().kelvin() - 0.1 - t.kelvin()) / 10.0).abs() < 1e-12);
    }

    #[test]
    fn cache_deduplicates_solves() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        let x = [0.5, 0.5];
        let _ = p.objective(&x);
        let n1 = p.thermal_solves();
        let _ = p.constraints(&x);
        let _ = p.objective(&x);
        assert_eq!(p.thermal_solves(), n1, "repeat evaluations must hit cache");
        assert_eq!(p.cache_misses(), 1);
        assert_eq!(p.cache_hits(), 2);
    }

    #[test]
    fn cache_evicts_oldest_entry_first() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        // Fill the 16-entry cache, then one more: [0.5, 0.5] (the first
        // inserted) is evicted, everything newer is retained.
        for i in 0..17 {
            let _ = p.objective(&[0.5 + 0.01 * i as f64, 0.5]);
        }
        assert_eq!(p.cache_misses(), 17);
        let _ = p.objective(&[0.5 + 0.01 * 16.0, 0.5]); // newest: hit
        assert_eq!(p.cache_hits(), 1);
        let _ = p.objective(&[0.5, 0.5]); // evicted: miss again
        assert_eq!(p.cache_misses(), 18);
    }

    #[test]
    fn runaway_region_returns_none() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::Power, s.t_max());
        // ω ≈ 0: still-air; basicmath + leakage feedback has no steady
        // state (classified by cap or non-PD).
        let f = p.objective(&[0.0, 0.3]);
        assert!(f.is_none(), "expected runaway at ω = 0, got {f:?}");
    }

    #[test]
    fn max_temp_objective_tracks_kelvin() {
        let s = system();
        let p = CoolingProblem::new(s.tec_model(), CoolingObjective::MaxTemperature, s.t_max());
        let x = [0.8, 0.1];
        let f = p.objective(&x).unwrap();
        let t = p.max_temperature(&x).unwrap();
        let expect = (t.kelvin() - s.package().ambient.kelvin()) / 10.0;
        assert!((f - expect).abs() < 1e-12);
    }
}
