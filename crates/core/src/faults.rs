//! Fault injection for robustness testing.
//!
//! [`FaultyModel`] wraps any [`CoolingModel`] and corrupts its answers at
//! a configurable solve-call count: returning NaN-poisoned solutions,
//! returning errors, or panicking outright. The no-panic robustness
//! suite drives every public solve entry point through this wrapper to
//! prove the pipeline degrades into typed errors and verdicts instead of
//! aborting.

use oftec_telemetry as telemetry;
use oftec_thermal::{
    CoolingModel, OperatingPoint, PackageConfig, ThermalError, ThermalSolution, TransientOptions,
    TransientTrace,
};
use std::sync::atomic::{AtomicUsize, Ordering};

/// What the wrapper injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Return the inner model's solution with every temperature and
    /// power replaced by NaN (a silently corrupted solver).
    NonFinite,
    /// Return `Err(ThermalError)` instead of the inner answer.
    Error,
    /// Panic mid-solve (an aborting solver bug).
    Panic,
}

/// A [`CoolingModel`] wrapper that injects faults at configurable solve
/// counts. Solve-type calls (`solve`, `solve_from`,
/// `simulate_transient_from`) share one call counter; cheap accessors
/// (`config`, `has_tec`, `validate_operating_point`) never inject.
#[derive(Debug)]
pub struct FaultyModel<'a, M> {
    inner: &'a M,
    kind: FaultKind,
    /// Zero-based solve-call index at which the fault fires.
    fail_at: usize,
    /// `true`: every call from `fail_at` on faults. `false`: only the
    /// `fail_at`-th call faults; earlier and later calls pass through.
    sticky: bool,
    calls: AtomicUsize,
    injected: AtomicUsize,
}

impl<'a, M: CoolingModel> FaultyModel<'a, M> {
    /// Wraps `inner`, injecting `kind` at solve call `fail_at` and every
    /// call after it.
    pub fn new(inner: &'a M, kind: FaultKind, fail_at: usize) -> Self {
        Self {
            inner,
            kind,
            fail_at,
            sticky: true,
            calls: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// Like [`FaultyModel::new`] but fires exactly once, at call
    /// `fail_at`; all other calls pass through.
    pub fn once(inner: &'a M, kind: FaultKind, fail_at: usize) -> Self {
        Self {
            sticky: false,
            ..Self::new(inner, kind, fail_at)
        }
    }

    /// Total solve-type calls observed so far.
    pub fn calls(&self) -> usize {
        self.calls.load(Ordering::Relaxed)
    }

    /// Faults actually injected so far.
    pub fn injections(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// Decides whether this call faults; returns the call index if so.
    fn arm(&self) -> Option<usize> {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        let fire = if self.sticky {
            n >= self.fail_at
        } else {
            n == self.fail_at
        };
        if fire {
            self.injected.fetch_add(1, Ordering::Relaxed);
            telemetry::counter_add("faults.injected", 1);
            Some(n)
        } else {
            None
        }
    }

    fn steady_fault(
        &self,
        n: usize,
        op: OperatingPoint,
    ) -> Option<Result<ThermalSolution, ThermalError>> {
        match self.kind {
            FaultKind::NonFinite => None, // handled by the caller on the Ok path
            FaultKind::Error => Some(Err(ThermalError::Config(format!(
                "injected error at model call {n}"
            )))),
            // oftec-lint: allow(L006, the injected panic is the fault this wrapper exists to produce)
            FaultKind::Panic => panic!(
                "injected panic at model call {n} (ω = {:.0} RPM)",
                op.fan_speed.rpm()
            ),
        }
    }

    fn inject_steady(
        &self,
        op: OperatingPoint,
        result: impl FnOnce() -> Result<ThermalSolution, ThermalError>,
    ) -> Result<ThermalSolution, ThermalError> {
        match self.arm() {
            None => result(),
            Some(n) => match self.steady_fault(n, op) {
                Some(faulted) => faulted,
                // NonFinite: poison whatever the inner model produced.
                None => result().map(|sol| sol.poisoned_copy()),
            },
        }
    }
}

impl<M: CoolingModel> CoolingModel for FaultyModel<'_, M> {
    fn config(&self) -> &PackageConfig {
        self.inner.config()
    }

    fn has_tec(&self) -> bool {
        self.inner.has_tec()
    }

    fn validate_operating_point(&self, op: OperatingPoint) -> Result<(), ThermalError> {
        self.inner.validate_operating_point(op)
    }

    fn solve(&self, op: OperatingPoint) -> Result<ThermalSolution, ThermalError> {
        self.inject_steady(op, || self.inner.solve(op))
    }

    fn solve_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
    ) -> Result<ThermalSolution, ThermalError> {
        self.inject_steady(op, || self.inner.solve_from(op, initial))
    }

    fn simulate_transient_from(
        &self,
        op: OperatingPoint,
        initial: Option<&[f64]>,
        steps: usize,
        opts: &TransientOptions,
    ) -> Result<TransientTrace, ThermalError> {
        match self.arm() {
            None => self.inner.simulate_transient_from(op, initial, steps, opts),
            Some(n) => match self.kind {
                // No poisoned-trace constructor; a corrupted transient
                // solver surfaces as a NonFinite error instead.
                FaultKind::NonFinite => Err(ThermalError::NonFinite(format!(
                    "injected non-finite transient state at model call {n}"
                ))),
                FaultKind::Error => Err(ThermalError::Config(format!(
                    "injected error at model call {n}"
                ))),
                // oftec-lint: allow(L006, the injected panic is the fault this wrapper exists to produce)
                FaultKind::Panic => panic!("injected panic at model call {n} (transient)"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoolingSystem;
    use oftec_power::Benchmark;
    use oftec_units::{AngularVelocity, Current};

    fn system() -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(
            Benchmark::Basicmath,
            &oftec_thermal::PackageConfig::dac14_coarse(),
        )
    }

    fn op() -> OperatingPoint {
        OperatingPoint::new(
            AngularVelocity::from_rpm(3000.0),
            Current::from_amperes(1.0),
        )
    }

    #[test]
    fn passes_through_before_the_trigger() {
        let system = system();
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::Error, 2);
        assert!(faulty.solve(op()).is_ok());
        assert!(faulty.solve(op()).is_ok());
        assert!(faulty.solve(op()).is_err(), "third call must fault");
        assert_eq!(faulty.calls(), 3);
        assert_eq!(faulty.injections(), 1);
    }

    #[test]
    fn once_fires_exactly_once() {
        let system = system();
        let faulty = FaultyModel::once(system.tec_model(), FaultKind::Error, 1);
        assert!(faulty.solve(op()).is_ok());
        assert!(faulty.solve(op()).is_err());
        assert!(faulty.solve(op()).is_ok(), "one-shot fault must clear");
        assert_eq!(faulty.injections(), 1);
    }

    #[test]
    fn non_finite_poisons_the_solution() {
        let system = system();
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::NonFinite, 0);
        let sol = faulty.solve(op()).expect("poisoning keeps the Ok shape");
        assert!(sol.max_chip_temperature().kelvin().is_nan());
        assert!(sol.objective_power().watts().is_nan());
    }

    #[test]
    fn panic_kind_panics_with_the_call_index() {
        let system = system();
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::Panic, 0);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| faulty.solve(op())))
            .expect_err("must panic");
        let msg = oftec_parallel::payload_message(err);
        assert!(msg.contains("injected panic at model call 0"), "{msg}");
    }

    #[test]
    fn accessors_never_inject() {
        let system = system();
        let faulty = FaultyModel::new(system.tec_model(), FaultKind::Panic, 0);
        assert!(faulty.has_tec());
        faulty.validate_operating_point(op()).unwrap();
        assert_eq!(faulty.calls(), 0);
    }
}
