//! The paper's comparison systems (§6.1): a variable-speed fan without
//! TECs, a fixed 2000 RPM fan, and the TEC-only configuration that cannot
//! avoid thermal runaway.

use crate::CoolingSystem;
use crate::{Oftec, OftecOutcome};
use oftec_telemetry as telemetry;
use oftec_thermal::{CoolingModel, OperatingPoint, ThermalError, ThermalSolution};
use oftec_units::{AngularVelocity, Current, Power, Temperature};

/// Result of evaluating a baseline on one workload.
#[derive(Debug, Clone)]
pub enum BaselineOutcome {
    /// The baseline meets `T_max`.
    Feasible {
        /// Its operating point.
        operating_point: OperatingPoint,
        /// Steady state at that point.
        solution: ThermalSolution,
    },
    /// The baseline cannot meet `T_max`; holds the coolest temperature it
    /// can reach (if a steady state exists at all).
    Infeasible {
        /// Coolest achievable maximum die temperature.
        best_temperature: Option<Temperature>,
    },
}

impl BaselineOutcome {
    /// Returns `true` if the baseline met the constraint.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Feasible { .. })
    }

    /// Cooling power 𝒫, when feasible.
    pub fn cooling_power(&self) -> Option<Power> {
        match self {
            Self::Feasible { solution, .. } => Some(solution.objective_power()),
            Self::Infeasible { .. } => None,
        }
    }

    /// Maximum die temperature: the solution's when feasible, the best
    /// achievable when not.
    pub fn max_temperature(&self) -> Option<Temperature> {
        match self {
            Self::Feasible { solution, .. } => Some(solution.max_chip_temperature()),
            Self::Infeasible { best_temperature } => *best_temperature,
        }
    }
}

/// Baseline 1: no TECs, fan speed chosen "using a method similar to OFTEC
/// with the difference that no TEC current is required to be found".
///
/// `minimize_power = true` runs the Optimization 1 analogue (the paper's
/// Figure 6(e)(f) comparison); `false` runs the Optimization 2 analogue
/// (coolest possible, Figure 6(c)(d)).
pub fn variable_speed_fan(system: &CoolingSystem, minimize_power: bool) -> BaselineOutcome {
    variable_speed_fan_on_model(system.fan_model(), system.t_max(), minimize_power)
}

/// [`variable_speed_fan`] on an arbitrary (e.g. fault-injecting) model.
/// Solver errors degrade into the sweep path and are WARN-logged; the
/// baseline always returns a verdict.
pub fn variable_speed_fan_on_model<M: CoolingModel>(
    model: &M,
    t_max: Temperature,
    minimize_power: bool,
) -> BaselineOutcome {
    let outcome = Oftec::default().run_on_model(model, t_max);
    match outcome {
        Ok(OftecOutcome::Optimized(sol)) => {
            if minimize_power {
                BaselineOutcome::Feasible {
                    operating_point: sol.operating_point,
                    solution: sol.solution,
                }
            } else {
                // Optimization 2 analogue: sweep to the coolest ω (the 1-D
                // temperature objective is monotone until fan self-heating
                // dominates, so a fine sweep is cheap and exact enough).
                coolest_fan_point_on_model(model, t_max)
            }
        }
        Ok(OftecOutcome::Infeasible(_)) | Err(_) => {
            if let Err(e) = &outcome {
                telemetry::counter_add("baseline.solver_errors", 1);
                let reason = e.to_string();
                telemetry::event(
                    telemetry::Severity::Warn,
                    "baseline.solver_error",
                    &[("reason", telemetry::Field::Str(&reason))],
                );
            }
            match coolest_fan_point_on_model(model, t_max) {
                BaselineOutcome::Feasible {
                    operating_point,
                    solution,
                } => {
                    // The SQP path may have stopped early; trust the sweep.
                    if solution.max_chip_temperature() < t_max {
                        BaselineOutcome::Feasible {
                            operating_point,
                            solution,
                        }
                    } else {
                        BaselineOutcome::Infeasible {
                            best_temperature: Some(solution.max_chip_temperature()),
                        }
                    }
                }
                other => other,
            }
        }
    }
}

/// The coolest achievable fan-only point (fine ω sweep, solved on the
/// worker pool; the winner is reduced serially in ascending-ω order so the
/// result matches the original serial scan exactly). A probe that panics
/// or returns non-finite temperatures is dropped from the reduction (and
/// counted under `baseline.probe_faults`) instead of aborting the sweep.
fn coolest_fan_point_on_model<M: CoolingModel>(model: &M, t_max: Temperature) -> BaselineOutcome {
    let _span = telemetry::span("baseline.fan_sweep");
    let omega_max = model.config().fan.omega_max;
    let probes = oftec_parallel::par_try_map_range(100, |idx| {
        let step = idx + 1;
        let omega = omega_max * (step as f64 / 100.0);
        let op = OperatingPoint::fan_only(omega);
        model.solve(op).ok().map(|sol| (op, sol))
    });
    let mut best: Option<(OperatingPoint, ThermalSolution)> = None;
    let mut faults = 0u64;
    for probe in probes {
        let Some((op, sol)) = (match probe {
            Ok(p) => p,
            Err(_) => {
                faults += 1;
                None
            }
        }) else {
            continue;
        };
        if !sol.max_chip_temperature().kelvin().is_finite() {
            faults += 1;
            continue;
        }
        let better = best
            .as_ref()
            .is_none_or(|(_, b)| sol.max_chip_temperature() < b.max_chip_temperature());
        if better {
            best = Some((op, sol));
        }
    }
    if faults > 0 {
        telemetry::counter_add("baseline.probe_faults", faults);
        telemetry::event(
            telemetry::Severity::Warn,
            "baseline.probe_faults",
            &[("count", telemetry::Field::U64(faults))],
        );
    }
    match best {
        Some((operating_point, solution)) if solution.max_chip_temperature() < t_max => {
            BaselineOutcome::Feasible {
                operating_point,
                solution,
            }
        }
        Some((_, solution)) => BaselineOutcome::Infeasible {
            best_temperature: Some(solution.max_chip_temperature()),
        },
        None => BaselineOutcome::Infeasible {
            best_temperature: None,
        },
    }
}

fn coolest_fan_point(system: &CoolingSystem) -> BaselineOutcome {
    coolest_fan_point_on_model(system.fan_model(), system.t_max())
}

/// Baseline 2: no TECs, fixed fan speed (the paper fixes ω = 2000 RPM).
pub fn fixed_speed_fan(system: &CoolingSystem, omega: AngularVelocity) -> BaselineOutcome {
    fixed_speed_fan_on_model(system.fan_model(), system.t_max(), omega)
}

/// [`fixed_speed_fan`] on an arbitrary (e.g. fault-injecting) model. A
/// panicking or non-finite solve degrades to an infeasible verdict
/// (counted under `baseline.probe_faults`) instead of aborting.
pub fn fixed_speed_fan_on_model<M: CoolingModel>(
    model: &M,
    t_max: Temperature,
    omega: AngularVelocity,
) -> BaselineOutcome {
    let op = OperatingPoint::fan_only(omega);
    let solved = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.solve(op)));
    let solved = match solved {
        Ok(result) => result,
        Err(payload) => {
            let message = oftec_parallel::payload_message(payload);
            telemetry::counter_add("baseline.probe_faults", 1);
            telemetry::event(
                telemetry::Severity::Warn,
                "baseline.probe_faults",
                &[("message", telemetry::Field::Str(&message))],
            );
            return BaselineOutcome::Infeasible {
                best_temperature: None,
            };
        }
    };
    match solved {
        Ok(solution) if !solution.max_chip_temperature().kelvin().is_finite() => {
            telemetry::counter_add("baseline.probe_faults", 1);
            BaselineOutcome::Infeasible {
                best_temperature: None,
            }
        }
        Ok(solution) if solution.max_chip_temperature() < t_max => BaselineOutcome::Feasible {
            operating_point: op,
            solution,
        },
        Ok(solution) => BaselineOutcome::Infeasible {
            best_temperature: Some(solution.max_chip_temperature()),
        },
        Err(_) => BaselineOutcome::Infeasible {
            best_temperature: None,
        },
    }
}

/// The TEC-only configuration (ω = 0): sweeps the current range and
/// reports what happens. The paper's §6.2 observation is that this system
/// "cannot avoid the thermal runaway situation in these benchmarks" — the
/// expected result is runaway at every current.
#[derive(Debug, Clone, PartialEq)]
pub struct TecOnlyReport {
    /// Currents probed (A).
    pub currents: Vec<f64>,
    /// Max die temperature per current; `None` = thermal runaway.
    pub max_temperatures: Vec<Option<Temperature>>,
}

impl TecOnlyReport {
    /// Returns `true` if *every* probed current ended in runaway.
    pub fn all_runaway(&self) -> bool {
        self.max_temperatures.iter().all(Option::is_none)
    }

    /// Returns `true` if any probed current met `t_max`.
    pub fn any_feasible(&self, t_max: Temperature) -> bool {
        self.max_temperatures
            .iter()
            .any(|t| t.is_some_and(|t| t < t_max))
    }
}

/// The throttling a fan-only system needs when it cannot meet `T_max`:
/// the paper notes failing baselines "should be further cooled down using
/// other thermal management techniques such as reducing the
/// voltage/frequency of the chip or throttling … which leads to
/// performance degradation" (§6.2). This quantifies that degradation.
///
/// Bisects the uniform dynamic-power scale `s ∈ [0, 1]` to the largest
/// value at which the variable-ω fan-only baseline meets `T_max`, and
/// returns the required power cut `1 − s` (a proxy for the
/// voltage/frequency reduction). Returns `0.0` when no throttling is
/// needed, to within `resolution` (e.g. `0.01` for 1%).
///
/// # Panics
///
/// Panics if `resolution` is not in `(0, 1)`.
pub fn required_fan_only_throttle(system: &CoolingSystem, resolution: f64) -> f64 {
    assert!(
        resolution > 0.0 && resolution < 1.0,
        "resolution must be a fraction in (0, 1)"
    );
    let feasible = |scale: f64| {
        let scaled = system.scaled(scale);
        matches!(coolest_fan_point(&scaled), BaselineOutcome::Feasible { .. })
    };
    if feasible(1.0) {
        return 0.0;
    }
    let (mut lo, mut hi) = (0.0_f64, 1.0_f64); // lo feasible, hi infeasible
    while hi - lo > resolution {
        let mid = 0.5 * (lo + hi);
        if feasible(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    1.0 - lo
}

/// Probes the TEC-only system over `steps + 1` evenly spaced currents in
/// `[0, I_max]`.
pub fn tec_only(system: &CoolingSystem, steps: usize) -> TecOnlyReport {
    tec_only_on_model(system.tec_model(), steps)
}

/// [`tec_only`] on an arbitrary (e.g. fault-injecting) model. A probe that
/// panics or reports a non-finite temperature is recorded as runaway
/// (`None`) so the report always has `steps + 1` rows.
pub fn tec_only_on_model<M: CoolingModel>(model: &M, steps: usize) -> TecOnlyReport {
    let _span = telemetry::span("baseline.tec_only");
    let probes = oftec_parallel::par_try_map_range(steps + 1, |k| {
        let i = 5.0 * k as f64 / steps.max(1) as f64;
        let op = OperatingPoint::new(AngularVelocity::ZERO, Current::from_amperes(i));
        let t = match model.solve(op) {
            Ok(sol) if sol.max_chip_temperature().kelvin().is_finite() => {
                Some(sol.max_chip_temperature())
            }
            Ok(_) => None,
            Err(ThermalError::Runaway(_)) => None,
            Err(_) => None,
        };
        (i, t)
    });
    let mut faults = 0u64;
    let (currents, max_temperatures) = probes
        .into_iter()
        .enumerate()
        .map(|(k, probe)| {
            probe.unwrap_or_else(|_| {
                faults += 1;
                (5.0 * k as f64 / steps.max(1) as f64, None)
            })
        })
        .unzip();
    if faults > 0 {
        telemetry::counter_add("baseline.probe_faults", faults);
        telemetry::event(
            telemetry::Severity::Warn,
            "baseline.probe_faults",
            &[("count", telemetry::Field::U64(faults))],
        );
    }
    TecOnlyReport {
        currents,
        max_temperatures,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;

    fn coarse(b: Benchmark) -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(b, &PackageConfig::dac14_coarse())
    }

    #[test]
    fn fixed_fan_cools_crc32_but_not_bitcount() {
        let rpm2000 = AngularVelocity::from_rpm(2000.0);
        let cool = fixed_speed_fan(&coarse(Benchmark::Crc32), rpm2000);
        assert!(cool.is_feasible(), "CRC32 at 2000 RPM must pass");
        let hot = fixed_speed_fan(&coarse(Benchmark::BitCount), rpm2000);
        assert!(!hot.is_feasible(), "bitcount at 2000 RPM must fail");
    }

    #[test]
    fn variable_fan_matches_paper_split() {
        let cool = variable_speed_fan(&coarse(Benchmark::Basicmath), true);
        assert!(cool.is_feasible());
        let hot = variable_speed_fan(&coarse(Benchmark::Fft), true);
        assert!(!hot.is_feasible());
        // The infeasible case still reports how close it got.
        assert!(hot.max_temperature().is_some());
    }

    #[test]
    fn coolest_fan_point_beats_fixed_speed() {
        let system = coarse(Benchmark::Basicmath);
        let coolest = variable_speed_fan(&system, false);
        let fixed = fixed_speed_fan(&system, AngularVelocity::from_rpm(2000.0));
        let t_var = coolest.max_temperature().unwrap();
        let t_fix = fixed.max_temperature().unwrap();
        assert!(t_var <= t_fix);
    }

    #[test]
    fn throttle_zero_for_cool_and_positive_for_hot() {
        let cool = coarse(Benchmark::Crc32);
        assert_eq!(required_fan_only_throttle(&cool, 0.05), 0.0);
        let hot = coarse(Benchmark::Fft);
        let cut = required_fan_only_throttle(&hot, 0.05);
        assert!(
            cut > 0.0 && cut < 0.5,
            "FFT should need a modest power cut, got {cut}"
        );
        // The throttled workload is actually feasible.
        let throttled = hot.scaled(1.0 - cut);
        assert!(variable_speed_fan(&throttled, false).is_feasible());
    }

    #[test]
    fn tec_only_always_runs_away() {
        let report = tec_only(&coarse(Benchmark::Basicmath), 10);
        assert_eq!(report.currents.len(), 11);
        assert!(
            report.all_runaway(),
            "TEC-only must run away even on the coolest benchmark: {:?}",
            report.max_temperatures
        );
        assert!(!report.any_feasible(Temperature::from_celsius(90.0)));
    }
}
