//! Algorithm 1 of the paper: OFTEC.

use crate::problems::{CoolingObjective, CoolingProblem};
use crate::{CoolingSystem, OftecError};
use oftec_optim::{ActiveSetSqp, GridSearch, IterSample, NlpProblem, SolveOptions};
use oftec_telemetry as telemetry;
use oftec_thermal::{CoolingModel, OperatingPoint, ThermalSolution};
use oftec_units::{Power, Temperature};
use std::time::{Duration, Instant};

/// Converts an SQP convergence trace into registry trace points (with the
/// max die temperature decoded through the problem's scaling) and records
/// it under `name`. No-op while telemetry is not collecting.
fn record_sqp_trace<M: CoolingModel>(
    name: &'static str,
    problem: &CoolingProblem<'_, M>,
    trace: &[IterSample],
) {
    if !telemetry::collecting() || trace.is_empty() {
        return;
    }
    let points = trace
        .iter()
        .map(|s| {
            let mut fields = vec![
                ("objective", s.objective),
                ("max_violation", s.max_violation),
                ("step_norm", s.step_norm),
                ("active_set", s.active_set as f64),
            ];
            if let Some(t) = problem.sample_max_temperature(s) {
                fields.push(("max_temp_k", t));
            }
            telemetry::TracePoint::new(s.iter as u64, fields)
        })
        .collect();
    telemetry::trace_record(name, points);
}

/// Runs a verification solve behind a panic boundary and a non-finite
/// screen so a faulting model surfaces as a typed error, never an abort
/// or a silently poisoned optimum.
fn guarded_solve<M: CoolingModel>(
    model: &M,
    op: OperatingPoint,
) -> Result<ThermalSolution, OftecError> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.solve(op)));
    match caught {
        Ok(Ok(sol)) => {
            if sol.max_chip_temperature().kelvin().is_finite()
                && sol.objective_power().watts().is_finite()
            {
                Ok(sol)
            } else {
                Err(OftecError::NonFinite {
                    what: "verification solve temperature/power".into(),
                    operating_point: Some(op),
                    iteration: 0,
                })
            }
        }
        Ok(Err(e)) => Err(OftecError::from(e).with_operating_point(op)),
        Err(payload) => Err(OftecError::ModelPanic {
            message: oftec_parallel::payload_message(payload),
            operating_point: Some(op),
        }),
    }
}

/// The OFTEC optimizer (Algorithm 1).
///
/// 1. Start at `(ω_max/2, I_TEC,max/2)` — the paper observes that the
///    minimum of 𝒯 sits near the middle of the plane (Figure 6(a)).
/// 2. If the start violates `T_max`, run **Optimization 2** (minimize the
///    maximum die temperature) with active-set SQP, stopping as soon as a
///    feasible point appears. If even the coolest point is infeasible,
///    report failure — no cooling settings can save this workload.
/// 3. From the feasible point, run **Optimization 1** (minimize
///    𝒫 = `P_leakage + P_TEC + P_fan` subject to `T_i < T_max`).
#[derive(Debug, Clone, Copy)]
pub struct Oftec {
    /// The NLP solver (the paper's choice: active-set SQP).
    pub solver: ActiveSetSqp,
    /// Solver iteration/tolerance controls.
    pub options: SolveOptions,
    /// Feasibility margin (K) used when early-stopping Optimization 2, so
    /// phase 2 starts strictly inside the feasible region.
    pub feasibility_margin_kelvin: f64,
}

impl Default for Oftec {
    fn default() -> Self {
        Self {
            solver: ActiveSetSqp::default(),
            options: SolveOptions {
                max_iterations: 60,
                tolerance: 1e-6,
            },
            feasibility_margin_kelvin: 0.5,
        }
    }
}

/// A successful OFTEC run.
#[derive(Debug, Clone)]
pub struct OftecSolution {
    /// The optimized `(ω*, I*_TEC)`.
    pub operating_point: OperatingPoint,
    /// Thermal steady state at the optimum.
    pub solution: ThermalSolution,
    /// The objective 𝒫 at the optimum.
    pub cooling_power: Power,
    /// Maximum die temperature at the optimum.
    pub max_temperature: Temperature,
    /// Whether the feasibility phase (Optimization 2) had to run.
    pub used_phase1: bool,
    /// Wall-clock runtime of the whole algorithm.
    pub runtime: Duration,
    /// Total thermal solves consumed.
    pub thermal_solves: usize,
    /// Per-iteration SQP trace of the feasibility phase (Optimization 2).
    /// Empty when phase 1 did not run or telemetry was not collecting.
    pub phase1_trace: Vec<IterSample>,
    /// Per-iteration SQP trace of the power-minimization phase
    /// (Optimization 1). Empty unless telemetry was collecting.
    pub phase2_trace: Vec<IterSample>,
}

/// A certified failure: even the temperature-minimizing settings violate
/// `T_max` (Algorithm 1, line 5).
#[derive(Debug, Clone)]
pub struct InfeasibleReport {
    /// The best (coolest) operating point found by Optimization 2.
    pub operating_point: OperatingPoint,
    /// Its maximum die temperature (still above `T_max`).
    pub best_temperature: Temperature,
    /// Wall-clock runtime spent.
    pub runtime: Duration,
    /// Per-iteration SQP trace of the failed feasibility phase. Empty
    /// unless telemetry was collecting.
    pub trace: Vec<IterSample>,
    /// The solver or model fault behind the verdict, when infeasibility
    /// was declared because of an error rather than a certified
    /// too-hot optimum (e.g. the feasibility SQP failing, or the model
    /// panicking/returning garbage at the probed points).
    pub solver_error: Option<String>,
}

/// Outcome of [`Oftec::run`].
#[derive(Debug, Clone)]
pub enum OftecOutcome {
    /// Algorithm 1 returned `(ω*, I*_TEC)`.
    Optimized(OftecSolution),
    /// Algorithm 1 returned "failed".
    Infeasible(InfeasibleReport),
}

impl OftecOutcome {
    /// The solution, if optimization succeeded.
    pub fn optimized(&self) -> Option<&OftecSolution> {
        match self {
            Self::Optimized(s) => Some(s),
            Self::Infeasible(_) => None,
        }
    }

    /// Returns `true` if the thermal constraint could be met.
    pub fn is_feasible(&self) -> bool {
        matches!(self, Self::Optimized(_))
    }
}

impl Oftec {
    /// Runs Algorithm 1 on the hybrid (TEC + fan) model of `system`.
    ///
    /// Steady-state evaluations go through the system's reduced-order
    /// model ([`CoolingSystem::reduced_tec_model`]): every accepted
    /// solution carries a residual certificate, and any uncertified point
    /// silently falls back to the full CG path, so the optimum matches the
    /// full model within the reduction tolerance.
    ///
    /// # Errors
    ///
    /// See [`Oftec::run_on_model`].
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn run(&self, system: &CoolingSystem) -> Result<OftecOutcome, OftecError> {
        let reduced = system.reduced_tec_model();
        self.run_on_model(&reduced, system.t_max())
    }

    /// Runs **Optimization 2 to convergence** (no early stop): minimizes
    /// the maximum die temperature 𝒯 regardless of cost — the paper's
    /// Figure 6(c)(d) "after Optimization 2" comparison, and a useful mode
    /// of its own when aging/leakage of the hottest element matters more
    /// than cooling power (§5.2).
    ///
    /// Returns `None` only if every probed operating point is in thermal
    /// runaway (cannot happen with a working fan).
    pub fn minimize_temperature<M: CoolingModel>(
        &self,
        model: &M,
        t_max: Temperature,
    ) -> Option<OftecSolution> {
        // oftec-lint: allow(L003, reported solution runtime; excluded from the bit-identical determinism contract)
        let start = Instant::now();
        let _span = telemetry::span("oftec.opt2");
        let problem = CoolingProblem::new(model, CoolingObjective::MaxTemperature, t_max);
        let x0 = vec![0.5; problem.dim()];
        let result = self.solver.solve(&problem, &x0, &self.options).ok()?;
        record_sqp_trace("sqp.opt2", &problem, &result.trace);
        // Guard against solver stagnation: keep the better of result/start.
        let t_res = problem.max_temperature(&result.x);
        let t_x0 = problem.max_temperature(&x0);
        let x_best = match (t_res, t_x0) {
            (Some(a), Some(b)) if b < a => x0,
            (Some(_), _) => result.x,
            (None, Some(_)) => x0,
            (None, None) => return None,
        };
        let op = problem.operating_point(&x_best);
        let solution = guarded_solve(model, op).ok()?;
        Some(OftecSolution {
            operating_point: op,
            cooling_power: solution.objective_power(),
            max_temperature: solution.max_chip_temperature(),
            used_phase1: true,
            runtime: start.elapsed(),
            thermal_solves: problem.thermal_solves(),
            phase1_trace: result.trace,
            phase2_trace: Vec::new(),
            solution,
        })
    }

    /// Runs Algorithm 1 on an arbitrary model (the variable-ω baseline
    /// reuses this with the fan-only model, where the problem is
    /// one-dimensional).
    ///
    /// Degradation chain: if the feasibility SQP errors out, a coarse
    /// grid search recovers a feasible point before infeasibility is
    /// declared; if the power SQP errors out, the certified feasible
    /// point is returned instead of an optimum. Both fallbacks are
    /// counted and WARN-logged through the telemetry registry, and any
    /// swallowed solver error is surfaced in
    /// [`InfeasibleReport::solver_error`].
    ///
    /// # Errors
    ///
    /// [`OftecError::Thermal`] (or the matching taxonomy variant) when
    /// the final, already-certified operating point cannot be re-solved —
    /// the one state with neither a verdict nor a usable fallback.
    pub fn run_on_model<M: CoolingModel>(
        &self,
        model: &M,
        t_max: Temperature,
    ) -> Result<OftecOutcome, OftecError> {
        // oftec-lint: allow(L003, reported solution runtime; excluded from the bit-identical determinism contract)
        let start = Instant::now();
        let _span = telemetry::span("oftec.run");
        let mut thermal_solves = 0;

        // Line 1: (ω₀, I₀) = (ω_max/2, I_max/2), in scaled coordinates.
        let phase1_problem = CoolingProblem::new(model, CoolingObjective::MaxTemperature, t_max);
        let x0 = vec![0.5; phase1_problem.dim()];

        let t_at = |p: &CoolingProblem<'_, M>, x: &[f64]| p.max_temperature(x);

        // Line 2: feasibility check at the start.
        let start_temp = t_at(&phase1_problem, &x0);
        let mut used_phase1 = false;
        let mut phase1_trace: Vec<IterSample> = Vec::new();
        let mut phase1_error: Option<String> = None;
        let x_feasible = if start_temp.is_some_and(|t| t < t_max) {
            x0.clone()
        } else {
            // Line 3: Optimization 2 with early stopping at T < T_max − δ.
            used_phase1 = true;
            let margin = self.feasibility_margin_kelvin;
            let target = Temperature::from_kelvin(t_max.kelvin() - margin);
            let ambient = model.config().ambient.kelvin();
            let target_scaled = (target.kelvin() - ambient) / 10.0;
            let result = {
                let _opt2 = telemetry::span("oftec.opt2");
                self.solver
                    .solve_until(&phase1_problem, &x0, &self.options, move |_x, f| {
                        f < target_scaled
                    })
            };
            match result {
                Ok(r) => {
                    record_sqp_trace("sqp.opt2", &phase1_problem, &r.trace);
                    phase1_trace = r.trace;
                    r.x
                }
                Err(e) => {
                    // Fallback: a coarse grid search over the (≤ 2-D)
                    // box recovers a feasible point when SQP cannot.
                    telemetry::counter_add("oftec.fallback.gridsearch", 1);
                    let reason = e.to_string();
                    telemetry::event(
                        telemetry::Severity::Warn,
                        "oftec.fallback",
                        &[
                            ("from", telemetry::Field::Str("sqp")),
                            ("to", telemetry::Field::Str("gridsearch")),
                            ("phase", telemetry::Field::Str("feasibility")),
                            ("reason", telemetry::Field::Str(&reason)),
                        ],
                    );
                    phase1_error = Some(reason);
                    let recovery = GridSearch {
                        points_per_dim: 9,
                        ..GridSearch::default()
                    }
                    .solve(&phase1_problem, &x0, &self.options);
                    match recovery {
                        Ok(r) => r.x,
                        Err(grid_err) => {
                            return Ok(OftecOutcome::Infeasible(InfeasibleReport {
                                operating_point: phase1_problem.operating_point(&x0),
                                best_temperature: start_temp
                                    .unwrap_or(Temperature::from_kelvin(f64::MAX.min(1e6))),
                                runtime: start.elapsed(),
                                trace: Vec::new(),
                                solver_error: Some(format!(
                                    "feasibility SQP failed ({}); grid-search recovery failed ({grid_err})",
                                    phase1_error.as_deref().unwrap_or("unknown"),
                                )),
                            }));
                        }
                    }
                }
            }
        };
        thermal_solves += phase1_problem.thermal_solves();

        // Lines 4-5: certify feasibility.
        let feasible_temp = t_at(&phase1_problem, &x_feasible);
        let Some(feasible_temp) = feasible_temp else {
            return Ok(OftecOutcome::Infeasible(InfeasibleReport {
                operating_point: phase1_problem.operating_point(&x_feasible),
                best_temperature: Temperature::from_kelvin(1e6),
                runtime: start.elapsed(),
                trace: phase1_trace,
                solver_error: phase1_problem.last_fault().or(phase1_error),
            }));
        };
        if feasible_temp >= t_max {
            return Ok(OftecOutcome::Infeasible(InfeasibleReport {
                operating_point: phase1_problem.operating_point(&x_feasible),
                best_temperature: feasible_temp,
                runtime: start.elapsed(),
                trace: phase1_trace,
                solver_error: phase1_error,
            }));
        }

        // Line 6: Optimization 1 from the feasible point.
        let phase2_problem = CoolingProblem::new(model, CoolingObjective::Power, t_max);
        let result = {
            let _opt1 = telemetry::span("oftec.opt1");
            self.solver
                .solve(&phase2_problem, &x_feasible, &self.options)
        };
        thermal_solves += phase2_problem.thermal_solves();
        let phase2_trace = match &result {
            Ok(r) => {
                record_sqp_trace("sqp.opt1", &phase2_problem, &r.trace);
                r.trace.clone()
            }
            Err(e) => {
                // Fallback: the certified feasible point stands in for
                // the unreachable optimum. Surfaced, not silent.
                telemetry::counter_add("oftec.fallback.feasible_point", 1);
                let reason = e.to_string();
                telemetry::event(
                    telemetry::Severity::Warn,
                    "oftec.fallback",
                    &[
                        ("from", telemetry::Field::Str("sqp")),
                        ("to", telemetry::Field::Str("feasible_point")),
                        ("phase", telemetry::Field::Str("power")),
                        ("reason", telemetry::Field::Str(&reason)),
                    ],
                );
                Vec::new()
            }
        };

        // Pick the endpoint by the paper's actual constraint (T < T_max;
        // the margined QP constraint may read as microscopically violated
        // at a boundary-riding optimum) and by objective value.
        let candidate_power = |x: &[f64]| -> Option<f64> {
            let t = phase2_problem.max_temperature(x)?;
            if t < t_max {
                phase2_problem.objective(x)
            } else {
                None
            }
        };
        let x_final = match &result {
            Ok(r) => match (candidate_power(&r.x), candidate_power(&x_feasible)) {
                (Some(a), Some(b)) if a <= b => r.x.clone(),
                (Some(_), None) => r.x.clone(),
                _ => x_feasible.clone(),
            },
            Err(_) => x_feasible.clone(),
        };
        let mut op = phase2_problem.operating_point(&x_final);
        let solution = match guarded_solve(model, op) {
            Ok(s) => s,
            Err(first_err) if x_final != x_feasible => {
                // Final-solve fallback: retry at the certified feasible
                // point before giving up.
                telemetry::counter_add("oftec.fallback.final_resolve", 1);
                let reason = first_err.to_string();
                telemetry::event(
                    telemetry::Severity::Warn,
                    "oftec.fallback",
                    &[
                        ("from", telemetry::Field::Str("optimum")),
                        ("to", telemetry::Field::Str("feasible_point")),
                        ("phase", telemetry::Field::Str("final_solve")),
                        ("reason", telemetry::Field::Str(&reason)),
                    ],
                );
                op = phase2_problem.operating_point(&x_feasible);
                guarded_solve(model, op)?
            }
            Err(e) => return Err(e),
        };
        let cooling_power = solution.objective_power();
        let max_temperature = solution.max_chip_temperature();
        Ok(OftecOutcome::Optimized(OftecSolution {
            operating_point: op,
            solution,
            cooling_power,
            max_temperature,
            used_phase1,
            runtime: start.elapsed(),
            thermal_solves,
            phase1_trace,
            phase2_trace,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_power::Benchmark;
    use oftec_thermal::PackageConfig;

    fn coarse(b: Benchmark) -> CoolingSystem {
        CoolingSystem::for_benchmark_with_config(b, &PackageConfig::dac14_coarse())
    }

    #[test]
    fn cool_benchmark_optimizes_without_phase1() {
        let system = coarse(Benchmark::Crc32);
        let outcome = Oftec::default()
            .run(&system)
            .expect("solver must not error");
        let sol = outcome.optimized().expect("CRC32 must be feasible");
        assert!(!sol.used_phase1, "start point is already feasible");
        assert!(sol.max_temperature < system.t_max());
        // The optimum beats the naive center start.
        let start = system
            .tec_model()
            .solve(OperatingPoint::new(
                oftec_units::AngularVelocity::from_rpm(2500.0),
                oftec_units::Current::from_amperes(2.5),
            ))
            .unwrap();
        assert!(sol.cooling_power < start.objective_power());
    }

    #[test]
    fn hot_benchmark_succeeds_with_tecs() {
        let system = coarse(Benchmark::BitCount);
        let outcome = Oftec::default()
            .run(&system)
            .expect("solver must not error");
        let sol = outcome
            .optimized()
            .expect("bitcount must be coolable with TECs");
        assert!(sol.max_temperature < system.t_max());
    }

    #[test]
    fn fan_only_baseline_fails_hot_benchmark() {
        // FFT exceeds 90 °C at any fan speed on the coarse test grid (the
        // full paper split across all five hot benchmarks is exercised on
        // the calibrated 16×16 grid in the integration tests).
        let system = coarse(Benchmark::Fft);
        let outcome = Oftec::default()
            .run_on_model(system.fan_model(), system.t_max())
            .expect("solver must not error");
        assert!(
            !outcome.is_feasible(),
            "FFT must defeat the fan-only baseline"
        );
        if let OftecOutcome::Infeasible(report) = outcome {
            assert!(report.best_temperature > system.t_max());
        }
    }

    #[test]
    fn fan_only_baseline_cools_cool_benchmark() {
        let system = coarse(Benchmark::StringSearch);
        let outcome = Oftec::default()
            .run_on_model(system.fan_model(), system.t_max())
            .expect("solver must not error");
        let sol = outcome.optimized().expect("stringsearch is fan-coolable");
        assert_eq!(sol.operating_point.tec_current.amperes(), 0.0);
        assert!(sol.max_temperature < system.t_max());
    }

    #[test]
    fn optimum_meets_constraint_with_low_power() {
        // OFTEC on a cool benchmark should find substantially less power
        // than max cooling.
        let system = coarse(Benchmark::Basicmath);
        let sol = Oftec::default()
            .run(&system)
            .expect("solver must not error");
        let sol = sol.optimized().unwrap();
        let max_cooling = system
            .tec_model()
            .solve(OperatingPoint::new(
                system.package().fan.omega_max,
                oftec_units::Current::from_amperes(2.0),
            ))
            .unwrap();
        assert!(sol.cooling_power.watts() < max_cooling.objective_power().watts());
    }
}
