//! Property tests of the workload synthesizer and leakage fits.

use oftec_floorplan::alpha21264;
use oftec_power::{fit_linear_leakage_over, Benchmark, ExponentialLeakage, WorkloadProfile};
use oftec_units::{Power, Temperature};
use proptest::prelude::*;

fn any_benchmark() -> impl Strategy<Value = Benchmark> {
    prop::sample::select(Benchmark::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn traces_are_deterministic_and_bounded(b in any_benchmark(), samples in 1usize..300) {
        let fp = alpha21264();
        let t1 = b.synthesize_trace(&fp, samples);
        let t2 = b.synthesize_trace(&fp, samples);
        prop_assert_eq!(&t1, &t2, "same inputs must give identical traces");
        prop_assert_eq!(t1.len(), samples);
        // Every sample within the phase × noise envelope of the profile.
        let nominal = b.profile().nominal_vector(&fp).unwrap();
        for s in 0..samples {
            for (p, nom) in t1.sample(s).iter().zip(&nominal) {
                prop_assert!(*p >= 0.0);
                prop_assert!(*p <= nom * 1.3 * 1.08 + 1e-12);
            }
        }
    }

    #[test]
    fn per_unit_maxima_bracket_the_nominal(b in any_benchmark(), n in 10usize..200) {
        // Phase factors live in [0.7, 1.3] and noise in [0.92, 1.08], so
        // every per-unit maximum is sandwiched between the worst single
        // sample floor and the envelope ceiling.
        let fp = alpha21264();
        let maxes = b.synthesize_trace(&fp, n).max_per_unit();
        let nominal = b.profile().nominal_vector(&fp).unwrap();
        for (mx, nom) in maxes.iter().zip(&nominal) {
            prop_assert!(*mx >= nom * 0.7 * 0.92 - 1e-12);
            prop_assert!(*mx <= nom * 1.3 * 1.08 + 1e-12);
        }
    }

    #[test]
    fn custom_profiles_conserve_total(
        weights in proptest::collection::vec(0.01..5.0f64, 15),
        total in 1.0..80.0f64,
    ) {
        let fp = alpha21264();
        let named: Vec<(&'static str, f64)> = fp
            .units()
            .iter()
            .zip(&weights)
            .map(|(u, &w)| {
                // Leak the name to 'static for the test (names live in the
                // bundled floorplan for the process lifetime anyway).
                let name: &'static str = Box::leak(u.name().to_owned().into_boxed_str());
                (name, w)
            })
            .collect();
        let profile = WorkloadProfile::new("custom", Power::from_watts(total), named);
        let v = profile.nominal_vector(&fp).unwrap();
        let sum: f64 = v.iter().sum();
        prop_assert!((sum - total).abs() < 1e-9 * total);
        prop_assert!(v.iter().all(|p| *p >= 0.0));
    }

    #[test]
    fn taylor_fit_is_exact_on_lines(
        p_ref in 0.1..20.0f64,
        t_ref in 310.0..370.0f64,
    ) {
        // β = 0 means the "exponential" is constant; any line fit through
        // it must be flat with intercept p_ref, independent of t_ref.
        let model = ExponentialLeakage::new(
            Power::from_watts(p_ref),
            Temperature::from_kelvin(330.0),
            0.0,
        );
        let lin = fit_linear_leakage_over(
            &model,
            Temperature::from_kelvin(300.0),
            Temperature::from_kelvin(390.0),
            10,
            Temperature::from_kelvin(t_ref),
        );
        prop_assert!(lin.a.abs() < 1e-12);
        prop_assert!((lin.b - p_ref).abs() < 1e-9);
    }

    #[test]
    fn fit_slope_grows_with_beta(beta1 in 0.001..0.02f64, extra in 0.001..0.02f64) {
        let mk = |beta: f64| {
            ExponentialLeakage::new(
                Power::from_watts(2.0),
                Temperature::from_kelvin(318.15),
                beta,
            )
        };
        let fit = |beta: f64| {
            fit_linear_leakage_over(
                &mk(beta),
                Temperature::from_kelvin(300.0),
                Temperature::from_kelvin(390.0),
                10,
                Temperature::from_kelvin(345.0),
            )
            .a
        };
        prop_assert!(fit(beta1 + extra) > fit(beta1));
    }
}
