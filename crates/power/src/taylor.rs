//! Linear (first-order Taylor) leakage estimation — Eq. (4) of the paper.
//!
//! The paper follows reference \[13\]: instead of iterating the exponential
//! leakage model to a fixed point, sample it at a handful of temperatures,
//! fit `p = a·(T − T_ref) + b` by linear regression, and fold the linear
//! term straight into the thermal network's (linear) KCL system. The
//! paper's setup samples McPAT at **ten temperatures evenly spaced over
//! 300–390 K**; [`fit_linear_leakage`] reproduces exactly that procedure.

use crate::ExponentialLeakage;
use oftec_units::{Power, Temperature};

/// The paper's sampling window: 300 K to 390 K.
pub const FIT_RANGE_KELVIN: (f64, f64) = (300.0, 390.0);

/// The paper's sample count within [`FIT_RANGE_KELVIN`].
pub const FIT_SAMPLES: usize = 10;

/// Linearized leakage `p(T) = a·(T − T_ref) + b` (Eq. (4)).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LinearLeakage {
    /// Slope `a` in W/K.
    pub a: f64,
    /// Offset `b` in W (the leakage at `T_ref`).
    pub b: f64,
    /// Expansion point `T_ref`.
    pub t_ref: Temperature,
}

impl LinearLeakage {
    /// Evaluates the linear model at temperature `t`.
    #[inline]
    pub fn power(&self, t: Temperature) -> Power {
        Power::from_watts(self.a * (t.kelvin() - self.t_ref.kelvin()) + self.b)
    }

    /// Returns a copy scaled by `factor` (both `a` and `b` scale, the
    /// expansion point does not).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            a: self.a * factor,
            b: self.b * factor,
            t_ref: self.t_ref,
        }
    }
}

/// Fits Eq. (4) to an exponential leakage model by least squares over
/// `samples` evenly spaced temperatures in `[lo, hi]`, with the expansion
/// point `t_ref`.
///
/// Use [`fit_linear_leakage`] for the paper's exact 10-point, 300–390 K
/// procedure.
///
/// # Panics
///
/// Panics if `samples < 2` or `hi <= lo`.
pub fn fit_linear_leakage_over(
    model: &ExponentialLeakage,
    lo: Temperature,
    hi: Temperature,
    samples: usize,
    t_ref: Temperature,
) -> LinearLeakage {
    assert!(samples >= 2, "need at least two samples for a line");
    assert!(hi.kelvin() > lo.kelvin(), "empty fitting range");
    let n = samples as f64;
    let step = (hi.kelvin() - lo.kelvin()) / (samples - 1) as f64;

    // Least squares on x = T - t_ref, y = P(T).
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    for i in 0..samples {
        let t_k = lo.kelvin() + step * i as f64;
        let x = t_k - t_ref.kelvin();
        let y = model.power(Temperature::from_kelvin(t_k)).watts();
        sx += x;
        sy += y;
        sxx += x * x;
        sxy += x * y;
    }
    let denom = n * sxx - sx * sx;
    let a = (n * sxy - sx * sy) / denom;
    let b = (sy - a * sx) / n;
    LinearLeakage { a, b, t_ref }
}

/// Fits Eq. (4) with the paper's procedure: ten samples evenly spaced over
/// 300–390 K.
///
/// The expansion point `t_ref` is "usually set as the average temperature
/// of the chip or a particular functional unit" (paper §4); pass whatever
/// operating point the caller expects.
///
/// # Examples
///
/// ```
/// use oftec_power::{fit_linear_leakage, ExponentialLeakage};
/// use oftec_units::{Power, Temperature};
///
/// let exp = ExponentialLeakage::new(
///     Power::from_watts(1.0),
///     Temperature::from_kelvin(318.15),
///     0.012,
/// );
/// let t_op = Temperature::from_kelvin(350.0);
/// let lin = fit_linear_leakage(&exp, t_op);
/// // Near the middle of the window the fit tracks the model closely.
/// let err = (lin.power(t_op).watts() - exp.power(t_op).watts()).abs();
/// assert!(err / exp.power(t_op).watts() < 0.08);
/// ```
pub fn fit_linear_leakage(model: &ExponentialLeakage, t_ref: Temperature) -> LinearLeakage {
    fit_linear_leakage_over(
        model,
        Temperature::from_kelvin(FIT_RANGE_KELVIN.0),
        Temperature::from_kelvin(FIT_RANGE_KELVIN.1),
        FIT_SAMPLES,
        t_ref,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp_model(beta: f64) -> ExponentialLeakage {
        ExponentialLeakage::new(
            Power::from_watts(1.5),
            Temperature::from_kelvin(318.15),
            beta,
        )
    }

    #[test]
    fn exact_for_linear_ground_truth() {
        // With beta → 0 the exponential is constant; the fit must return
        // a ≈ 0, b ≈ p_ref.
        let lin = fit_linear_leakage(&exp_model(0.0), Temperature::from_kelvin(340.0));
        assert!(lin.a.abs() < 1e-12);
        assert!((lin.b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn slope_positive_and_bracketing_for_exponential() {
        let m = exp_model(0.03);
        let lin = fit_linear_leakage(&m, Temperature::from_kelvin(345.0));
        // Secant slope over the window brackets the fitted slope.
        let lo = m.power(Temperature::from_kelvin(300.0)).watts();
        let hi = m.power(Temperature::from_kelvin(390.0)).watts();
        let secant = (hi - lo) / 90.0;
        assert!(lin.a > 0.0);
        assert!(lin.a < secant * 1.2 && lin.a > m.slope_at(Temperature::from_kelvin(300.0)));
    }

    #[test]
    fn fit_error_small_in_the_hot_region() {
        // A line cannot track a 23×-varying exponential everywhere; what
        // matters for OFTEC is the hot end (where thermal constraints and
        // runaway live). There the relative error must be modest, and
        // everywhere the absolute error must be a small fraction of the
        // window maximum.
        let m = exp_model(0.035);
        let lin = fit_linear_leakage(&m, Temperature::from_kelvin(345.0));
        let p_max = m.power(Temperature::from_kelvin(390.0)).watts();
        for t_k in (0..=9).map(|i| 300.0 + 10.0 * i as f64) {
            let t = Temperature::from_kelvin(t_k);
            let abs = (lin.power(t).watts() - m.power(t).watts()).abs();
            assert!(abs < 0.25 * p_max, "abs error {abs} at {t_k} K");
        }
        // A gentler exponential (leakage tripling over the window, closer
        // to published 22 nm McPAT sweeps) is tracked tightly everywhere.
        let gentle = exp_model(0.012);
        let lin2 = fit_linear_leakage(&gentle, Temperature::from_kelvin(345.0));
        for t_k in (0..=9).map(|i| 300.0 + 10.0 * i as f64) {
            let t = Temperature::from_kelvin(t_k);
            let rel =
                (lin2.power(t).watts() - gentle.power(t).watts()).abs() / gentle.power(t).watts();
            assert!(rel < 0.16, "rel error {rel} at {t_k} K");
        }
    }

    #[test]
    fn regression_minimizes_residual() {
        // Perturbing (a, b) must not reduce the summed squared residual.
        let m = exp_model(0.03);
        let t_ref = Temperature::from_kelvin(345.0);
        let lin = fit_linear_leakage(&m, t_ref);
        let sse = |a: f64, b: f64| -> f64 {
            (0..FIT_SAMPLES)
                .map(|i| {
                    let t_k = 300.0 + 90.0 * i as f64 / (FIT_SAMPLES - 1) as f64;
                    let x = t_k - t_ref.kelvin();
                    let y = m.power(Temperature::from_kelvin(t_k)).watts();
                    let e = a * x + b - y;
                    e * e
                })
                .sum()
        };
        let best = sse(lin.a, lin.b);
        for (da, db) in [(1e-3, 0.0), (-1e-3, 0.0), (0.0, 1e-3), (0.0, -1e-3)] {
            assert!(sse(lin.a + da, lin.b + db) >= best);
        }
    }

    #[test]
    fn expansion_point_only_shifts_b() {
        let m = exp_model(0.03);
        let lin1 = fit_linear_leakage(&m, Temperature::from_kelvin(330.0));
        let lin2 = fit_linear_leakage(&m, Temperature::from_kelvin(360.0));
        assert!((lin1.a - lin2.a).abs() < 1e-12);
        // Same line, different parameterization: predictions agree.
        let t = Temperature::from_kelvin(350.0);
        assert!((lin1.power(t).watts() - lin2.power(t).watts()).abs() < 1e-9);
    }

    #[test]
    fn scaled_model() {
        let m = exp_model(0.03);
        let lin = fit_linear_leakage(&m, Temperature::from_kelvin(345.0));
        let half = lin.scaled(0.5);
        let t = Temperature::from_kelvin(350.0);
        assert!((half.power(t).watts() - 0.5 * lin.power(t).watts()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "two samples")]
    fn single_sample_panics() {
        let _ = fit_linear_leakage_over(
            &exp_model(0.03),
            Temperature::from_kelvin(300.0),
            Temperature::from_kelvin(390.0),
            1,
            Temperature::from_kelvin(345.0),
        );
    }
}
