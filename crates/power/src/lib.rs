//! Power modeling: temperature-dependent leakage and workload synthesis.
//!
//! This crate substitutes for the two closed tools in the paper's flow:
//!
//! - **McPAT** (leakage): [`leakage`] provides an exponential
//!   temperature-dependent leakage model per functional unit, and
//!   [`taylor`] the paper's Eq. (4) linearization — a least-squares fit of
//!   `p = a·(T − T_ref) + b` over ten evenly spaced samples of the
//!   exponential model (the method of reference \[13\] of the paper).
//!   [`mcpat`] distributes a 22 nm Alpha-class leakage budget over a
//!   floorplan.
//! - **PTscalar** (dynamic power): [`workload`] synthesizes deterministic
//!   per-unit dynamic power traces for the eight MiBench benchmarks of the
//!   paper's Table 2, and [`trace`] holds the resulting time series. OFTEC
//!   consumes the per-unit **maximum** of a trace, exactly as the paper
//!   does.
//!
//! # Examples
//!
//! ```
//! use oftec_floorplan::alpha21264;
//! use oftec_power::workload::Benchmark;
//!
//! let fp = alpha21264();
//! let trace = Benchmark::BitCount.synthesize_trace(&fp, 400);
//! let peak = trace.max_per_unit();
//! assert_eq!(peak.len(), fp.units().len());
//! ```

pub mod leakage;
pub mod mcpat;
pub mod taylor;
pub mod trace;
pub mod workload;

pub use leakage::{ExponentialLeakage, LeakageModel};
pub use mcpat::McpatBudget;
pub use taylor::{fit_linear_leakage, fit_linear_leakage_over, LinearLeakage};
pub use trace::PowerTrace;
pub use workload::{Benchmark, UnknownUnitError, WorkloadProfile};
