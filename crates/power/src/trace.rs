//! Per-unit dynamic power time series.

use oftec_units::Power;

/// A dynamic power trace: one power sample per functional unit per time
/// step, as a performance/power simulator (PTscalar in the paper) would
/// emit.
///
/// # Examples
///
/// ```
/// use oftec_power::PowerTrace;
///
/// let mut trace = PowerTrace::new(vec!["a".into(), "b".into()], 1e-3);
/// trace.push_sample(vec![1.0, 2.0]);
/// trace.push_sample(vec![3.0, 1.0]);
/// assert_eq!(trace.max_per_unit(), vec![3.0, 2.0]);
/// assert_eq!(trace.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PowerTrace {
    unit_names: Vec<String>,
    /// Sampling interval in seconds.
    dt: f64,
    /// `samples[t][u]` = power of unit `u` at step `t`, in watts.
    samples: Vec<Vec<f64>>,
}

impl PowerTrace {
    /// Creates an empty trace for the named units with sampling interval
    /// `dt_seconds`.
    ///
    /// # Panics
    ///
    /// Panics if `dt_seconds` is not positive or no units are given.
    pub fn new(unit_names: Vec<String>, dt_seconds: f64) -> Self {
        assert!(dt_seconds > 0.0, "sampling interval must be positive");
        assert!(!unit_names.is_empty(), "trace needs at least one unit");
        Self {
            unit_names,
            dt: dt_seconds,
            samples: Vec::new(),
        }
    }

    /// Appends one sample (a power per unit, in watts).
    ///
    /// # Panics
    ///
    /// Panics if the sample length differs from the unit count or any
    /// entry is negative/non-finite.
    pub fn push_sample(&mut self, sample: Vec<f64>) {
        assert_eq!(
            sample.len(),
            self.unit_names.len(),
            "one power per unit required"
        );
        assert!(
            sample.iter().all(|p| p.is_finite() && *p >= 0.0),
            "powers must be finite and non-negative"
        );
        self.samples.push(sample);
    }

    /// The unit names, in column order.
    pub fn unit_names(&self) -> &[String] {
        &self.unit_names
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sampling interval in seconds.
    pub fn dt_seconds(&self) -> f64 {
        self.dt
    }

    /// Borrows sample `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn sample(&self, t: usize) -> &[f64] {
        &self.samples[t]
    }

    /// Per-unit maximum over the trace — the vector the paper feeds OFTEC
    /// ("the maximum power consumption for each element ... is selected to
    /// be passed to OFTEC", §6.1).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn max_per_unit(&self) -> Vec<f64> {
        assert!(!self.samples.is_empty(), "empty trace has no maximum");
        let mut out = self.samples[0].clone();
        for s in &self.samples[1..] {
            for (o, &v) in out.iter_mut().zip(s) {
                *o = o.max(v);
            }
        }
        out
    }

    /// Per-unit mean over the trace.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty.
    pub fn mean_per_unit(&self) -> Vec<f64> {
        assert!(!self.samples.is_empty(), "empty trace has no mean");
        let n = self.samples.len() as f64;
        let mut out = vec![0.0; self.unit_names.len()];
        for s in &self.samples {
            for (o, &v) in out.iter_mut().zip(s) {
                *o += v;
            }
        }
        for o in &mut out {
            *o /= n;
        }
        out
    }

    /// Total die power at step `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn total_at(&self, t: usize) -> Power {
        Power::from_watts(self.samples[t].iter().sum())
    }

    /// Peak total die power over the trace (note: the *sum of per-unit
    /// maxima* from [`PowerTrace::max_per_unit`] is an upper bound on this,
    /// reached only if all units peak simultaneously).
    pub fn peak_total(&self) -> Power {
        Power::from_watts(
            (0..self.samples.len())
                .map(|t| self.samples[t].iter().sum::<f64>())
                .fold(0.0, f64::max),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> PowerTrace {
        let mut t = PowerTrace::new(vec!["x".into(), "y".into()], 1e-3);
        t.push_sample(vec![1.0, 4.0]);
        t.push_sample(vec![3.0, 2.0]);
        t.push_sample(vec![2.0, 3.0]);
        t
    }

    #[test]
    fn max_and_mean() {
        let t = trace();
        assert_eq!(t.max_per_unit(), vec![3.0, 4.0]);
        assert_eq!(t.mean_per_unit(), vec![2.0, 3.0]);
    }

    #[test]
    fn totals() {
        let t = trace();
        assert_eq!(t.total_at(0).watts(), 5.0);
        assert_eq!(t.peak_total().watts(), 5.0);
        // Sum of maxima bounds peak total.
        let bound: f64 = t.max_per_unit().iter().sum();
        assert!(bound >= t.peak_total().watts());
    }

    #[test]
    fn metadata() {
        let t = trace();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.dt_seconds(), 1e-3);
        assert_eq!(t.unit_names(), &["x".to_owned(), "y".to_owned()]);
        assert_eq!(t.sample(1), &[3.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "one power per unit")]
    fn wrong_width_sample_panics() {
        trace().push_sample(vec![1.0]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_power_panics() {
        trace().push_sample(vec![-1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_max_panics() {
        let t = PowerTrace::new(vec!["x".into()], 1.0);
        let _ = t.max_per_unit();
    }
}
