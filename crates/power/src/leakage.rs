//! Exponential temperature-dependent leakage.
//!
//! Subthreshold leakage grows exponentially with temperature; over the
//! 300–400 K window relevant to chip cooling it is well captured by
//! `P(T) = P_ref · exp(β·(T − T_ref))` with β around 0.02–0.04 K⁻¹
//! (leakage doubling every 20–35 K), consistent with 22 nm-class silicon.
//! This is the "ground truth" model that the paper's Eq. (4) linearizes.

use oftec_units::{Power, Temperature};

/// Exponential leakage model of a single heat source (a functional unit or
/// a grid cell).
///
/// # Examples
///
/// ```
/// use oftec_power::ExponentialLeakage;
/// use oftec_units::{Power, Temperature};
///
/// let leak = ExponentialLeakage::new(
///     Power::from_watts(1.0),
///     Temperature::from_kelvin(318.15),
///     0.035,
/// );
/// // Doubles roughly every ln(2)/0.035 ≈ 19.8 K.
/// let hot = leak.power(Temperature::from_kelvin(318.15 + 19.8));
/// assert!((hot.watts() - 2.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExponentialLeakage {
    p_ref: Power,
    t_ref: Temperature,
    beta: f64,
}

impl ExponentialLeakage {
    /// Creates a model with leakage `p_ref` at `t_ref` and exponential
    /// slope `beta_per_kelvin`.
    ///
    /// # Panics
    ///
    /// Panics if `p_ref` is negative or `beta_per_kelvin` is not finite.
    pub fn new(p_ref: Power, t_ref: Temperature, beta_per_kelvin: f64) -> Self {
        assert!(
            p_ref.watts() >= 0.0 && beta_per_kelvin.is_finite(),
            "leakage reference power must be non-negative and beta finite"
        );
        Self {
            p_ref,
            t_ref,
            beta: beta_per_kelvin,
        }
    }

    /// Reference power at the reference temperature.
    #[inline]
    pub fn p_ref(&self) -> Power {
        self.p_ref
    }

    /// Reference temperature.
    #[inline]
    pub fn t_ref(&self) -> Temperature {
        self.t_ref
    }

    /// Exponential slope β in K⁻¹.
    #[inline]
    pub fn beta(&self) -> f64 {
        self.beta
    }

    /// Leakage power at temperature `t`.
    #[inline]
    pub fn power(&self, t: Temperature) -> Power {
        Power::from_watts(
            self.p_ref.watts() * (self.beta * (t.kelvin() - self.t_ref.kelvin())).exp(),
        )
    }

    /// Local slope `dP/dT` at temperature `t`, in W/K. This is the quantity
    /// that drives thermal runaway: when the summed slopes exceed the
    /// package's conductance to ambient, no steady state exists.
    #[inline]
    pub fn slope_at(&self, t: Temperature) -> f64 {
        self.beta * self.power(t).watts()
    }

    /// Returns a copy scaled by `factor` (e.g. to split a unit's leakage
    /// over grid cells by area).
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        Self {
            p_ref: self.p_ref * factor,
            t_ref: self.t_ref,
            beta: self.beta,
        }
    }
}

/// A per-unit leakage model for an entire die.
///
/// Wraps one [`ExponentialLeakage`] per functional unit, in floorplan
/// order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LeakageModel {
    units: Vec<ExponentialLeakage>,
}

impl LeakageModel {
    /// Creates a model from per-unit components.
    pub fn new(units: Vec<ExponentialLeakage>) -> Self {
        Self { units }
    }

    /// Per-unit models, in floorplan order.
    pub fn units(&self) -> &[ExponentialLeakage] {
        &self.units
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Returns `true` if the model has no units.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Total leakage with every unit at the same temperature `t`.
    pub fn total_power(&self, t: Temperature) -> Power {
        self.units.iter().map(|u| u.power(t)).sum()
    }

    /// Total leakage with per-unit temperatures.
    ///
    /// # Panics
    ///
    /// Panics if `temps.len() != self.len()`.
    pub fn total_power_at(&self, temps: &[Temperature]) -> Power {
        assert_eq!(temps.len(), self.units.len(), "one temperature per unit");
        self.units.iter().zip(temps).map(|(u, &t)| u.power(t)).sum()
    }

    /// Total runaway slope `Σ dPᵢ/dT` with every unit at temperature `t`.
    pub fn total_slope_at(&self, t: Temperature) -> f64 {
        self.units.iter().map(|u| u.slope_at(t)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ExponentialLeakage {
        ExponentialLeakage::new(
            Power::from_watts(2.0),
            Temperature::from_kelvin(318.15),
            0.035,
        )
    }

    #[test]
    fn reference_point_is_exact() {
        let m = model();
        assert_eq!(m.power(m.t_ref()), m.p_ref());
    }

    #[test]
    fn grows_exponentially() {
        let m = model();
        let t1 = Temperature::from_kelvin(340.0);
        let t2 = Temperature::from_kelvin(360.0);
        let ratio = m.power(t2).watts() / m.power(t1).watts();
        assert!((ratio - (0.035f64 * 20.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn slope_is_beta_times_power() {
        let m = model();
        let t = Temperature::from_kelvin(350.0);
        // Finite-difference check.
        let h = 1e-4;
        let fd = (m.power(Temperature::from_kelvin(350.0 + h)).watts()
            - m.power(Temperature::from_kelvin(350.0 - h)).watts())
            / (2.0 * h);
        assert!((m.slope_at(t) - fd).abs() < 1e-6);
    }

    #[test]
    fn scaling_splits_power() {
        let m = model();
        let half = m.scaled(0.5);
        let t = Temperature::from_kelvin(333.0);
        assert!((half.power(t).watts() - 0.5 * m.power(t).watts()).abs() < 1e-12);
    }

    #[test]
    fn die_model_totals() {
        let die = LeakageModel::new(vec![model(), model().scaled(2.0)]);
        let t = Temperature::from_kelvin(330.0);
        assert!((die.total_power(t).watts() - 3.0 * model().power(t).watts()).abs() < 1e-12);
        assert!((die.total_slope_at(t) - 0.035 * die.total_power(t).watts()).abs() < 1e-12);
        let temps = [
            Temperature::from_kelvin(330.0),
            Temperature::from_kelvin(318.15),
        ];
        let expect = model().power(temps[0]).watts() + 2.0 * model().p_ref().watts();
        assert!((die.total_power_at(&temps).watts() - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_reference_power_panics() {
        let _ = ExponentialLeakage::new(
            Power::from_watts(-1.0),
            Temperature::from_kelvin(300.0),
            0.03,
        );
    }
}
