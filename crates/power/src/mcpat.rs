//! McPAT-substitute leakage budget for a 22 nm Alpha-class processor.
//!
//! The paper runs McPAT's bundled Alpha 21264 model at 22 nm to obtain
//! per-unit leakage, then fits Eq. (4). McPAT itself is unavailable here,
//! so this module plays its role: it distributes a total die leakage budget
//! over the floorplan's units, proportional to area with a density factor
//! for SRAM-dominated blocks, and attaches the exponential temperature
//! dependence of [`crate::ExponentialLeakage`].
//!
//! The default budget (11 W at the 45 °C ambient, doubling every ~20 K) is
//! calibrated so that the full OFTEC pipeline reproduces the *shape* of the
//! paper's results: fan-only baselines tip into thermal runaway or exceed
//! 90 °C on the five hot benchmarks, while the three cool benchmarks stay
//! feasible (see EXPERIMENTS.md).

use crate::{ExponentialLeakage, LeakageModel};
use oftec_floorplan::Floorplan;
use oftec_units::{Power, Temperature};

/// A total-die leakage budget with distribution rules — the crate's
/// stand-in for a McPAT run.
///
/// # Examples
///
/// ```
/// use oftec_floorplan::alpha21264;
/// use oftec_power::McpatBudget;
///
/// let fp = alpha21264();
/// let model = McpatBudget::alpha21264_22nm().distribute(&fp);
/// assert_eq!(model.len(), fp.units().len());
/// ```
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct McpatBudget {
    /// Total die leakage at `t_ref`.
    pub total_at_ref: Power,
    /// Reference temperature for the budget.
    pub t_ref: Temperature,
    /// Exponential slope β (K⁻¹) applied to every unit.
    pub beta_per_kelvin: f64,
    /// Leakage density multiplier for SRAM-dominated units (caches, TLBs)
    /// relative to logic.
    pub sram_density_factor: f64,
}

impl McpatBudget {
    /// The default 22 nm Alpha 21264 budget used throughout the
    /// reproduction (see module docs for the calibration rationale).
    pub fn alpha21264_22nm() -> Self {
        Self {
            total_at_ref: Power::from_watts(4.5),
            t_ref: Temperature::from_celsius(45.0),
            beta_per_kelvin: 0.035,
            sram_density_factor: 1.25,
        }
    }

    /// Returns `true` if a unit name denotes an SRAM-dominated block.
    fn is_sram(name: &str) -> bool {
        let lower = name.to_ascii_lowercase();
        lower.contains("cache") || lower.contains("tb") || lower.contains("l2")
    }

    /// Distributes the budget over a floorplan, producing one
    /// [`ExponentialLeakage`] per unit (area-proportional, with the SRAM
    /// density factor).
    pub fn distribute(&self, floorplan: &Floorplan) -> LeakageModel {
        let weights: Vec<f64> = floorplan
            .units()
            .iter()
            .map(|u| {
                let area = u.rect().area().square_meters();
                if Self::is_sram(u.name()) {
                    area * self.sram_density_factor
                } else {
                    area
                }
            })
            .collect();
        let total_weight: f64 = weights.iter().sum();
        let units = weights
            .into_iter()
            .map(|w| {
                ExponentialLeakage::new(
                    self.total_at_ref * (w / total_weight),
                    self.t_ref,
                    self.beta_per_kelvin,
                )
            })
            .collect();
        LeakageModel::new(units)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;

    #[test]
    fn budget_is_conserved() {
        let fp = alpha21264();
        let budget = McpatBudget::alpha21264_22nm();
        let model = budget.distribute(&fp);
        let total = model.total_power(budget.t_ref);
        assert!((total.watts() - budget.total_at_ref.watts()).abs() < 1e-9);
    }

    #[test]
    fn sram_units_have_higher_density() {
        let fp = alpha21264();
        let model = McpatBudget::alpha21264_22nm().distribute(&fp);
        let density = |name: &str| {
            let i = fp.unit_index(name).unwrap();
            model.units()[i].p_ref().watts() / fp.units()[i].rect().area().square_meters()
        };
        assert!(density("Icache") > density("IntExec"));
        assert!((density("Icache") / density("IntExec") - 1.25).abs() < 1e-9);
    }

    #[test]
    fn sram_classifier() {
        assert!(McpatBudget::is_sram("Icache"));
        assert!(McpatBudget::is_sram("DTB"));
        assert!(McpatBudget::is_sram("L2_left"));
        assert!(!McpatBudget::is_sram("IntExec"));
        assert!(!McpatBudget::is_sram("FPMul"));
    }

    #[test]
    fn all_units_share_beta() {
        let fp = alpha21264();
        let budget = McpatBudget::alpha21264_22nm();
        let model = budget.distribute(&fp);
        for u in model.units() {
            assert_eq!(u.beta(), budget.beta_per_kelvin);
            assert_eq!(u.t_ref(), budget.t_ref);
        }
    }

    #[test]
    fn runaway_slope_grows_with_temperature() {
        let fp = alpha21264();
        let model = McpatBudget::alpha21264_22nm().distribute(&fp);
        let cold = model.total_slope_at(Temperature::from_celsius(45.0));
        let hot = model.total_slope_at(Temperature::from_celsius(90.0));
        assert!(hot > cold);
        // At the reference point the slope equals β · total.
        let budget = McpatBudget::alpha21264_22nm();
        assert!((cold - budget.beta_per_kelvin * budget.total_at_ref.watts()).abs() < 1e-9);
    }
}
