//! MiBench workload profiles and trace synthesis — the PTscalar substitute.
//!
//! The paper drives OFTEC with per-functional-unit maximum dynamic power
//! for eight MiBench benchmarks on an Alpha 21264, produced by PTscalar.
//! PTscalar (and cycle-accurate replay of MiBench) is unavailable here, so
//! each benchmark carries a *profile*: a nominal total dynamic power and a
//! per-unit activity mix. A deterministic, seeded synthesizer expands the
//! profile into a phased, noisy power trace; OFTEC consumes the trace's
//! per-unit maximum exactly as in the paper's flow.
//!
//! The totals and mixes are calibrated so the full pipeline reproduces the
//! paper's split: the fan-only baselines cool `Basicmath`, `CRC32` and
//! `StringSearch` but fail the other five benchmarks, while OFTEC cools
//! all eight (see EXPERIMENTS.md).

use crate::PowerTrace;
use oftec_floorplan::Floorplan;
use oftec_units::Power;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The eight MiBench benchmarks of the paper's Table 2.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum Benchmark {
    /// `basicmath` — mixed integer/floating-point math (cool benchmark).
    Basicmath,
    /// `bitcount` — integer ALU blast (hottest benchmark, `I* = 2.30 A`).
    BitCount,
    /// `CRC32` — light streaming checksum (coolest benchmark).
    Crc32,
    /// `dijkstra` — pointer-chasing shortest path (hot).
    Dijkstra,
    /// `FFT` — floating-point heavy transform (hot).
    Fft,
    /// `qsort` — integer/memory heavy sorting (hot, `I* = 2.83 A`).
    Quicksort,
    /// `stringsearch` — moderate integer search (cool).
    StringSearch,
    /// `susan` — mixed image processing (hot).
    Susan,
}

/// Error returned when a profile references a unit the floorplan lacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownUnitError {
    /// Name of the missing unit.
    pub unit: String,
    /// The benchmark whose profile referenced it.
    pub benchmark: &'static str,
}

impl core::fmt::Display for UnknownUnitError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "floorplan has no unit `{}` required by the {} profile",
            self.unit, self.benchmark
        )
    }
}

impl std::error::Error for UnknownUnitError {}

/// A benchmark's dynamic power characterization: nominal total power and a
/// normalized per-unit activity mix.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    name: &'static str,
    total: Power,
    /// `(unit name, normalized weight)`, weights summing to 1.
    weights: Vec<(&'static str, f64)>,
}

impl WorkloadProfile {
    /// Creates a profile; weights are normalized to sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative, or all are
    /// zero.
    pub fn new(name: &'static str, total: Power, weights: Vec<(&'static str, f64)>) -> Self {
        assert!(!weights.is_empty(), "profile needs at least one unit");
        assert!(
            weights.iter().all(|(_, w)| *w >= 0.0),
            "weights must be non-negative"
        );
        let sum: f64 = weights.iter().map(|(_, w)| w).sum();
        assert!(sum > 0.0, "at least one weight must be positive");
        let weights = weights.into_iter().map(|(n, w)| (n, w / sum)).collect();
        Self {
            name,
            total,
            weights,
        }
    }

    /// The profile's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Nominal total dynamic power.
    pub fn total(&self) -> Power {
        self.total
    }

    /// The normalized weights.
    pub fn weights(&self) -> &[(&'static str, f64)] {
        &self.weights
    }

    /// Nominal per-unit dynamic power in floorplan order, in watts.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownUnitError`] if the floorplan lacks a profiled unit.
    pub fn nominal_vector(&self, fp: &Floorplan) -> Result<Vec<f64>, UnknownUnitError> {
        let mut out = vec![0.0; fp.units().len()];
        for &(name, w) in &self.weights {
            let idx = fp.unit_index(name).ok_or_else(|| UnknownUnitError {
                unit: name.to_owned(),
                benchmark: self.name,
            })?;
            out[idx] += self.total.watts() * w;
        }
        Ok(out)
    }
}

impl Benchmark {
    /// All eight benchmarks, in the paper's Table 2 order.
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Basicmath,
        Benchmark::BitCount,
        Benchmark::Crc32,
        Benchmark::Dijkstra,
        Benchmark::Fft,
        Benchmark::Quicksort,
        Benchmark::StringSearch,
        Benchmark::Susan,
    ];

    /// The benchmark's display name.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Basicmath => "basicmath",
            Benchmark::BitCount => "bitcount",
            Benchmark::Crc32 => "CRC32",
            Benchmark::Dijkstra => "dijkstra",
            Benchmark::Fft => "FFT",
            Benchmark::Quicksort => "qsort",
            Benchmark::StringSearch => "stringsearch",
            Benchmark::Susan => "susan",
        }
    }

    /// Looks a benchmark up by its display name, case-insensitively
    /// (`"qsort"`, `"QSORT"`, `"CRC32"` all resolve). `None` for names
    /// outside Table 2 — the lookup every user-facing surface (CLI,
    /// serving protocol) shares.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL
            .iter()
            .copied()
            .find(|b| b.name().eq_ignore_ascii_case(name))
    }

    /// The benchmarks the paper's fan-only baselines can still cool (the
    /// "cool three").
    pub fn is_cool(self) -> bool {
        matches!(
            self,
            Benchmark::Basicmath | Benchmark::Crc32 | Benchmark::StringSearch
        )
    }

    /// Deterministic RNG seed for this benchmark's trace.
    fn seed(self) -> u64 {
        0x0000_F7EC_0000 + self as u64
    }

    /// The benchmark's activity profile over the Alpha 21264 unit names.
    pub fn profile(self) -> WorkloadProfile {
        let w = |total: f64, weights: Vec<(&'static str, f64)>| {
            WorkloadProfile::new(self.name(), Power::from_watts(total), weights)
        };
        match self {
            Benchmark::Basicmath => w(
                24.0,
                vec![
                    ("IntExec", 0.14),
                    ("IntReg", 0.05),
                    ("IntQ", 0.04),
                    ("IntMap", 0.04),
                    ("LdStQ", 0.07),
                    ("Dcache", 0.10),
                    ("Icache", 0.08),
                    ("Bpred", 0.04),
                    ("ITB", 0.02),
                    ("DTB", 0.02),
                    ("FPAdd", 0.16),
                    ("FPMul", 0.14),
                    ("FPReg", 0.05),
                    ("FPMap", 0.025),
                    ("FPQ", 0.025),
                ],
            ),
            Benchmark::BitCount => w(
                49.0,
                vec![
                    ("IntExec", 0.44),
                    ("IntReg", 0.10),
                    ("IntQ", 0.08),
                    ("IntMap", 0.07),
                    ("LdStQ", 0.04),
                    ("Dcache", 0.04),
                    ("Icache", 0.06),
                    ("Bpred", 0.07),
                    ("ITB", 0.03),
                    ("DTB", 0.02),
                    ("FPAdd", 0.01),
                    ("FPMul", 0.01),
                    ("FPReg", 0.01),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
            Benchmark::Crc32 => w(
                19.0,
                vec![
                    ("IntExec", 0.22),
                    ("IntReg", 0.07),
                    ("IntQ", 0.05),
                    ("IntMap", 0.05),
                    ("LdStQ", 0.10),
                    ("Dcache", 0.18),
                    ("Icache", 0.10),
                    ("Bpred", 0.05),
                    ("ITB", 0.03),
                    ("DTB", 0.04),
                    ("FPAdd", 0.01),
                    ("FPMul", 0.01),
                    ("FPReg", 0.01),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
            Benchmark::Dijkstra => w(
                48.0,
                vec![
                    ("IntExec", 0.36),
                    ("IntReg", 0.08),
                    ("IntQ", 0.06),
                    ("IntMap", 0.06),
                    ("LdStQ", 0.11),
                    ("Dcache", 0.13),
                    ("Icache", 0.05),
                    ("Bpred", 0.06),
                    ("ITB", 0.02),
                    ("DTB", 0.04),
                    ("FPAdd", 0.01),
                    ("FPMul", 0.01),
                    ("FPReg", 0.01),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
            Benchmark::Fft => w(
                43.0,
                vec![
                    ("FPMul", 0.28),
                    ("FPAdd", 0.23),
                    ("FPReg", 0.07),
                    ("FPQ", 0.04),
                    ("FPMap", 0.03),
                    ("IntExec", 0.10),
                    ("IntReg", 0.04),
                    ("IntQ", 0.03),
                    ("IntMap", 0.03),
                    ("LdStQ", 0.06),
                    ("Dcache", 0.06),
                    ("Icache", 0.04),
                    ("Bpred", 0.02),
                    ("ITB", 0.01),
                    ("DTB", 0.01),
                ],
            ),
            Benchmark::Quicksort => w(
                50.0,
                vec![
                    ("IntExec", 0.4),
                    ("IntReg", 0.09),
                    ("IntQ", 0.07),
                    ("IntMap", 0.06),
                    ("LdStQ", 0.12),
                    ("Dcache", 0.1),
                    ("Icache", 0.05),
                    ("Bpred", 0.08),
                    ("ITB", 0.02),
                    ("DTB", 0.03),
                    ("FPAdd", 0.01),
                    ("FPMul", 0.01),
                    ("FPReg", 0.01),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
            Benchmark::StringSearch => w(
                22.0,
                vec![
                    ("IntExec", 0.24),
                    ("IntReg", 0.07),
                    ("IntQ", 0.05),
                    ("IntMap", 0.05),
                    ("LdStQ", 0.09),
                    ("Dcache", 0.14),
                    ("Icache", 0.12),
                    ("Bpred", 0.08),
                    ("ITB", 0.03),
                    ("DTB", 0.03),
                    ("FPAdd", 0.01),
                    ("FPMul", 0.01),
                    ("FPReg", 0.01),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
            Benchmark::Susan => w(
                52.0,
                vec![
                    ("IntExec", 0.36),
                    ("FPAdd", 0.14),
                    ("FPMul", 0.16),
                    ("FPReg", 0.04),
                    ("IntReg", 0.07),
                    ("IntQ", 0.05),
                    ("IntMap", 0.05),
                    ("LdStQ", 0.08),
                    ("Dcache", 0.09),
                    ("Icache", 0.06),
                    ("Bpred", 0.04),
                    ("ITB", 0.02),
                    ("DTB", 0.02),
                    ("FPMap", 0.005),
                    ("FPQ", 0.005),
                ],
            ),
        }
    }

    /// Synthesizes a deterministic, phased dynamic power trace on the given
    /// floorplan (1 ms sampling, like a PTscalar power dump).
    ///
    /// The trace alternates between program phases; each phase modulates
    /// every unit's nominal power by a phase factor in ±30%, plus ±8%
    /// white noise per sample. Identical inputs always produce identical
    /// traces (the RNG is seeded from the benchmark).
    ///
    /// # Errors
    ///
    /// Returns [`UnknownUnitError`] if the floorplan lacks a profiled unit.
    ///
    /// # Panics
    ///
    /// Panics if `samples == 0`.
    pub fn try_synthesize_trace(
        self,
        fp: &Floorplan,
        samples: usize,
    ) -> Result<PowerTrace, UnknownUnitError> {
        assert!(samples > 0, "trace needs at least one sample");
        let profile = self.profile();
        let nominal = profile.nominal_vector(fp)?;
        let n_units = nominal.len();
        let mut rng = StdRng::seed_from_u64(self.seed());

        const PHASES: usize = 4;
        let phase_len = samples.div_ceil(PHASES);
        // Per-phase, per-unit modulation in [0.7, 1.3].
        let phase_factors: Vec<Vec<f64>> = (0..PHASES)
            .map(|_| (0..n_units).map(|_| rng.gen_range(0.7..1.3)).collect())
            .collect();

        let mut trace = PowerTrace::new(
            fp.units().iter().map(|u| u.name().to_owned()).collect(),
            1e-3,
        );
        for s in 0..samples {
            let phase = (s / phase_len).min(PHASES - 1);
            let sample: Vec<f64> = (0..n_units)
                .map(|u| {
                    let noise = 1.0 + rng.gen_range(-0.08..0.08);
                    (nominal[u] * phase_factors[phase][u] * noise).max(0.0)
                })
                .collect();
            trace.push_sample(sample);
        }
        Ok(trace)
    }

    /// Like [`Benchmark::try_synthesize_trace`] but panicking on unknown
    /// units — convenient with the bundled [`oftec_floorplan::alpha21264`]
    /// floorplan, which always has every profiled unit.
    ///
    /// # Panics
    ///
    /// Panics if the floorplan lacks a profiled unit or `samples == 0`.
    pub fn synthesize_trace(self, fp: &Floorplan, samples: usize) -> PowerTrace {
        self.try_synthesize_trace(fp, samples)
            // oftec-lint: allow(L006, documented panicking convenience over try_synthesize_trace)
            .unwrap_or_else(|e| panic!("floorplan must contain every profiled unit: {e}"))
    }

    /// The per-unit **maximum** dynamic power vector OFTEC consumes (the
    /// paper's §6.1 procedure), from a deterministic 512-sample trace.
    ///
    /// # Errors
    ///
    /// Returns [`UnknownUnitError`] if the floorplan lacks a profiled unit.
    pub fn max_dynamic_power(self, fp: &Floorplan) -> Result<Vec<f64>, UnknownUnitError> {
        Ok(self.try_synthesize_trace(fp, 512)?.max_per_unit())
    }
}

impl core::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_floorplan::alpha21264;

    #[test]
    fn profiles_are_normalized() {
        for b in Benchmark::ALL {
            let p = b.profile();
            let sum: f64 = p.weights().iter().map(|(_, w)| w).sum();
            assert!((sum - 1.0).abs() < 1e-12, "{b} weights sum to {sum}");
        }
    }

    #[test]
    fn nominal_vector_conserves_total() {
        let fp = alpha21264();
        for b in Benchmark::ALL {
            let p = b.profile();
            let v = p.nominal_vector(&fp).unwrap();
            let total: f64 = v.iter().sum();
            assert!((total - p.total().watts()).abs() < 1e-9, "{b}");
        }
    }

    #[test]
    fn cool_three_match_paper() {
        let cool: Vec<_> = Benchmark::ALL.iter().filter(|b| b.is_cool()).collect();
        assert_eq!(cool.len(), 3);
        assert!(Benchmark::Basicmath.is_cool());
        assert!(Benchmark::Crc32.is_cool());
        assert!(Benchmark::StringSearch.is_cool());
        assert!(!Benchmark::Quicksort.is_cool());
    }

    #[test]
    fn cool_benchmarks_draw_less_power() {
        let max_cool = Benchmark::ALL
            .iter()
            .filter(|b| b.is_cool())
            .map(|b| b.profile().total().watts())
            .fold(0.0, f64::max);
        let min_hot = Benchmark::ALL
            .iter()
            .filter(|b| !b.is_cool())
            .map(|b| b.profile().total().watts())
            .fold(f64::INFINITY, f64::min);
        assert!(max_cool < min_hot);
    }

    #[test]
    fn traces_are_deterministic() {
        let fp = alpha21264();
        let t1 = Benchmark::Fft.synthesize_trace(&fp, 100);
        let t2 = Benchmark::Fft.synthesize_trace(&fp, 100);
        assert_eq!(t1, t2);
    }

    #[test]
    fn different_benchmarks_differ() {
        let fp = alpha21264();
        let a = Benchmark::Fft.synthesize_trace(&fp, 50);
        let b = Benchmark::BitCount.synthesize_trace(&fp, 50);
        assert_ne!(a, b);
    }

    #[test]
    fn max_exceeds_mean() {
        let fp = alpha21264();
        let t = Benchmark::Quicksort.synthesize_trace(&fp, 400);
        let maxes = t.max_per_unit();
        let means = t.mean_per_unit();
        for (mx, mn) in maxes.iter().zip(&means) {
            assert!(mx >= mn);
        }
        // The hottest unit must be IntExec for qsort.
        let idx_max = maxes
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(fp.units()[idx_max].name(), "IntExec");
    }

    #[test]
    fn max_vector_is_bounded_by_phase_and_noise_envelope() {
        let fp = alpha21264();
        for b in Benchmark::ALL {
            let nominal = b.profile().nominal_vector(&fp).unwrap();
            let maxes = b.max_dynamic_power(&fp).unwrap();
            for (mx, nom) in maxes.iter().zip(&nominal) {
                assert!(*mx <= nom * 1.3 * 1.08 + 1e-12);
            }
        }
    }

    #[test]
    fn unknown_unit_error() {
        use oftec_floorplan::{Floorplan, FunctionalUnit, Rect};
        use oftec_units::Length;
        let fp = Floorplan::new(
            "tiny",
            Length::from_mm(1.0),
            Length::from_mm(1.0),
            vec![FunctionalUnit::new(
                "OnlyUnit",
                Rect::new(
                    Length::ZERO,
                    Length::ZERO,
                    Length::from_mm(1.0),
                    Length::from_mm(1.0),
                ),
            )],
        );
        let err = Benchmark::Fft.max_dynamic_power(&fp).unwrap_err();
        assert!(err.to_string().contains("FFT") || err.to_string().contains("no unit"));
    }

    #[test]
    fn display_names() {
        assert_eq!(Benchmark::Crc32.to_string(), "CRC32");
        assert_eq!(Benchmark::Quicksort.to_string(), "qsort");
    }
}
