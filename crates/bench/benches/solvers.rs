//! Criterion bench behind the §5.2 solver comparison: active-set SQP vs
//! interior point vs trust region on Optimization 1 for `basicmath`, all
//! from the same feasible start.

use criterion::{criterion_group, criterion_main, Criterion};
use oftec::problems::{CoolingObjective, CoolingProblem};
use oftec::CoolingSystem;
use oftec_optim::{ActiveSetSqp, InteriorPoint, SolveOptions, TrustRegion};
use oftec_power::Benchmark;
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let opts = SolveOptions {
        max_iterations: 60,
        tolerance: 1e-6,
    };
    let start = [0.5, 0.5];

    let mut group = c.benchmark_group("optimization1_solvers");
    group.sample_size(10);
    group.bench_function("active_set_sqp", |b| {
        b.iter(|| {
            let problem =
                CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
            black_box(
                ActiveSetSqp::default()
                    .solve(&problem, black_box(&start), &opts)
                    .unwrap()
                    .objective,
            )
        })
    });
    group.bench_function("interior_point", |b| {
        b.iter(|| {
            let problem =
                CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
            black_box(
                InteriorPoint::default()
                    .solve(&problem, black_box(&start), &opts)
                    .unwrap()
                    .objective,
            )
        })
    });
    group.bench_function("trust_region", |b| {
        b.iter(|| {
            let problem =
                CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
            black_box(
                TrustRegion::default()
                    .solve(&problem, black_box(&start), &opts)
                    .unwrap()
                    .objective,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
