//! Scaling bench for the Figure 6 sweep engine: the uncached per-call
//! triplet assembly (`solve_reference`) vs the cached-skeleton path
//! (`SweepGrid::run_threaded` at 1 thread, which also warm-starts along
//! each current row) vs the cached path on all available workers.
//!
//! Besides the Criterion comparison on a small grid, a full run of the
//! default 40×26 sweep is timed once per mode and written to
//! `BENCH_sweep.json` in the workspace root, so the speedup is recorded
//! machine-readably next to the other experiment artifacts.

use criterion::{criterion_group, criterion_main, Criterion};
use oftec::{CoolingSystem, SweepGrid};
use oftec_power::Benchmark;
use oftec_thermal::{HybridCoolingModel, OperatingPoint};
use oftec_units::Current;
use std::hint::black_box;
use std::time::Instant;

/// The pre-skeleton engine: cold, uncached solves in the same row-major
/// order the sweep uses.
fn sweep_uncached(model: &HybridCoolingModel, grid: &SweepGrid) -> usize {
    let omega_max = model.config().fan.omega_max;
    let mut feasible = 0;
    for wi in 0..grid.omega_points {
        let omega = omega_max * (wi as f64 / (grid.omega_points - 1) as f64);
        for ci in 0..grid.current_points {
            let amps = 5.0 * ci as f64 / (grid.current_points - 1) as f64;
            let op = OperatingPoint::new(omega, Current::from_amperes(amps));
            if model.solve_reference(op).is_ok() {
                feasible += 1;
            }
        }
    }
    feasible
}

fn bench_sweep_modes(c: &mut Criterion) {
    let system = CoolingSystem::for_benchmark_with_config(
        Benchmark::Basicmath,
        &oftec_thermal::PackageConfig::dac14_coarse(),
    );
    let model = system.tec_model();
    let grid = SweepGrid {
        omega_points: 12,
        current_points: 6,
    };
    let workers = oftec_parallel::thread_count();

    let mut group = c.benchmark_group("sweep_12x6");
    group.sample_size(10);
    group.bench_function("serial_uncached", |b| {
        b.iter(|| black_box(sweep_uncached(model, &grid)))
    });
    group.bench_function("cached_1thread", |b| {
        b.iter(|| black_box(grid.run_threaded(model, 1).samples.len()))
    });
    group.bench_function(format!("cached_{workers}threads"), |b| {
        b.iter(|| black_box(grid.run_threaded(model, workers).samples.len()))
    });
    group.finish();
}

/// Times one full default sweep per mode and emits `BENCH_sweep.json`.
fn emit_full_sweep_report() {
    let system = CoolingSystem::for_benchmark_with_config(
        Benchmark::Basicmath,
        &oftec_thermal::PackageConfig::dac14_coarse(),
    );
    let model = system.tec_model();
    let grid = SweepGrid::default();
    let workers = oftec_parallel::thread_count();

    let time = |f: &dyn Fn() -> usize| {
        let start = Instant::now();
        let n = black_box(f());
        (start.elapsed().as_secs_f64(), n)
    };
    let (t_uncached, _) = time(&|| sweep_uncached(model, &grid));
    let (t_cached, n1) = time(&|| grid.run_threaded(model, 1).samples.len());
    let (t_parallel, n2) = time(&|| grid.run_threaded(model, workers).samples.len());
    assert_eq!(n1, n2);

    #[derive(serde::Serialize)]
    struct Report {
        benchmark: String,
        omega_points: usize,
        current_points: usize,
        threads: usize,
        serial_uncached_s: f64,
        cached_1thread_s: f64,
        cached_parallel_s: f64,
        cached_speedup: f64,
        parallel_speedup: f64,
    }
    let report = Report {
        benchmark: "basicmath".into(),
        omega_points: grid.omega_points,
        current_points: grid.current_points,
        threads: workers,
        serial_uncached_s: t_uncached,
        cached_1thread_s: t_cached,
        cached_parallel_s: t_parallel,
        cached_speedup: t_uncached / t_cached,
        parallel_speedup: t_uncached / t_parallel,
    };
    let json = serde_json::to_string_pretty(&report).expect("serialize report");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep.json");
    std::fs::write(path, json).expect("write BENCH_sweep.json");
    println!(
        "full 40x26 sweep: uncached {:.2}s, cached(1t) {:.2}s ({:.1}x), \
         cached({}t) {:.2}s ({:.1}x) -> {}",
        t_uncached,
        t_cached,
        report.cached_speedup,
        workers,
        t_parallel,
        report.parallel_speedup,
        path
    );
}

fn bench_full_sweep_report(_c: &mut Criterion) {
    // Skip the multi-second full sweep when `cargo test` smoke-runs this
    // binary with `--test`.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    emit_full_sweep_report();
}

criterion_group!(benches, bench_sweep_modes, bench_full_sweep_report);
criterion_main!(benches);
