//! Criterion bench behind Table 2's runtime column: one full OFTEC run
//! (Algorithm 1, both optimization phases) per benchmark.
//!
//! The paper reports 437 ms average / 693 ms worst on an i7-3770 with a
//! MATLAB SQP driving a C thermal simulator; absolute numbers differ
//! here, but the sub-second order of magnitude is the claim under test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use oftec::{CoolingSystem, Oftec};
use oftec_power::Benchmark;
use std::hint::black_box;

fn bench_oftec(c: &mut Criterion) {
    let mut group = c.benchmark_group("oftec_algorithm1");
    group.sample_size(10);
    // One cool and one hot benchmark bound the runtime range; running all
    // eight at Criterion's repetition counts would take minutes for no
    // extra information (the table2 binary prints per-benchmark times).
    for b in [Benchmark::Crc32, Benchmark::Quicksort] {
        let system = CoolingSystem::for_benchmark(b);
        group.bench_function(BenchmarkId::from_parameter(b.name()), |bench| {
            bench.iter(|| {
                let outcome = Oftec::default()
                    .run(black_box(&system))
                    .expect("solver must not error");
                black_box(outcome.is_feasible())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_oftec);
criterion_main!(benches);
