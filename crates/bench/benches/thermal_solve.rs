//! Criterion benches of the Teculator-substitute hot paths: one steady
//! solve (the unit of work behind every Figure 6 surface sample and every
//! optimizer evaluation), the nonlinear-leakage fixed point, and one
//! backward-Euler transient step.

use criterion::{criterion_group, criterion_main, Criterion};
use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_thermal::{NonlinearOptions, OperatingPoint, TransientOptions};
use oftec_units::{AngularVelocity, Current};
use std::hint::black_box;

fn op() -> OperatingPoint {
    OperatingPoint::new(
        AngularVelocity::from_rpm(3000.0),
        Current::from_amperes(1.0),
    )
}

fn bench_steady(c: &mut Criterion) {
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let model = system.tec_model();
    c.bench_function("steady_solve_16x16", |b| {
        b.iter(|| black_box(model.solve(black_box(op())).unwrap().objective_power()))
    });
}

fn bench_nonlinear(c: &mut Criterion) {
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let model = system.tec_model();
    c.bench_function("nonlinear_fixed_point_16x16", |b| {
        b.iter(|| {
            let (sol, iters) = model
                .solve_nonlinear(black_box(op()), &NonlinearOptions::default())
                .unwrap();
            black_box((sol.objective_power(), iters))
        })
    });
}

fn bench_transient(c: &mut Criterion) {
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let model = system.tec_model();
    let steady = model.solve(op()).unwrap();
    c.bench_function("transient_10_steps_16x16", |b| {
        b.iter(|| {
            let trace = model
                .simulate_transient(
                    black_box(op()),
                    Some(&steady),
                    10,
                    &TransientOptions {
                        dt_seconds: 0.01,
                        record_every: 10,
                    },
                )
                .unwrap();
            black_box(trace.last())
        })
    });
}

criterion_group!(benches, bench_steady, bench_nonlinear, bench_transient);
criterion_main!(benches);
