//! The thermal-runaway experiments behind the paper's motivation:
//!
//! 1. TEC-only (ω = 0) "cannot avoid the thermal runaway situation in
//!    these benchmarks" — probed across the full current range;
//! 2. the runaway boundary in ω for every benchmark (the "dark red"
//!    region of Figure 6(a)(b)).
//!
//! ```text
//! cargo run --release -p oftec-bench --bin runaway
//! ```

use oftec::baselines::tec_only;
use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_thermal::OperatingPoint;
use oftec_units::{AngularVelocity, Current};

fn main() {
    println!("TEC-only configuration (ω = 0), currents 0..5 A:");
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let report = tec_only(&system, 10);
        println!(
            "{:>14}: {}",
            b.name(),
            if report.all_runaway() {
                "thermal runaway at every current (paper: always)".to_owned()
            } else {
                let best = report
                    .max_temperatures
                    .iter()
                    .flatten()
                    .map(|t| t.celsius())
                    .fold(f64::INFINITY, f64::min);
                format!("steady states exist; coolest {best:.1} °C")
            }
        );
    }

    println!("\nrunaway boundary in ω (I = 1 A), bisected to ±1 RPM:");
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let model = system.tec_model();
        let solvable = |rpm: f64| {
            model
                .solve(OperatingPoint::new(
                    AngularVelocity::from_rpm(rpm),
                    Current::from_amperes(1.0),
                ))
                .is_ok()
        };
        let (mut lo, mut hi) = (0.0, 5000.0);
        if solvable(lo) {
            println!("{:>14}: no runaway even at ω = 0", b.name());
            continue;
        }
        while hi - lo > 1.0 {
            let mid = 0.5 * (lo + hi);
            if solvable(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        println!("{:>14}: steady state requires ω ≳ {hi:.0} RPM", b.name());
    }
    println!("(paper, for basicmath: \"ω should also be increased to about 150 RPM\")");
}
