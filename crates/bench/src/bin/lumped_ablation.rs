//! Quantifies the paper's §3 critique of lumped thermal models (its
//! reference \[11\]): "this simplification may leave the hot spots on the
//! chip since the lumped model considers the average temperature for the
//! entire processor die."
//!
//! For each benchmark at full fan, compare the lumped single-node verdict
//! against the grid model's per-cell maximum.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin lumped_ablation
//! ```

use oftec_floorplan::alpha21264;
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::{HybridCoolingModel, LumpedModel, OperatingPoint, PackageConfig};
use oftec_units::AngularVelocity;

fn main() {
    let fp = alpha21264();
    let cfg = PackageConfig::dac14();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let omega = AngularVelocity::from_rpm(5000.0);

    println!("lumped (1 node) vs grid (16×16) at ω_max, fan-only stack:");
    println!(
        "{:>14} | {:>10} | {:>10} | {:>10} | {:>9} | {:>9}",
        "benchmark", "lumped °C", "grid avg", "grid max", "lumped?", "grid?"
    );
    let mut missed = 0;
    for &b in &Benchmark::ALL {
        let dyn_p = match b.max_dynamic_power(&fp) {
            Ok(p) => p,
            Err(e) => {
                println!("{:>14} | cannot synthesize: {e}", b.name());
                continue;
            }
        };
        let lumped = LumpedModel::new(&fp, &cfg, &dyn_p, &leak);
        let grid = HybridCoolingModel::fan_only(&fp, &cfg, dyn_p, &leak);
        let solves = lumped
            .solve(omega)
            .and_then(|l| grid.solve(OperatingPoint::fan_only(omega)).map(|g| (l, g)));
        let (l, g) = match solves {
            Ok(pair) => pair,
            Err(e) => {
                println!("{:>14} | full-fan solve failed: {e}", b.name());
                continue;
            }
        };
        let avg =
            g.chip_temperatures().iter().sum::<f64>() / g.chip_temperatures().len() as f64 - 273.15;
        let l_ok = l.temperature.celsius() < 90.0;
        let g_ok = g.max_chip_temperature().celsius() < 90.0;
        if l_ok && !g_ok {
            missed += 1;
        }
        println!(
            "{:>14} | {:>10.2} | {:>10.2} | {:>10.2} | {:>9} | {:>9}",
            b.name(),
            l.temperature.celsius(),
            avg,
            g.max_chip_temperature().celsius(),
            if l_ok { "ok" } else { "FAIL" },
            if g_ok { "ok" } else { "FAIL" },
        );
    }
    println!(
        "\nthe lumped model misses {missed} thermal violations that the grid model \
         catches — the paper's argument for a spatially resolved model"
    );
}
