//! `lint_bench` — wall-clock and determinism benchmark of the oftec-lint
//! analysis pipeline.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin lint_bench -- [options]
//!
//! Options:
//!   --root <dir>   workspace root to lint (default ".")
//!   --reps <n>     timed repetitions per configuration (default 3)
//!   --out <path>   report file (default BENCH_lint.json)
//! ```
//!
//! The report (`BENCH_lint.json`) records, for the same workspace:
//!
//! - cold-cache wall time and files/second at 1 and 8 analysis threads
//!   (cold = cache file deleted before every repetition),
//! - warm-cache wall time (cache fully populated, so the per-file phase
//!   is pure replay and only the crate phase recomputes),
//! - byte-identity of the JSONL report across thread counts and cache
//!   states (asserted — a mismatch is a benchmark failure, not a number),
//! - the warm/cold ratio (acceptance: warm < 0.25 × cold).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use oftec_lint::{render_jsonl, run, DenySet, RunConfig};

struct Config {
    root: PathBuf,
    reps: u32,
    out: String,
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config {
        root: PathBuf::from("."),
        reps: 3,
        out: "BENCH_lint.json".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} requires a value"));
        match arg.as_str() {
            "--root" => config.root = PathBuf::from(value("--root")?),
            "--reps" => {
                config.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("--reps: {e}"))?
            }
            "--out" => config.out = value("--out")?,
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    config.reps = config.reps.max(1);
    Ok(config)
}

struct Timed {
    best_ms: f64,
    report_jsonl: String,
    files: usize,
}

/// Best-of-`reps` timed run. `cold` deletes the cache before every
/// repetition; warm runs leave the populated cache in place.
fn timed(config: &RunConfig, reps: u32, cold: bool) -> Result<Timed, String> {
    let mut best_ms = f64::INFINITY;
    let mut report_jsonl = String::new();
    let mut files = 0;
    for _ in 0..reps {
        if cold {
            if let Some(path) = &config.cache {
                let _ = std::fs::remove_file(path);
            }
        }
        let start = Instant::now();
        let report = run(config)?;
        let elapsed_ms = start.elapsed().as_secs_f64() * 1e3;
        best_ms = best_ms.min(elapsed_ms);
        files = report.files_scanned;
        report_jsonl = render_jsonl(&report);
    }
    Ok(Timed {
        best_ms,
        report_jsonl,
        files,
    })
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("lint_bench: {e}");
            return ExitCode::from(2);
        }
    };
    let cache_path = std::env::temp_dir().join(format!("oftec-lint-bench-{}", std::process::id()));
    let run_config = |threads: usize| RunConfig {
        root: config.root.clone(),
        baseline: config.root.join("lint-baseline.toml"),
        deny: DenySet::All,
        threads: Some(threads),
        cache: Some(cache_path.clone()),
    };

    let result = (|| -> Result<String, String> {
        let cold_t1 = timed(&run_config(1), config.reps, true)?;
        let cold_t8 = timed(&run_config(8), config.reps, true)?;
        // The last cold repetition left the cache fully populated.
        let warm_t8 = timed(&run_config(8), config.reps, false)?;

        let identical = cold_t1.report_jsonl == cold_t8.report_jsonl
            && cold_t8.report_jsonl == warm_t8.report_jsonl;
        if !identical {
            return Err("reports diverge across thread counts or cache states".into());
        }
        let warm_over_cold = warm_t8.best_ms / cold_t8.best_ms;
        let findings = cold_t1
            .report_jsonl
            .lines()
            .filter(|l| l.starts_with("{\"type\":\"finding\""))
            .count();

        let json = format!(
            "{{\n  \"config\": {{\"reps\":{},\"files\":{}}},\n  \
             \"cold_ms\": {{\"threads_1\":{:.1},\"threads_8\":{:.1}}},\n  \
             \"warm_ms\": {{\"threads_8\":{:.1}}},\n  \
             \"files_per_s\": {{\"cold_1\":{:.0},\"cold_8\":{:.0},\"warm_8\":{:.0}}},\n  \
             \"warm_over_cold\": {:.3},\n  \
             \"findings\": {},\n  \
             \"determinism\": {{\"bytes_identical\":{}}}\n}}\n",
            config.reps,
            cold_t1.files,
            cold_t1.best_ms,
            cold_t8.best_ms,
            warm_t8.best_ms,
            cold_t1.files as f64 / (cold_t1.best_ms / 1e3),
            cold_t8.files as f64 / (cold_t8.best_ms / 1e3),
            warm_t8.files as f64 / (warm_t8.best_ms / 1e3),
            warm_over_cold,
            findings,
            identical,
        );
        println!("{json}");
        if warm_over_cold >= 0.25 {
            return Err(format!(
                "warm-cache run took {warm_over_cold:.2}x the cold run; the \
                 incremental cache must replay in under 0.25x"
            ));
        }
        Ok(json)
    })();
    let _ = std::fs::remove_file(&cache_path);

    match result {
        Ok(json) => {
            if let Err(e) = std::fs::write(&config.out, json) {
                eprintln!("lint_bench: cannot write {}: {e}", config.out);
                return ExitCode::from(2);
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("lint_bench: {e}");
            ExitCode::FAILURE
        }
    }
}
