//! Quantifies the paper's §6.2 remark: benchmarks the baselines fail
//! "should be further cooled down using other thermal management
//! techniques such as reducing the voltage/frequency of the chip or
//! throttling different functional units which leads to performance
//! degradation."
//!
//! For each benchmark, the uniform dynamic-power cut the fan-only system
//! needs to meet `T_max` — the performance loss OFTEC's TECs avoid.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin throttling
//! ```

use oftec::baselines::required_fan_only_throttle;
use oftec::{CoolingSystem, Oftec};
use oftec_power::Benchmark;

fn main() {
    println!(
        "{:>14} | {:>16} | {:>12} | {:>14}",
        "benchmark", "fan-only cut", "OFTEC cut", "system COP*"
    );
    let optimizer = Oftec::default();
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let cut = required_fan_only_throttle(&system, 0.01);
        let outcome = optimizer.run(&system).ok();
        let (oftec_cut, cop) = match outcome.as_ref().and_then(|o| o.optimized()) {
            Some(sol) => (
                "0%".to_owned(),
                sol.solution
                    .breakdown()
                    .system_cop(system.total_dynamic_power())
                    .map_or("—".to_owned(), |c| format!("{c:.1}")),
            ),
            None => ("needed".to_owned(), "—".to_owned()),
        };
        println!(
            "{:>14} | {:>15.1}% | {:>12} | {:>14}",
            b.name(),
            100.0 * cut,
            oftec_cut,
            cop,
        );
    }
    println!(
        "\n*heat removed from the die per watt of TEC+fan power at OFTEC's optimum \
         (the system-level COP of the paper's reference [8])"
    );
    println!(
        "the hot five would need a 3–7% dynamic-power cut (with the corresponding \
         voltage/frequency loss) under fan-only cooling; OFTEC's hybrid assembly \
         needs none"
    );
}
