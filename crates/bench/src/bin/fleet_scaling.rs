//! `fleet-scaling` — throughput and determinism benchmark of the fleet
//! scenario engine.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin fleet_scaling -- [options]
//!
//! Options:
//!   --seed <n>        run seed (default 42)
//!   --scenarios <n>   total scenarios per sweep (default 10000)
//!   --shards <n>      shard count (default 8)
//!   --smoke           small sweep (2 shards × 200) for the CI gate
//!   --out <path>      report file (default BENCH_fleet.json)
//! ```
//!
//! The report (`BENCH_fleet.json`) records, for the same seeded scenario
//! population swept at 1, 4 and 8 worker threads:
//!
//! - scenarios/second per thread count (on a multi-core host the ratio is
//!   the parallel speedup; `cpu_cores` says how many cores were there to
//!   scale onto — on a single-core host parity is the correct result),
//! - the verdict-partition mix (identical across thread counts by the
//!   determinism contract, asserted here),
//! - the differential-fuzzing tally (acceptance: `discrepancies == 0`),
//! - byte-identity of the concatenated verdict streams at 1 vs 8 threads
//!   and across a kill-then-resume of the 8-thread sweep.

use oftec_fleet::runner::{concatenated_verdicts, run, RunConfig, RunSummary};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Config {
    seed: u64,
    scenarios: u32,
    shards: u32,
    smoke: bool,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            seed: 42,
            scenarios: 10_000,
            shards: 8,
            smoke: false,
            out: "BENCH_fleet.json".into(),
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::default();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it.next().cloned().ok_or(format!("{name} requires a value")),
            }
        };
        match flag {
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|_| "--seed: not an integer".to_string())?;
            }
            "--scenarios" => {
                config.scenarios = value("--scenarios")?
                    .parse()
                    .map_err(|_| "--scenarios: not an integer".to_string())?;
            }
            "--shards" => {
                config.shards = value("--shards")?
                    .parse()
                    .map_err(|_| "--shards: not an integer".to_string())?;
            }
            "--smoke" => config.smoke = true,
            "--out" => config.out = value("--out")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.smoke {
        config.scenarios = 400;
        config.shards = 2;
    }
    Ok(config)
}

fn sweep_config(config: &Config, dir: PathBuf, threads: usize) -> RunConfig {
    let mut c = RunConfig::new(
        config.seed,
        config.shards,
        config.scenarios / config.shards.max(1),
        dir,
    );
    c.threads = threads;
    c.cross_check_divisor = 64;
    c
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oftec-fleet-bench-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("fleet-scaling: {msg}");
            return ExitCode::FAILURE;
        }
    };
    oftec_telemetry::set_collecting(true);
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    // One sweep of the same population per thread count, each in a fresh
    // directory so every sweep pays the full cost.
    let thread_counts = [1usize, 4, 8];
    let mut sweeps: Vec<(usize, f64, RunSummary, PathBuf)> = Vec::new();
    for &threads in &thread_counts {
        let dir = fresh_dir(&format!("t{threads}"));
        let c = sweep_config(&config, dir.clone(), threads);
        let started = Instant::now();
        let summary = match run(&c) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fleet-scaling: {threads}-thread sweep failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let seconds = started.elapsed().as_secs_f64();
        eprintln!(
            "fleet-scaling: {} scenarios at {threads} thread(s) in {seconds:.1}s \
             ({:.0}/s), {} cross-checked, {} discrepancies",
            summary.scenarios,
            summary.scenarios as f64 / seconds.max(1e-9),
            summary.cross_checks,
            summary.discrepancies
        );
        sweeps.push((threads, seconds, summary, dir));
    }

    // Determinism: identical summaries and identical bytes at 1 vs 8.
    let base = &sweeps[0].2;
    for (threads, _, summary, _) in &sweeps[1..] {
        if summary != base {
            eprintln!("fleet-scaling: {threads}-thread summary diverged from 1-thread");
            return ExitCode::FAILURE;
        }
    }
    let bytes_1 = concatenated_verdicts(&sweeps[0].3, config.shards);
    let bytes_8 = concatenated_verdicts(&sweeps[2].3, config.shards);
    let identical = match (&bytes_1, &bytes_8) {
        (Ok(a), Ok(b)) => a == b,
        _ => false,
    };
    if !identical {
        eprintln!("fleet-scaling: verdict streams differ between 1 and 8 threads");
        return ExitCode::FAILURE;
    }

    // Kill-then-resume: stop the 8-thread sweep a third of the way into a
    // fresh directory, resume it, and compare against the full stream.
    let resume_dir = fresh_dir("resume");
    let mut first_leg = sweep_config(&config, resume_dir.clone(), 8);
    first_leg.stop_after = Some(u64::from(config.scenarios) / 3);
    let resume_ok = match run(&first_leg) {
        Ok(partial) => {
            let mut second_leg = sweep_config(&config, resume_dir.clone(), 8);
            second_leg.stop_after = None;
            partial.stopped_early
                && match (run(&second_leg), &bytes_8) {
                    (Ok(_), Ok(reference)) => concatenated_verdicts(&resume_dir, config.shards)
                        .map(|resumed| &resumed == reference)
                        .unwrap_or(false),
                    _ => false,
                }
        }
        Err(e) => {
            eprintln!("fleet-scaling: interrupted sweep failed: {e}");
            false
        }
    };
    if !resume_ok {
        eprintln!("fleet-scaling: kill-then-resume stream diverged");
        return ExitCode::FAILURE;
    }

    let throughput = |i: usize| {
        let (_, seconds, summary, _) = &sweeps[i];
        summary.scenarios as f64 / seconds.max(1e-9)
    };
    let report = format!(
        "{{\n  \"config\": {{\"seed\":{},\"scenarios\":{},\"shards\":{},\"smoke\":{},\
         \"cross_check_divisor\":64,\"cpu_cores\":{}}},\n  \
         \"throughput_per_s\": {{\"threads_1\":{:.1},\"threads_4\":{:.1},\"threads_8\":{:.1}}},\n  \
         \"speedup_vs_1\": {{\"threads_4\":{:.2},\"threads_8\":{:.2}}},\n  \
         \"verdicts\": {{\"feasible\":{},\"fan_only\":{},\"tec_required\":{},\
         \"runaway\":{},\"solver_error\":{}}},\n  \
         \"cross_checks\": {},\n  \"discrepancies\": {},\n  \
         \"determinism\": {{\"bytes_identical_1_vs_8\":{},\"resume_identical\":{}}}\n}}\n",
        config.seed,
        base.scenarios,
        config.shards,
        config.smoke,
        cores,
        throughput(0),
        throughput(1),
        throughput(2),
        throughput(1) / throughput(0).max(1e-9),
        throughput(2) / throughput(0).max(1e-9),
        base.verdicts.feasible,
        base.verdicts.fan_only,
        base.verdicts.tec_required,
        base.verdicts.runaway,
        base.verdicts.solver_error,
        base.cross_checks,
        base.discrepancies,
        identical,
        resume_ok,
    );
    for (_, _, _, dir) in &sweeps {
        let _ = std::fs::remove_dir_all(dir);
    }
    let _ = std::fs::remove_dir_all(&resume_dir);
    if let Err(e) = std::fs::write(&config.out, &report) {
        eprintln!("fleet-scaling: cannot write {}: {e}", config.out);
        return ExitCode::FAILURE;
    }
    println!("{report}");
    if base.discrepancies > 0 {
        eprintln!("fleet-scaling: {} discrepancies found", base.discrepancies);
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
