//! Reproduces **Figure 6(c)(d)**: maximum chip temperature and cooling
//! power after **Optimization 2** (minimize the maximum temperature) for
//! OFTEC and the two baselines across all eight benchmarks.
//!
//! Expected shape (paper): OFTEC meets `T_max` on all eight benchmarks
//! and sits well below the baselines (≥ 13 °C on average); the baselines
//! fail five benchmarks; OFTEC has the *highest* power here because the
//! TECs are working flat out.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin fig6cd [--telemetry-json <path>]
//! ```

use oftec_bench::{all_systems, compare_all, ComparisonMode, Reporter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_args, telemetry) = oftec_bench::telemetry_args();
    let rows = compare_all(&all_systems(), ComparisonMode::Optimization2);
    let mut report = Reporter::new();
    report.comparison(&rows, "Figure 6(c)(d): after Optimization 2 (min 𝒯)");

    let failures = rows.iter().filter(|r| !r.var_feasible).count();
    report.line(format!(
        "\nvariable-ω baseline fails {failures} / 8 benchmarks (paper: 5)"
    ));
    let failures_fixed = rows.iter().filter(|r| !r.fixed_feasible).count();
    report.line(format!(
        "fixed-ω baseline fails {failures_fixed} / 8 benchmarks (paper: 5)"
    ));

    let deltas: Vec<f64> = rows
        .iter()
        .filter_map(|r| Some(r.var_temp_c? - r.oftec_temp_c?))
        .collect();
    if !deltas.is_empty() {
        let avg = deltas.iter().sum::<f64>() / deltas.len() as f64;
        report.line(format!(
            "OFTEC is on average {avg:.1} °C cooler than the variable-ω baseline \
             (paper: more than 13 °C)"
        ));
    }
    let oftec_all_ok = rows
        .iter()
        .all(|r| r.oftec_temp_c.is_some_and(|t| t < 90.0));
    report.line(format!(
        "OFTEC meets T_max on all benchmarks: {oftec_all_ok} (paper: yes)"
    ));
    report.finish();
    oftec_bench::finish_telemetry(telemetry)
}
