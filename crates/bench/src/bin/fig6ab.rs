//! Reproduces **Figure 6(a)(b)**: the maximum-die-temperature and
//! cooling-power surfaces over the (ω, I_TEC) plane for the `basicmath`
//! benchmark, including the thermal-runaway ("infinite") region at low ω.
//!
//! Writes two CSV files next to the working directory and prints the
//! qualitative observations the paper derives from the figure.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin fig6ab [out_dir] [--telemetry-json <path>]
//! ```

use oftec::{CoolingSystem, SweepGrid};
use oftec_power::Benchmark;
use std::fs;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (args, telemetry) = oftec_bench::telemetry_args();
    let out_dir = args.first().cloned().unwrap_or_else(|| ".".into());
    let system = CoolingSystem::for_benchmark(Benchmark::Basicmath);
    let sweep = SweepGrid {
        omega_points: 50,
        current_points: 26,
    }
    .run(system.tec_model());

    let csv_path = format!("{out_dir}/fig6ab_basicmath_surface.csv");
    if let Err(e) = fs::write(&csv_path, sweep.to_csv()) {
        eprintln!("cannot write {csv_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("surface written to {csv_path}");

    println!(
        "\nrunaway region: {:.1}% of the plane has no steady state",
        100.0 * sweep.runaway_fraction()
    );
    if let Some(boundary) = sweep.runaway_boundary_rpm() {
        println!(
            "first non-runaway fan speed: ω ≈ {boundary:.0} RPM \
             (paper: \"ω should also be increased to about 150 RPM\")"
        );
    }
    if let Some((t, cool)) = sweep
        .coolest()
        .and_then(|c| c.max_temp_celsius.map(|t| (t, c)))
    {
        println!(
            "Fig 6(a) minimum (min 𝒯): {t:.2} °C at ω = {:.0} RPM, I = {:.2} A \
             (paper: \"almost the middle of the (ω-I) plane\")",
            cool.omega_rpm, cool.current_a
        );
    }
    if let Some((p, cheap)) = sweep.cheapest().and_then(|c| c.power_watts.map(|p| (p, c))) {
        println!(
            "Fig 6(b) minimum (min 𝒫): {p:.2} W at ω = {:.0} RPM, I = {:.2} A \
             (paper: \"the minimum occurs near the origin\")",
            cheap.omega_rpm, cheap.current_a
        );
    }

    // The paper's observation that at ω = 0 no current can save the chip.
    let zero_omega_all_runaway = sweep
        .samples
        .iter()
        .filter(|s| s.omega_rpm == 0.0)
        .all(|s| s.max_temp_celsius.is_none());
    println!(
        "at ω = 0, every TEC current ends in runaway: {zero_omega_all_runaway} \
         (paper: \"increasing I_TEC alone cannot rescue the chip\")"
    );
    oftec_bench::finish_telemetry(telemetry)
}
