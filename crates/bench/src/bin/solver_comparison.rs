//! Reproduces the §5.2 claim: of the three state-of-the-art CNLP
//! methods — interior point, trust region, active-set SQP — "the
//! active-set SQP method performs the best ... both in terms of solution
//! quality and speed". Exhaustive grid search provides the reference
//! optimum.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin solver_comparison [--telemetry-json <path>]
//! ```

use oftec::problems::{CoolingObjective, CoolingProblem};
use oftec::CoolingSystem;
use oftec_bench::fmt_opt;
use oftec_optim::{
    ActiveSetSqp, GridSearch, InteriorPoint, NelderMead, NlpProblem, SolveOptions, TrustRegion,
};
use oftec_power::Benchmark;
use std::process::ExitCode;
use std::time::Instant;

struct Outcome {
    power: Option<f64>,
    millis: f64,
    solves: usize,
}

fn feasible_power(problem: &CoolingProblem<'_>, x: &[f64], t_max_c: f64) -> Option<f64> {
    let t = problem.max_temperature(x)?;
    if t.celsius() < t_max_c {
        problem.objective(x)
    } else {
        None
    }
}

fn main() -> ExitCode {
    let (_args, telemetry) = oftec_bench::telemetry_args();
    let opts = SolveOptions {
        max_iterations: 60,
        tolerance: 1e-6,
    };
    println!("§5.2 solver comparison on Optimization 1 (feasible-start points)");
    println!(
        "{:>14} | {:>18} | {:>18} | {:>18} | {:>18} | {:>18}",
        "benchmark",
        "SQP  𝒫 W / ms",
        "interior 𝒫 W / ms",
        "trust 𝒫 W / ms",
        "simplex 𝒫 W / ms",
        "grid 𝒫 W / ms"
    );

    let mut sums = [0.0f64; 5];
    let mut times = [0.0f64; 5];
    let mut counted = 0usize;

    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        // Common feasible start: the coolest-ish center used by OFTEC, or
        // phase-1 output for hot benchmarks.
        let probe =
            CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
        let start = if probe
            .max_temperature(&[0.5, 0.5])
            .is_some_and(|t| t < system.t_max())
        {
            vec![0.5, 0.5]
        } else {
            vec![0.8, 0.5]
        };
        if feasible_power(&probe, &start, 90.0).is_none() {
            println!("{:>14} | no common feasible start, skipped", b.name());
            continue;
        }

        let run = |which: usize| -> Outcome {
            let problem =
                CoolingProblem::new(system.tec_model(), CoolingObjective::Power, system.t_max());
            let t0 = Instant::now();
            let x = match which {
                0 => ActiveSetSqp::default()
                    .solve(&problem, &start, &opts)
                    .ok()
                    .map(|r| r.x),
                1 => InteriorPoint::default()
                    .solve(&problem, &start, &opts)
                    .ok()
                    .map(|r| r.x),
                2 => TrustRegion::default()
                    .solve(&problem, &start, &opts)
                    .ok()
                    .map(|r| r.x),
                3 => NelderMead::default()
                    .solve(&problem, &start, &opts)
                    .ok()
                    .map(|r| r.x),
                _ => GridSearch {
                    points_per_dim: 41,
                    ..Default::default()
                }
                .solve(&problem, &start, &opts)
                .ok()
                .map(|r| r.x),
            };
            let millis = t0.elapsed().as_secs_f64() * 1e3;
            let power = x.and_then(|x| feasible_power(&problem, &x, 90.0));
            Outcome {
                power,
                millis,
                solves: problem.thermal_solves(),
            }
        };

        let outcomes: Vec<Outcome> = (0..5).map(run).collect();
        print!("{:>14} |", b.name());
        for o in &outcomes {
            print!(" {} /{:>6.0} |", fmt_opt(o.power, 8), o.millis);
        }
        println!(
            " (thermal solves: {:?})",
            outcomes.iter().map(|o| o.solves).collect::<Vec<_>>()
        );

        if outcomes.iter().all(|o| o.power.is_some()) {
            counted += 1;
            for (k, o) in outcomes.iter().enumerate() {
                // Guarded by the all-feasible check above.
                sums[k] += o.power.unwrap_or_default();
                times[k] += o.millis;
            }
        }
    }

    if counted > 0 {
        let n = counted as f64;
        println!("\naverages over {counted} benchmarks where all five finished feasible:");
        for (k, name) in [
            "active-set SQP",
            "interior point",
            "trust region",
            "Nelder-Mead",
            "grid search",
        ]
        .iter()
        .enumerate()
        {
            println!(
                "  {:>15}: 𝒫 = {:.2} W, {:.0} ms",
                name,
                sums[k] / n,
                times[k] / n
            );
        }
        println!(
            "\npaper: the active-set SQP performs best in quality and speed; grid \
             search is the (slow) ground truth"
        );
    }
    oftec_bench::finish_telemetry(telemetry)
}
