//! Ablation of the §4 leakage treatment: the paper replaces fixed-point
//! iteration of the exponential leakage with a one-shot linear Taylor fit
//! (Eq. (4)) "to speed up the convergence dramatically". This binary
//! quantifies both the accuracy gap and the speedup on our models.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin leakage_ablation
//! ```

use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_thermal::{NonlinearOptions, OperatingPoint};
use oftec_units::{AngularVelocity, Current};
use std::time::Instant;

fn main() {
    println!("§4 ablation: Eq. (4) linear leakage vs exponential fixed point");
    println!(
        "{:>14} | {:>10} {:>10} {:>7} | {:>10} {:>10} {:>7} | {:>6}",
        "benchmark", "lin T °C", "lin 𝒫 W", "µs", "nl T °C", "nl 𝒫 W", "µs", "outer"
    );

    let op = OperatingPoint::new(
        AngularVelocity::from_rpm(3000.0),
        Current::from_amperes(1.0),
    );
    let mut worst_gap = 0.0f64;
    let mut speedups = Vec::new();
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let model = system.tec_model();

        let t0 = Instant::now();
        let lin = match model.solve(op) {
            Ok(s) => s,
            Err(e) => {
                println!("{:>14} | linear solve failed: {e}", b.name());
                continue;
            }
        };
        let lin_us = t0.elapsed().as_secs_f64() * 1e6;

        let t0 = Instant::now();
        let (nl, outer) = match model.solve_nonlinear(op, &NonlinearOptions::default()) {
            Ok(s) => s,
            Err(e) => {
                println!("{:>14} | nonlinear solve failed: {e}", b.name());
                continue;
            }
        };
        let nl_us = t0.elapsed().as_secs_f64() * 1e6;

        let gap =
            (lin.max_chip_temperature().celsius() - nl.max_chip_temperature().celsius()).abs();
        worst_gap = worst_gap.max(gap);
        speedups.push(nl_us / lin_us);

        println!(
            "{:>14} | {:>10.2} {:>10.2} {:>7.0} | {:>10.2} {:>10.2} {:>7.0} | {:>6}",
            b.name(),
            lin.max_chip_temperature().celsius(),
            lin.objective_power().watts(),
            lin_us,
            nl.max_chip_temperature().celsius(),
            nl.objective_power().watts(),
            nl_us,
            outer,
        );
    }
    println!(
        "\nworst |T_lin − T_nl| = {worst_gap:.2} °C; nonlinear costs {:.1}× the linear solve \
         on average",
        speedups.iter().sum::<f64>() / speedups.len() as f64
    );
    println!(
        "(the paper accepts the linearization error in exchange for a single linear \
         system per evaluation)"
    );
}
