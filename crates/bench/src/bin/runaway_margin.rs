//! Spectral stability margins across the (ω, I) plane: the smallest
//! eigenvalue of the folded network matrix, which hits zero exactly at
//! the thermal-runaway boundary of Figure 6(a)(b).
//!
//! ```text
//! cargo run --release -p oftec-bench --bin runaway_margin [benchmark]
//! ```

use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_thermal::OperatingPoint;
use oftec_units::{AngularVelocity, Current};

fn main() {
    let name = std::env::args().nth(1);
    let benchmark = Benchmark::ALL
        .iter()
        .copied()
        .find(|b| {
            name.as_deref()
                .is_some_and(|n| b.name().eq_ignore_ascii_case(n))
        })
        .unwrap_or(Benchmark::Basicmath);
    let system = CoolingSystem::for_benchmark(benchmark);
    let model = system.tec_model();

    println!(
        "smallest eigenvalue (W/K) of the folded network matrix, {}:",
        benchmark.name()
    );
    println!(
        "{:>9} | {:>12} | {:>12} | {:>12}",
        "ω (RPM)", "I = 0 A", "I = 2 A", "I = 5 A"
    );
    for rpm in [0.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2000.0, 5000.0] {
        let margin = |amps: f64| {
            model
                .runaway_margin(OperatingPoint::new(
                    AngularVelocity::from_rpm(rpm),
                    Current::from_amperes(amps),
                ))
                .map_or("runaway".to_owned(), |m| format!("{m:.4}"))
        };
        println!(
            "{:>9.0} | {:>12} | {:>12} | {:>12}",
            rpm,
            margin(0.0),
            margin(2.0),
            margin(5.0)
        );
    }
    println!(
        "\nthe margin is ~independent of I (Peltier folding shifts ± symmetric \
         diagonals) and collapses as ω → 0 — the spectral face of the paper's \
         runaway region"
    );
}
