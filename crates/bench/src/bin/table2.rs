//! Reproduces **Table 2** of the paper: OFTEC's optimized `I*_TEC`, `ω*`,
//! and runtime for the eight MiBench benchmarks.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin table2 [--telemetry-json <path>]
//! ```

use oftec::{Oftec, OftecOutcome};
use oftec_bench::all_systems;
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_args, telemetry) = oftec_bench::telemetry_args();
    println!("Table 2. Results of OFTEC for MiBench benchmarks");
    println!(
        "{:>14} | {:>8} | {:>9} | {:>12} | {:>8} | {:>10}",
        "benchmark", "I* (A)", "ω* (RPM)", "runtime (ms)", "𝒫 (W)", "Tmax (°C)"
    );
    let optimizer = Oftec::default();
    let mut runtimes = Vec::new();
    for system in all_systems() {
        match optimizer.run(&system) {
            Err(e) => println!("{:>14} | solver error: {e}", system.name()),
            Ok(OftecOutcome::Optimized(sol)) => {
                let ms = sol.runtime.as_secs_f64() * 1e3;
                runtimes.push(ms);
                println!(
                    "{:>14} | {:>8.2} | {:>9.0} | {:>12.1} | {:>8.2} | {:>10.2}",
                    system.name(),
                    sol.operating_point.tec_current.amperes(),
                    sol.operating_point.fan_speed.rpm(),
                    ms,
                    sol.cooling_power.watts(),
                    sol.max_temperature.celsius(),
                );
            }
            Ok(OftecOutcome::Infeasible(report)) => {
                println!(
                    "{:>14} | {:>8} | {:>9} | {:>12} | {:>8} | {:>10.2}  (INFEASIBLE)",
                    system.name(),
                    "—",
                    "—",
                    "—",
                    "—",
                    report.best_temperature.celsius(),
                );
            }
        }
    }
    if !runtimes.is_empty() {
        let avg = runtimes.iter().sum::<f64>() / runtimes.len() as f64;
        let worst = runtimes.iter().cloned().fold(0.0_f64, f64::max);
        println!("\naverage runtime {avg:.1} ms, slowest {worst:.1} ms");
        println!("(paper: average 437 ms, slowest 693 ms on an i7-3770)");
    }
    oftec_bench::finish_telemetry(telemetry)
}
