//! Prints **Table 1** of the paper (the package-stack input
//! configuration), as materialized by `PackageConfig::dac14()`, plus the
//! §6.1 scalar constants.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin table1
//! ```

use oftec_thermal::PackageConfig;
use oftec_units::AngularVelocity;

fn main() {
    let c = PackageConfig::dac14();
    println!("Table 1. Thermal conductivity and dimensions of package layers");
    println!(
        "{:>14} | {:>22} | dimensions",
        "layer", "conductivity W/(m·K)"
    );
    let mm = 1e3;
    let rows = [
        (
            "chip",
            c.chip_conductivity.w_per_m_k(),
            format!(
                "15.9 mm × 15.9 mm × {:.0} µm",
                c.chip_thickness.micrometers()
            ),
        ),
        (
            "TIM 1",
            c.tim_conductivity.w_per_m_k(),
            format!(
                "15.9 mm × 15.9 mm × {:.0} µm",
                c.tim1_thickness.micrometers()
            ),
        ),
        (
            "heat spreader",
            c.metal_conductivity.w_per_m_k(),
            format!(
                "{:.0} mm × {:.0} mm × {:.0} mm",
                c.spreader_edge.meters() * mm,
                c.spreader_edge.meters() * mm,
                c.spreader_thickness.meters() * mm
            ),
        ),
        (
            "TIM 2",
            c.tim_conductivity.w_per_m_k(),
            format!(
                "{:.0} mm × {:.0} mm × {:.0} µm",
                c.spreader_edge.meters() * mm,
                c.spreader_edge.meters() * mm,
                c.tim2_thickness.micrometers()
            ),
        ),
        (
            "heat sink",
            c.metal_conductivity.w_per_m_k(),
            format!(
                "{:.0} mm × {:.0} mm × {:.0} mm",
                c.sink_edge.meters() * mm,
                c.sink_edge.meters() * mm,
                c.sink_thickness.meters() * mm
            ),
        ),
    ];
    for (name, k, dims) in rows {
        println!("{name:>14} | {k:>22.2} | {dims}");
    }

    println!("\n§6.1 constants:");
    println!("  ambient temperature    {:.0} °C", c.ambient.celsius());
    println!(
        "  ω_max                  {:.0} rad/s ({:.0} RPM)",
        c.fan.omega_max.rad_per_s(),
        c.fan.omega_max.rpm()
    );
    println!("  I_TEC,max              5 A");
    println!("  T_max                  90 °C");
    println!("  fan power constant c   {:.1e} J·s²", c.fan.c);
    println!(
        "  g_HS&fan fit           p = {} W/K, r = {} W/K, q = {} s, g_HS = {} W/K",
        c.fan.p, c.fan.r, c.fan.q, c.fan.g_hs_still
    );
    println!(
        "  g_HS&fan(2000 RPM)     {:.2} W/K",
        c.fan
            .conductance(AngularVelocity::from_rpm(2000.0))
            .w_per_k()
    );
    println!(
        "  die grid               {} × {} cells",
        c.die_dims.rows, c.die_dims.cols
    );
}
