//! `reduction-accuracy` — accuracy/latency benchmark of the reduced-order
//! steady-state solve path against the full CSR/CG reference.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin reduction_accuracy -- [options]
//!
//! Options:
//!   --benchmark <name>   workload (default qsort)
//!   --smoke              coarse DAC'14 package + small grid (CI gate)
//!   --repeats <n>        reduced-path timing repeats per grid point
//!   --out <path>         report file (default BENCH_reduction.json)
//! ```
//!
//! The report (`BENCH_reduction.json`) records, over an operating-point
//! grid spanning the feasible region:
//!
//! - max/mean absolute die-temperature error of the reduced solve vs the
//!   full solve (acceptance: max < 0.1 K),
//! - per-evaluation latency of both paths and their ratio (acceptance:
//!   ≥ 10× speedup),
//! - the one-time basis build cost and how many evaluations amortize it,
//! - the `reduction.*` telemetry counters from the run (the CI gate
//!   asserts `reduction.solves > 0`, i.e. the fast path actually ran).

use oftec::CoolingSystem;
use oftec_power::Benchmark;
use oftec_thermal::{CoolingModel, OperatingPoint, PackageConfig, ReductionOptions};
use oftec_units::{AngularVelocity, Current};
use std::process::ExitCode;
use std::time::Instant;

struct Config {
    benchmark: String,
    smoke: bool,
    repeats: usize,
    out: String,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            benchmark: "qsort".into(),
            smoke: false,
            repeats: 0, // 0 = pick by mode
            out: "BENCH_reduction.json".into(),
        }
    }
}

fn parse_args() -> Result<Config, String> {
    let mut config = Config::default();
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut it = raw.iter();
    while let Some(arg) = it.next() {
        let (flag, inline) = match arg.split_once('=') {
            Some((f, v)) => (f, Some(v.to_string())),
            None => (arg.as_str(), None),
        };
        let mut value = |name: &str| -> Result<String, String> {
            match inline.clone() {
                Some(v) => Ok(v),
                None => it.next().cloned().ok_or(format!("{name} requires a value")),
            }
        };
        match flag {
            "--benchmark" => config.benchmark = value("--benchmark")?,
            "--smoke" => config.smoke = true,
            "--repeats" => {
                config.repeats = value("--repeats")?
                    .parse()
                    .map_err(|_| "--repeats: not a non-negative integer".to_string())?;
            }
            "--out" => config.out = value("--out")?,
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(msg) => {
            eprintln!("reduction-accuracy: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let Some(benchmark) = Benchmark::from_name(&config.benchmark) else {
        eprintln!(
            "reduction-accuracy: unknown benchmark `{}`",
            config.benchmark
        );
        return ExitCode::FAILURE;
    };
    oftec_telemetry::set_collecting(true);

    let (package, package_name, omega_points, current_points) = if config.smoke {
        (PackageConfig::dac14_coarse(), "dac14_coarse", 8, 6)
    } else {
        (PackageConfig::dac14(), "dac14", 10, 6)
    };
    let repeats = if config.repeats > 0 {
        config.repeats
    } else if config.smoke {
        20
    } else {
        50
    };
    let system = CoolingSystem::for_benchmark_with_config(benchmark, &package);
    let model = system.tec_model();

    // One-time basis construction (a few dozen warm-chained full solves).
    let build_started = Instant::now();
    let reduced_model = match model.build_reduced(&ReductionOptions::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reduction-accuracy: basis build failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let build_seconds = build_started.elapsed().as_secs_f64();
    let reduced = oftec_thermal::ReducedCoolingModel::new(model, Some(&reduced_model));

    // The comparison grid spans the feasible region: fan speeds from 30%
    // of ω_max (below sits the runaway boundary) and currents to 2.5 A.
    let omega_max = model.config().fan.omega_max.rpm();
    let mut ops = Vec::new();
    for wi in 0..omega_points {
        let rpm = omega_max * (0.3 + 0.7 * wi as f64 / (omega_points - 1) as f64);
        for ci in 0..current_points {
            let amps = 2.5 * ci as f64 / (current_points - 1) as f64;
            ops.push(OperatingPoint::new(
                AngularVelocity::from_rpm(rpm),
                Current::from_amperes(amps),
            ));
        }
    }

    // Accuracy: both paths solved once per grid point.
    let mut max_err: f64 = 0.0;
    let mut sum_err = 0.0;
    let mut compared = 0usize;
    let mut runaway = 0usize;
    let mut disagreements = 0usize;
    for &op in &ops {
        match (reduced.solve(op), model.solve(op)) {
            (Ok(fast), Ok(full)) => {
                let err = (fast.max_chip_temperature().kelvin()
                    - full.max_chip_temperature().kelvin())
                .abs();
                max_err = max_err.max(err);
                sum_err += err;
                compared += 1;
            }
            (Err(_), Err(_)) => runaway += 1,
            _ => disagreements += 1,
        }
    }
    if compared == 0 {
        eprintln!("reduction-accuracy: no comparable grid points (all runaway?)");
        return ExitCode::FAILURE;
    }
    let mean_err = sum_err / compared as f64;

    // Latency: the reduced path repeated, the full path once per point
    // (cold starts on both sides, matching the uncached serve path).
    let started = Instant::now();
    let mut reduced_evals = 0usize;
    for _ in 0..repeats {
        for &op in &ops {
            if reduced.solve(op).is_ok() {
                reduced_evals += 1;
            }
        }
    }
    let reduced_us = started.elapsed().as_secs_f64() * 1e6 / (repeats * ops.len()) as f64;
    let started = Instant::now();
    for &op in &ops {
        let _ = model.solve(op);
    }
    let full_us = started.elapsed().as_secs_f64() * 1e6 / ops.len() as f64;
    let speedup = full_us / reduced_us.max(1e-12);
    // Evaluations after which the basis build has paid for itself.
    let amortize_evals = (build_seconds * 1e6 / (full_us - reduced_us).max(1e-9)).ceil();

    oftec_telemetry::flush();
    let snap = oftec_telemetry::snapshot();
    let counter = |name: &str| snap.counters.get(name).copied().unwrap_or(0);

    let report = format!(
        "{{\n  \"config\": {{\"benchmark\":\"{}\",\"package\":\"{}\",\"omega_points\":{},\
         \"current_points\":{},\"repeats\":{},\"smoke\":{}}},\n  \
         \"build\": {{\"seconds\":{:.4},\"snapshots_used\":{},\"basis_size\":{},\
         \"amortized_after_evals\":{}}},\n  \
         \"grid\": {{\"points\":{},\"compared\":{},\"runaway\":{},\"disagreements\":{}}},\n  \
         \"max_abs_error_k\": {:.6e},\n  \"mean_abs_error_k\": {:.6e},\n  \
         \"latency\": {{\"reduced_us_per_eval\":{:.2},\"full_us_per_eval\":{:.2},\
         \"speedup\":{:.1}}},\n  \
         \"counters\": {{\"reduction.solves\":{},\"reduction.fallbacks\":{},\
         \"reduction.builds\":{}}}\n}}\n",
        benchmark.name(),
        package_name,
        omega_points,
        current_points,
        repeats,
        config.smoke,
        build_seconds,
        reduced_model.snapshots_used(),
        reduced_model.basis_size(),
        amortize_evals,
        ops.len(),
        compared,
        runaway,
        disagreements,
        max_err,
        mean_err,
        reduced_us,
        full_us,
        speedup,
        counter("reduction.solves"),
        counter("reduction.fallbacks"),
        counter("reduction.builds"),
    );
    if let Err(e) = std::fs::write(&config.out, &report) {
        eprintln!("reduction-accuracy: cannot write {}: {e}", config.out);
        return ExitCode::FAILURE;
    }
    println!("{report}");
    eprintln!(
        "reduction-accuracy: {} evals via reduced path, report written to {}",
        reduced_evals, config.out
    );
    ExitCode::SUCCESS
}
