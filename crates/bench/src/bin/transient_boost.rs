//! The §6.2 transient-boost extension (after the paper's reference \[8\]):
//! raise `I*` by ~1 A for ~1 s — the Peltier effect is instantaneous
//! while the extra Joule heat arrives with the package's thermal delay,
//! buying short-term cooling while a fresh OFTEC solution is computed.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin transient_boost
//! ```

use oftec::controller::TransientBoost;
use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;
use oftec_units::Current;

fn main() {
    println!("§6.2 transient boost: I* + 1 A for 1 s from the OFTEC optimum");
    println!(
        "{:>14} | {:>8} | {:>11} | {:>11} | {:>10}",
        "benchmark", "I* (A)", "steady °C", "boost min °C", "gain (K)"
    );
    let optimizer = Oftec::default();
    for &b in &Benchmark::ALL {
        let system = CoolingSystem::for_benchmark(b);
        let sol = match optimizer.run(&system) {
            Ok(OftecOutcome::Optimized(sol)) => sol,
            _ => {
                println!("{:>14} | infeasible", b.name());
                continue;
            }
        };
        // Stay within the 5 A device limit.
        let headroom = 5.0 - sol.operating_point.tec_current.amperes();
        let boost = Current::from_amperes(headroom.min(1.0));
        if boost.amperes() <= 0.0 {
            println!("{:>14} | no current headroom for a boost", b.name());
            continue;
        }
        let policy = TransientBoost {
            boost,
            duration_seconds: 1.0,
        };
        match policy.simulate(&system, sol.operating_point) {
            Ok(report) => println!(
                "{:>14} | {:>8.2} | {:>11.2} | {:>11.2} | {:>10.2}",
                b.name(),
                sol.operating_point.tec_current.amperes(),
                report.steady_temperature.celsius(),
                report.boosted_minimum.celsius(),
                report.peak_gain(),
            ),
            Err(e) => println!("{:>14} | boost failed: {e}", b.name()),
        }
    }
    println!("\n(paper/[8]: ~1 A of extra current yields transient cooling for ~1 s)");
}
