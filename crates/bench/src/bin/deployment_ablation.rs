//! TEC deployment ablation — the §6.1 placement policy and its
//! motivation from the paper's references \[6\]\[7\]: "avoiding the excessive
//! deployment of TECs helps eliminate the power they are consuming and
//! heating their neighbor TECs."
//!
//! Compares the paper's deployment (everything except the caches) against
//! blanket deployment (the whole die, caches included) at the same
//! operating points.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin deployment_ablation
//! ```

use oftec_floorplan::alpha21264;
use oftec_power::{Benchmark, McpatBudget};
use oftec_tec::{TecDeployment, TecDeviceParams};
use oftec_thermal::{CoolingConfig, HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("deployment_ablation: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let fp = alpha21264();
    let cfg = PackageConfig::dac14();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let params = TecDeviceParams::superlattice_thin_film();

    let selective = TecDeployment::tile_except(&fp, cfg.die_dims, params, &["Icache", "Dcache"]);
    let blanket = TecDeployment::tile_all(&fp, cfg.die_dims, params);
    println!(
        "selective deployment: {:.0} device-equivalents; blanket: {:.0}",
        selective.device_count(),
        blanket.device_count()
    );

    println!(
        "\n{:>14} | {:>22} | {:>22} | {:>8}",
        "benchmark", "selective T °C / 𝒫 W", "blanket T °C / 𝒫 W", "ΔP (W)"
    );
    let op = OperatingPoint::new(
        AngularVelocity::from_rpm(2800.0),
        Current::from_amperes(1.5),
    );
    let mut extra_power = Vec::new();
    for &b in &Benchmark::ALL {
        let dyn_p = b.max_dynamic_power(&fp)?;
        let m_sel = HybridCoolingModel::new(
            &fp,
            &cfg,
            CoolingConfig::HybridTec(selective.clone()),
            dyn_p.clone(),
            &leak,
        )?;
        let m_all = HybridCoolingModel::new(
            &fp,
            &cfg,
            CoolingConfig::HybridTec(blanket.clone()),
            dyn_p,
            &leak,
        )?;
        let s = m_sel.solve(op)?;
        let a = m_all.solve(op)?;
        let dp = a.objective_power().watts() - s.objective_power().watts();
        extra_power.push(dp);
        println!(
            "{:>14} | {:>10.2} / {:>8.2} | {:>10.2} / {:>8.2} | {:>8.2}",
            b.name(),
            s.max_chip_temperature().celsius(),
            s.objective_power().watts(),
            a.max_chip_temperature().celsius(),
            a.objective_power().watts(),
            dp,
        );
    }
    let avg = extra_power.iter().sum::<f64>() / extra_power.len() as f64;
    println!(
        "\nblanket deployment costs {avg:.2} W extra on average at the same operating \
         point, for cache regions that were never hot — the paper's §6.1 rationale \
         for leaving the caches uncovered"
    );
    Ok(())
}
