//! Closed-loop comparison against the related-work controllers (the
//! paper's reference \[5\]): threshold and hysteresis bang-bang control of
//! the TEC current vs OFTEC's optimized steady `(ω*, I*)`.
//!
//! The paper's §3 position: reactive constant-current switching neither
//! finds the power-optimal point nor coordinates with the fan. This
//! experiment quantifies transitions, temperature ripple, and TEC energy
//! over a 30-second closed-loop run.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin reactive_controllers
//! ```

use oftec::reactive::{
    run_closed_loop, ConstantCurrent, HysteresisController, TecPolicy, ThresholdController,
};
use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;
use oftec_units::{Current, Temperature};

fn main() {
    let system = CoolingSystem::for_benchmark(Benchmark::Dijkstra);
    let sol = match Oftec::default().run(&system) {
        Ok(OftecOutcome::Optimized(sol)) => sol,
        _ => unreachable!("dijkstra is OFTEC-coolable"),
    };
    let fan = sol.operating_point.fan_speed;
    println!(
        "workload {}, fan fixed at OFTEC's ω* = {:.0} RPM, 60 windows × 0.5 s",
        system.name(),
        fan.rpm()
    );

    // Reference [5]-style settings: switch around T_max − 2 K with a
    // fixed 2.5 A drive.
    let t_on = Temperature::from_celsius(88.0);
    let drive = Current::from_amperes(2.5);

    let mut threshold = ThresholdController {
        threshold: t_on,
        drive,
    };
    let mut hysteresis = HysteresisController::new(t_on, Temperature::from_celsius(85.0), drive);
    let mut constant = ConstantCurrent(sol.operating_point.tec_current);

    println!(
        "\n{:>12} | {:>9} | {:>9} | {:>12} | {:>12}",
        "controller", "peak °C", "ripple K", "transitions", "TEC energy J"
    );
    let run = |name: &str, policy: &mut dyn TecPolicy| match run_closed_loop(
        &system, fan, policy, 60, 0.5,
    ) {
        Ok(report) => println!(
            "{:>12} | {:>9.2} | {:>9.2} | {:>12} | {:>12.1}",
            name,
            report.peak().celsius(),
            report.ripple(),
            report.transitions,
            report.tec_energy_joules,
        ),
        Err(e) => println!("{name:>12} | closed-loop solve failed: {e}"),
    };
    run("threshold", &mut threshold);
    run("hysteresis", &mut hysteresis);
    run("OFTEC I*", &mut constant);

    println!(
        "\nexpected shape: hysteresis switches less than threshold (ref. [5]'s \
         goal); OFTEC's steady I* holds the die at the limit with zero ripple \
         and no switching wear"
    );
}
