//! Ambient-temperature sensitivity — the datacenter context of the
//! paper's reference [4] (TECs for datacenter-scale thermal management).
//! The paper fixes a hot 45 °C ambient; this experiment sweeps it and
//! watches OFTEC's operating point, power, and feasibility respond.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin ambient_sensitivity [benchmark]
//! ```

use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_floorplan::alpha21264;
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::PackageConfig;
use oftec_units::Temperature;
use std::process::ExitCode;

fn main() -> ExitCode {
    let benchmark = std::env::args()
        .nth(1)
        .and_then(|n| {
            Benchmark::ALL
                .iter()
                .copied()
                .find(|b| b.name().eq_ignore_ascii_case(&n))
        })
        .unwrap_or(Benchmark::Quicksort);

    println!(
        "OFTEC vs ambient temperature, {} (paper fixes 45 °C):",
        benchmark.name()
    );
    println!(
        "{:>10} | {:>8} | {:>8} | {:>8} | {:>10}",
        "T_amb °C", "ω* RPM", "I* (A)", "𝒫 (W)", "T_max °C"
    );
    let fp = alpha21264();
    let optimizer = Oftec::default();
    let dyn_p = match benchmark.max_dynamic_power(&fp) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot synthesize {}: {e}", benchmark.name());
            return ExitCode::FAILURE;
        }
    };
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    for amb_c in [25.0, 30.0, 35.0, 40.0, 45.0, 50.0, 55.0] {
        let cfg = PackageConfig {
            ambient: Temperature::from_celsius(amb_c),
            ..PackageConfig::dac14()
        };
        let system = CoolingSystem::new(
            benchmark.name(),
            fp.clone(),
            cfg,
            dyn_p.clone(),
            leak.clone(),
            oftec::default_t_max(),
        );
        match optimizer.run(&system) {
            Err(e) => println!("{amb_c:>10.0} | solver error: {e}"),
            Ok(OftecOutcome::Optimized(sol)) => println!(
                "{:>10.0} | {:>8.0} | {:>8.2} | {:>8.2} | {:>10.2}",
                amb_c,
                sol.operating_point.fan_speed.rpm(),
                sol.operating_point.tec_current.amperes(),
                sol.cooling_power.watts(),
                sol.max_temperature.celsius(),
            ),
            Ok(OftecOutcome::Infeasible(report)) => println!(
                "{:>10.0} | {:>8} | {:>8} | {:>8} | {:>10.2}  INFEASIBLE",
                amb_c,
                "—",
                "—",
                "—",
                report.best_temperature.celsius(),
            ),
        }
    }
    println!(
        "\ncooler air buys cheaper operating points (leakage and fan both relax); \
         the 45 °C the paper assumes is a hot-aisle worst case"
    );
    ExitCode::SUCCESS
}
