//! Reproduces **Figure 6(e)(f)**: maximum chip temperature and cooling
//! power after **Optimization 1** (minimize cooling power subject to
//! `T < T_max`) for OFTEC and the two baselines.
//!
//! Expected shape (paper): on the three benchmarks every method can cool
//! (`basicmath`, `CRC32`, `stringsearch`), OFTEC consumes ~2.6% less
//! power than the variable-ω baseline and ~8.1% less than the fixed-ω
//! baseline (5.4% average of the two), while keeping the hottest spot
//! 3.7 °C / 3.0 °C cooler; baselines have no valid result on the other
//! five.
//!
//! ```text
//! cargo run --release -p oftec-bench --bin fig6ef [--telemetry-json <path>]
//! ```

use oftec_bench::{all_systems, compare_all, ComparisonMode, Reporter};
use std::process::ExitCode;

fn main() -> ExitCode {
    let (_args, telemetry) = oftec_bench::telemetry_args();
    let rows = compare_all(&all_systems(), ComparisonMode::Optimization1);
    let mut report = Reporter::new();
    report.comparison(
        &rows,
        "Figure 6(e)(f): after Optimization 1 (min 𝒫 s.t. T < T_max)",
    );

    // Paper comparison on the commonly-feasible benchmarks.
    let comparable: Vec<_> = rows
        .iter()
        .filter(|r| r.var_feasible && r.fixed_feasible && r.oftec_power_w.is_some())
        .collect();
    report.line(format!(
        "\ncommonly feasible benchmarks: {}",
        comparable.len()
    ));
    if !comparable.is_empty() {
        // Averages over whichever of the commonly-feasible rows carry the
        // field (feasibility implies presence, but don't panic if not).
        let avg = |f: &dyn Fn(&&oftec_bench::ComparisonRow) -> Option<f64>| -> f64 {
            let vals: Vec<f64> = comparable.iter().filter_map(f).collect();
            vals.iter().sum::<f64>() / vals.len().max(1) as f64
        };
        let oftec_p = avg(&|r| r.oftec_power_w);
        let var_p = avg(&|r| r.var_power_w);
        let fix_p = avg(&|r| r.fixed_power_w);
        report.line(format!(
            "average 𝒫: OFTEC {:.2} W, variable-ω {:.2} W (−{:.1}% vs OFTEC; paper −2.6%), \
             fixed-ω {:.2} W (−{:.1}%; paper −8.1%)",
            oftec_p,
            var_p,
            100.0 * (var_p - oftec_p) / var_p,
            fix_p,
            100.0 * (fix_p - oftec_p) / fix_p,
        ));
        let oftec_t = avg(&|r| r.oftec_temp_c);
        let var_t = avg(&|r| r.var_temp_c);
        let fix_t = avg(&|r| r.fixed_temp_c);
        report.line(format!(
            "average T_max: OFTEC {:.2} °C, {:.1} °C cooler than variable-ω (paper 3.7), \
             {:.1} °C cooler than fixed-ω (paper 3.0)",
            oftec_t,
            var_t - oftec_t,
            fix_t - oftec_t,
        ));
    }
    report.finish();
    oftec_bench::finish_telemetry(telemetry)
}
