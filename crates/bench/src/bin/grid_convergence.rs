//! Discretization study: how the maximum die temperature and the solve
//! cost change with the thermal grid resolution. Validates the default
//! 16×16 die grid (§4: "increasing the number of these elements increases
//! the accuracy of the model; however, it also … makes the analysis
//! slow").
//!
//! ```text
//! cargo run --release -p oftec-bench --bin grid_convergence
//! ```

use oftec_floorplan::{alpha21264, GridDims};
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::{HybridCoolingModel, OperatingPoint, PackageConfig};
use oftec_units::{AngularVelocity, Current};
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let fp = alpha21264();
    let leak = McpatBudget::alpha21264_22nm().distribute(&fp);
    let dyn_p = match Benchmark::BitCount.max_dynamic_power(&fp) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("cannot synthesize bitcount: {e}");
            return ExitCode::FAILURE;
        }
    };
    let op = OperatingPoint::new(
        AngularVelocity::from_rpm(3000.0),
        Current::from_amperes(1.5),
    );

    println!("bitcount at (3000 RPM, 1.5 A), fan+TEC stack:");
    println!(
        "{:>9} | {:>7} | {:>10} | {:>10} | {:>10}",
        "die grid", "nodes", "T_max °C", "𝒫 (W)", "solve µs"
    );
    let mut last_t = None;
    for res in [4usize, 8, 12, 16, 20, 24, 32] {
        let cfg = PackageConfig {
            die_dims: GridDims::new(res, res),
            spreader_dims: GridDims::new((res * 5 / 8).max(2), (res * 5 / 8).max(2)),
            sink_dims: GridDims::new((res / 2).max(2), (res / 2).max(2)),
            pcb_dims: GridDims::new((res * 3 / 8).max(2), (res * 3 / 8).max(2)),
            ..PackageConfig::dac14()
        };
        let model = HybridCoolingModel::with_tec(&fp, &cfg, dyn_p.clone(), &leak);
        // Warm the caches, then time a few solves.
        let sol = match model.solve(op) {
            Ok(s) => s,
            Err(e) => {
                println!("{res:>6}×{res:<2} | solver error: {e}");
                continue;
            }
        };
        let t0 = Instant::now();
        let reps = 10;
        for _ in 0..reps {
            // The warm solve above succeeded; timing reps reuse the result.
            let _ = model.solve(op);
        }
        let micros = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        let t = sol.max_chip_temperature().celsius();
        let delta = last_t
            .map(|prev: f64| format!("  (Δ {:+.2} K)", t - prev))
            .unwrap_or_default();
        last_t = Some(t);
        println!(
            "{:>6}×{:<2} | {:>7} | {:>10.2} | {:>10.2} | {:>10.0}{delta}",
            res,
            res,
            model.node_count(),
            t,
            sol.objective_power().watts(),
            micros,
        );
    }
    println!(
        "\nbeyond 12×12 the hot-spot estimate settles to within ±2 K (the residual \
         oscillation comes from how cell edges align with unit boundaries); the \
         default 16×16 grid buys that accuracy at a few ms per solve, which is \
         what makes Table 2's sub-second OFTEC runtimes possible"
    );
    ExitCode::SUCCESS
}
