//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section 6). Each binary under `src/bin/` prints one
//! artifact; the Criterion benches under `benches/` time the hot paths.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1` | Table 1 (package stack, input configuration) |
//! | `fig6ab` | Figure 6(a)(b): 𝒯 and 𝒫 surfaces over (ω, I) for basicmath |
//! | `fig6cd` | Figure 6(c)(d): Optimization 2 comparison, 3 methods × 8 benchmarks |
//! | `fig6ef` | Figure 6(e)(f): Optimization 1 comparison |
//! | `table2` | Table 2: per-benchmark `I*`, `ω*`, runtime |
//! | `solver_comparison` | §5.2: active-set SQP vs interior point vs trust region vs grid search |
//! | `leakage_ablation` | §4: Taylor linearization vs exponential fixed point |
//! | `runaway` | §6.2: TEC-only thermal runaway, runaway boundary vs ω |
//! | `transient_boost` | §6.2: the 1 A / 1 s transient boost |

use oftec::baselines::{self, BaselineOutcome};
use oftec::{CoolingSystem, Oftec, OftecOutcome};
use oftec_power::Benchmark;
use oftec_thermal::PackageConfig;
use serde::Serialize;
use std::fmt::Write as _;
use std::process::ExitCode;

/// One row of a per-benchmark comparison: OFTEC vs the two baselines.
#[derive(Debug, Clone, Serialize)]
pub struct ComparisonRow {
    /// Benchmark name.
    pub benchmark: String,
    /// OFTEC maximum die temperature (°C), if feasible.
    pub oftec_temp_c: Option<f64>,
    /// OFTEC cooling power 𝒫 (W), if feasible.
    pub oftec_power_w: Option<f64>,
    /// Variable-ω baseline temperature (°C); present even when infeasible
    /// (the coolest it could get).
    pub var_temp_c: Option<f64>,
    /// Variable-ω baseline power (W), only when feasible.
    pub var_power_w: Option<f64>,
    /// Whether the variable-ω baseline met `T_max`.
    pub var_feasible: bool,
    /// Fixed-ω (2000 RPM) baseline temperature (°C).
    pub fixed_temp_c: Option<f64>,
    /// Fixed-ω baseline power (W), only when feasible.
    pub fixed_power_w: Option<f64>,
    /// Whether the fixed-ω baseline met `T_max`.
    pub fixed_feasible: bool,
}

/// Which paper experiment a comparison reproduces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonMode {
    /// Figure 6(c)(d): everyone minimizes the maximum temperature.
    Optimization2,
    /// Figure 6(e)(f): everyone minimizes cooling power subject to
    /// `T < T_max`.
    Optimization1,
}

/// Builds the eight benchmark systems on the calibrated full grid, one
/// per worker thread (model construction assembles the full RC network
/// and its CSR skeleton, so this is worth parallelizing).
pub fn all_systems() -> Vec<CoolingSystem> {
    oftec_parallel::par_map_indexed(&Benchmark::ALL, |_, &b| CoolingSystem::for_benchmark(b))
}

/// Builds the eight benchmark systems on a custom package config.
pub fn all_systems_with(config: &PackageConfig) -> Vec<CoolingSystem> {
    oftec_parallel::par_map_indexed(&Benchmark::ALL, |_, &b| {
        CoolingSystem::for_benchmark_with_config(b, config)
    })
}

fn baseline_fields(outcome: &BaselineOutcome) -> (Option<f64>, Option<f64>, bool) {
    (
        outcome.max_temperature().map(|t| t.celsius()),
        outcome.cooling_power().map(|p| p.watts()),
        outcome.is_feasible(),
    )
}

/// Runs one benchmark through OFTEC and both baselines in the given mode.
pub fn compare(system: &CoolingSystem, mode: ComparisonMode) -> ComparisonRow {
    let optimizer = Oftec::default();
    let (oftec_temp_c, oftec_power_w) = match mode {
        ComparisonMode::Optimization1 => match optimizer.run(system) {
            Ok(OftecOutcome::Optimized(sol)) => (
                Some(sol.max_temperature.celsius()),
                Some(sol.cooling_power.watts()),
            ),
            Ok(OftecOutcome::Infeasible(report)) => (Some(report.best_temperature.celsius()), None),
            Err(_) => (None, None),
        },
        ComparisonMode::Optimization2 => {
            match optimizer.minimize_temperature(system.tec_model(), system.t_max()) {
                Some(sol) => (
                    Some(sol.max_temperature.celsius()),
                    Some(sol.cooling_power.watts()),
                ),
                None => (None, None),
            }
        }
    };

    let minimize_power = mode == ComparisonMode::Optimization1;
    let var = baselines::variable_speed_fan(system, minimize_power);
    let fixed = baselines::fixed_speed_fan(system, oftec::fixed_baseline_speed());
    let (var_temp_c, var_power_w, var_feasible) = baseline_fields(&var);
    let (fixed_temp_c, fixed_power_w, fixed_feasible) = baseline_fields(&fixed);

    ComparisonRow {
        benchmark: system.name().to_owned(),
        oftec_temp_c,
        oftec_power_w,
        var_temp_c,
        var_power_w,
        var_feasible,
        fixed_temp_c,
        fixed_power_w,
        fixed_feasible,
    }
}

/// Runs [`compare`] for every system concurrently, returning the rows in
/// the input order (each comparison is three full optimizer runs, so the
/// eight benchmarks dominate a figure binary's wall clock).
pub fn compare_all(systems: &[CoolingSystem], mode: ComparisonMode) -> Vec<ComparisonRow> {
    oftec_parallel::par_map_indexed(systems, |_, system| compare(system, mode))
}

/// Formats a float option for a fixed-width table.
pub fn fmt_opt(v: Option<f64>, width: usize) -> String {
    match v {
        Some(v) => format!("{v:>width$.2}"),
        None => format!("{:>width$}", "—"),
    }
}

/// Buffered report writer for the figure/table binaries.
///
/// The whole report is rendered into one `String` (no per-row `println!`
/// temporaries), printed once by [`Reporter::finish`], and mirrored into
/// the telemetry registry as it is built: each table records
/// `bench.report.rows` / `bench.report.var_failures` /
/// `bench.report.fixed_failures` counters, so a `--telemetry-json`
/// snapshot carries the machine-readable summary of what was printed.
#[derive(Default)]
pub struct Reporter {
    out: String,
}

impl Reporter {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one line of free-form text.
    pub fn line(&mut self, text: impl std::fmt::Display) {
        let _ = writeln!(self.out, "{text}");
    }

    /// Appends a comparison table (temperatures and powers side by side)
    /// and mirrors its row counts into the telemetry registry.
    pub fn comparison(&mut self, rows: &[ComparisonRow], title: &str) {
        let _span = oftec_telemetry::span("bench.report");
        oftec_telemetry::counter_add("bench.report.rows", rows.len() as u64);
        let _ = writeln!(self.out, "=== {title} ===");
        let _ = writeln!(
            self.out,
            "{:>14} | {:>9} {:>9} {:>9} | {:>9} {:>9} {:>9} | var fixed",
            "benchmark", "OFTEC °C", "var °C", "fix °C", "OFTEC W", "var W", "fix W"
        );
        let mut var_failures = 0u64;
        let mut fixed_failures = 0u64;
        for r in rows {
            var_failures += u64::from(!r.var_feasible);
            fixed_failures += u64::from(!r.fixed_feasible);
            let _ = writeln!(
                self.out,
                "{:>14} | {} {} {} | {} {} {} | {:>3} {:>5}",
                r.benchmark,
                fmt_opt(r.oftec_temp_c, 9),
                fmt_opt(r.var_temp_c, 9),
                fmt_opt(r.fixed_temp_c, 9),
                fmt_opt(r.oftec_power_w, 9),
                fmt_opt(r.var_power_w, 9),
                fmt_opt(r.fixed_power_w, 9),
                if r.var_feasible { "ok" } else { "FAIL" },
                if r.fixed_feasible { "ok" } else { "FAIL" },
            );
        }
        oftec_telemetry::counter_add("bench.report.var_failures", var_failures);
        oftec_telemetry::counter_add("bench.report.fixed_failures", fixed_failures);
    }

    /// The rendered report so far.
    pub fn rendered(&self) -> &str {
        &self.out
    }

    /// Prints the buffered report to stdout in one write.
    pub fn finish(self) {
        // oftec-lint: allow(L005, single buffered write; the Reporter is the figure binaries' stdout surface)
        print!("{}", self.out);
    }
}

/// Prints a comparison table (temperatures and powers side by side).
pub fn print_comparison(rows: &[ComparisonRow], title: &str) {
    let mut report = Reporter::new();
    report.comparison(rows, title);
    report.finish();
}

/// Strips `--telemetry-json <path>` from a binary's argument list. When
/// the flag is present, telemetry collection is forced on so the snapshot
/// written by [`finish_telemetry`] is populated. Binaries call this
/// *before* reading their positional arguments.
pub fn telemetry_args() -> (Vec<String>, Option<String>) {
    oftec_telemetry::init_from_env();
    let mut rest = Vec::new();
    let mut path = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--telemetry-json" {
            path = it.next();
            if path.is_none() {
                // oftec-lint: allow(L005, argument-parse feedback emitted before telemetry is configured)
                eprintln!("--telemetry-json requires a file path; ignoring");
            }
        } else if let Some(p) = arg.strip_prefix("--telemetry-json=") {
            path = Some(p.to_string());
        } else {
            rest.push(arg);
        }
    }
    if path.is_some() {
        oftec_telemetry::set_collecting(true);
    }
    (rest, path)
}

/// Writes the registry snapshot collected since [`telemetry_args`] to the
/// path it returned (no-op when the flag was absent).
pub fn finish_telemetry(path: Option<String>) -> ExitCode {
    let Some(path) = path else {
        return ExitCode::SUCCESS;
    };
    // Recorded before the flush so the snapshot self-documents its
    // destination instead of announcing it on stderr.
    oftec_telemetry::event(
        oftec_telemetry::Severity::Info,
        "bench.telemetry.write",
        &[("path", oftec_telemetry::Field::Str(&path))],
    );
    oftec_telemetry::flush();
    match std::fs::write(&path, oftec_telemetry::snapshot().to_json()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // oftec-lint: allow(L005, the telemetry writer itself failed; stderr is the only channel left)
            eprintln!("cannot write telemetry snapshot {path}: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_row_on_coarse_grid() {
        let system = CoolingSystem::for_benchmark_with_config(
            Benchmark::Crc32,
            &PackageConfig::dac14_coarse(),
        );
        let row = compare(&system, ComparisonMode::Optimization1);
        assert_eq!(row.benchmark, "CRC32");
        assert!(row.oftec_temp_c.is_some());
        assert!(row.var_feasible && row.fixed_feasible);
    }

    #[test]
    fn fmt_opt_handles_none() {
        assert_eq!(fmt_opt(None, 5).trim(), "—");
        assert_eq!(fmt_opt(Some(1.234), 6).trim(), "1.23");
    }
}
