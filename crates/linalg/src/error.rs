//! Error type shared by every solver in the crate.

/// Errors produced by factorizations and solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum LinalgError {
    /// A matrix that must be square was not; holds `(rows, cols)`.
    NotSquare(usize, usize),
    /// Operand dimensions do not agree; holds `(expected, actual)`.
    DimensionMismatch(usize, usize),
    /// The matrix is singular to working precision; holds the pivot index
    /// at which elimination broke down.
    Singular(usize),
    /// A Cholesky factorization found a non-positive pivot, i.e. the matrix
    /// is not positive definite; holds the offending row.
    NotPositiveDefinite(usize),
    /// An iterative solver did not reach the requested tolerance; holds the
    /// iteration count and the final residual norm.
    NotConverged {
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Final residual 2-norm.
        residual: f64,
    },
    /// An iterative method broke down (e.g. a zero inner product in
    /// BiCGSTAB); holds a short description.
    Breakdown(&'static str),
    /// An operand or result contained NaN/inf; holds a short description of
    /// where the non-finite value was seen.
    NonFinite(&'static str),
}

impl core::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::NotSquare(r, c) => write!(f, "matrix is not square: {r}×{c}"),
            Self::DimensionMismatch(e, a) => {
                write!(f, "dimension mismatch: expected {e}, got {a}")
            }
            Self::Singular(k) => write!(f, "matrix is singular at pivot {k}"),
            Self::NotPositiveDefinite(k) => {
                write!(f, "matrix is not positive definite at row {k}")
            }
            Self::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            Self::Breakdown(what) => write!(f, "iterative solver breakdown: {what}"),
            Self::NonFinite(what) => write!(f, "non-finite value in {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            LinalgError::NotSquare(3, 4).to_string(),
            "matrix is not square: 3×4"
        );
        assert!(LinalgError::Singular(2).to_string().contains("pivot 2"));
        assert!(LinalgError::NotPositiveDefinite(1)
            .to_string()
            .contains("positive definite"));
        assert!(LinalgError::NotConverged {
            iterations: 10,
            residual: 1e-3
        }
        .to_string()
        .contains("10 iterations"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
