//! Preconditioned Krylov solvers: CG and BiCGSTAB.

use crate::{vector, CsrMatrix, LinalgError, Preconditioner};
use oftec_telemetry as telemetry;

/// Bucket bounds for the Krylov iteration-count histograms (powers of
/// two; one implicit overflow bucket above 1024).
const ITER_BOUNDS: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024];

/// Convergence controls shared by the Krylov solvers.
#[derive(Debug, Clone, Copy)]
pub struct IterativeParams {
    /// Relative residual tolerance: stop when `‖r‖₂ ≤ rtol·‖b‖₂`.
    pub rtol: f64,
    /// Absolute residual floor, useful when `b ≈ 0`.
    pub atol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for IterativeParams {
    fn default() -> Self {
        Self {
            rtol: 1e-10,
            atol: 1e-14,
            max_iter: 10_000,
        }
    }
}

/// Outcome of a converged Krylov solve.
#[derive(Debug, Clone, PartialEq)]
pub struct IterativeSummary {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations used.
    pub iterations: usize,
    /// Final residual 2-norm.
    pub residual: f64,
    /// Residual 2-norm after every norm evaluation, starting with the
    /// initial residual. Empty unless telemetry is collecting
    /// ([`oftec_telemetry::collecting`]) — populating it costs one push
    /// per iteration, so it is gated with the rest of the registry.
    pub residual_trace: Vec<f64>,
}

fn target_residual(b: &[f64], params: &IterativeParams) -> f64 {
    (params.rtol * vector::norm2(b)).max(params.atol)
}

/// Solves `A·x = b` with the preconditioned conjugate-gradient method.
///
/// Requires `A` symmetric positive definite (not checked; CG silently
/// misbehaves otherwise — use [`solve_bicgstab`] for the nonsymmetric
/// thermal matrices with Peltier feedback folded in).
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] on shape disagreement.
/// - [`LinalgError::NotConverged`] if `max_iter` is exhausted.
/// - [`LinalgError::Breakdown`] on a zero/negative curvature direction,
///   which usually means the matrix was not SPD.
///
/// # Examples
///
/// ```
/// use oftec_linalg::{solve_cg, IterativeParams, JacobiPreconditioner, Triplets};
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 4.0);
/// t.push(1, 1, 2.0);
/// let a = t.to_csr();
/// let m = JacobiPreconditioner::new(&a)?;
/// let sol = solve_cg(&a, &[8.0, 2.0], None, &m, &IterativeParams::default())?;
/// assert!((sol.x[0] - 2.0).abs() < 1e-9);
/// # Ok::<(), oftec_linalg::LinalgError>(())
/// ```
#[must_use = "the solve outcome (including failure) is in the Result"]
pub fn solve_cg(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    m: &dyn Preconditioner,
    params: &IterativeParams,
) -> Result<IterativeSummary, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(n, b.len()));
    }
    if m.dim() != n {
        return Err(LinalgError::DimensionMismatch(n, m.dim()));
    }
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch(n, x0.len()));
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let collecting = telemetry::collecting();
    let _span = telemetry::span("cg.solve");
    telemetry::counter_add("cg.solves", 1);

    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r = vector::sub(b, &ax);
    let target = target_residual(b, params);
    let mut rnorm = vector::norm2(&r);
    let mut residual_trace = Vec::new();
    if collecting {
        residual_trace.push(rnorm);
    }
    if rnorm <= target {
        telemetry::histogram_record("cg.iterations", ITER_BOUNDS, 0);
        return Ok(IterativeSummary {
            x,
            iterations: 0,
            residual: rnorm,
            residual_trace,
        });
    }

    let mut z = vec![0.0; n];
    m.apply(&r, &mut z);
    let mut p = z.clone();
    let mut rz = vector::dot(&r, &z);

    for iter in 1..=params.max_iter {
        a.matvec_into(&p, &mut ax); // reuse ax as A·p
        let pap = vector::dot(&p, &ax);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(LinalgError::Breakdown("non-positive curvature in CG"));
        }
        let alpha = rz / pap;
        vector::axpy(alpha, &p, &mut x);
        vector::axpy(-alpha, &ax, &mut r);
        rnorm = vector::norm2(&r);
        if collecting {
            residual_trace.push(rnorm);
        }
        if rnorm <= target {
            telemetry::histogram_record("cg.iterations", ITER_BOUNDS, iter as u64);
            return Ok(IterativeSummary {
                x,
                iterations: iter,
                residual: rnorm,
                residual_trace,
            });
        }
        m.apply(&r, &mut z);
        let rz_new = vector::dot(&r, &z);
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: rnorm,
    })
}

/// Single-precision shadow of a CSR matrix for the mixed-precision path:
/// same pattern, `f32` values, plus a Jacobi preconditioner diagonal.
struct CsrF32 {
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f32>,
    /// `1/diag` in f32 (1.0 where the diagonal is zero/non-finite).
    inv_diag: Vec<f32>,
}

impl CsrF32 {
    fn from_csr(a: &CsrMatrix) -> Self {
        let n = a.rows();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut cols = Vec::with_capacity(a.nnz());
        let mut vals = Vec::with_capacity(a.nnz());
        let mut inv_diag = vec![1.0f32; n];
        row_ptr.push(0);
        for r in 0..n {
            for (c, v) in a.row_iter(r) {
                cols.push(c as u32);
                vals.push(v as f32);
                if c == r {
                    let d = v as f32;
                    // oftec-lint: allow(L004, exact zero guards the 1/d division; any nonzero diagonal is usable)
                    if d.is_finite() && d != 0.0 {
                        inv_diag[r] = 1.0 / d;
                    }
                }
            }
            row_ptr.push(cols.len());
        }
        Self {
            row_ptr,
            cols,
            vals,
            inv_diag,
        }
    }

    fn matvec_into(&self, x: &[f32], y: &mut [f32]) {
        for r in 0..self.row_ptr.len() - 1 {
            let mut acc = 0.0f32;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.vals[k] * x[self.cols[k] as usize];
            }
            y[r] = acc;
        }
    }
}

/// Jacobi-preconditioned CG entirely in `f32`, run to a loose tolerance
/// (or an iteration budget) from a zero start. Returns the approximate
/// solution and the iterations spent; never errors — on breakdown it
/// returns whatever progress was made and lets the f64 refinement loop
/// judge the result.
fn cg_f32(a: &CsrF32, b: &[f32], rtol: f32, max_iter: usize) -> (Vec<f32>, usize) {
    let n = b.len();
    let mut x = vec![0.0f32; n];
    let mut r = b.to_vec();
    let norm_b = r.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm_b <= 0.0 || !norm_b.is_finite() {
        return (x, 0);
    }
    let target = rtol * norm_b;
    let mut z: Vec<f32> = r.iter().zip(&a.inv_diag).map(|(ri, di)| ri * di).collect();
    let mut p = z.clone();
    let mut rz: f32 = r.iter().zip(&z).map(|(ri, zi)| ri * zi).sum();
    let mut ap = vec![0.0f32; n];
    for iter in 1..=max_iter {
        a.matvec_into(&p, &mut ap);
        let pap: f32 = p.iter().zip(&ap).map(|(pi, ai)| pi * ai).sum();
        if pap <= 0.0 || !pap.is_finite() {
            return (x, iter - 1);
        }
        let alpha = rz / pap;
        for i in 0..n {
            x[i] += alpha * p[i];
            r[i] -= alpha * ap[i];
        }
        let rnorm = r.iter().map(|v| v * v).sum::<f32>().sqrt();
        if rnorm <= target || !rnorm.is_finite() {
            return (x, iter);
        }
        for i in 0..n {
            z[i] = r[i] * a.inv_diag[i];
        }
        let rz_new: f32 = r.iter().zip(&z).map(|(ri, zi)| ri * zi).sum();
        // oftec-lint: allow(L004, exact zero guards the beta division; only a true zero breaks the recurrence)
        if rz == 0.0 || !rz_new.is_finite() {
            return (x, iter);
        }
        let beta = rz_new / rz;
        rz = rz_new;
        for i in 0..n {
            p[i] = z[i] + beta * p[i];
        }
    }
    (x, max_iter)
}

/// Solves SPD `A·x = b` by mixed-precision iterative refinement: inner
/// Jacobi-CG sweeps in `f32` compute corrections, an outer `f64` loop
/// recomputes the true residual and repeats until the full `f64` target
/// `‖r‖₂ ≤ max(rtol·‖b‖₂, atol)` holds. Roughly halves the memory
/// bandwidth of the inner iterations, which dominate large solves, while
/// delivering the same final accuracy as [`solve_cg`].
///
/// The computation is sequential and fixed-order, so results are
/// bit-identical across runs and `OFTEC_THREADS` settings (though not
/// bitwise equal to the pure-f64 path — callers gate it behind a config
/// flag for that reason).
///
/// `IterativeSummary::iterations` counts inner f32 iterations summed over
/// all refinement passes.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on
///   shape disagreement.
/// - [`LinalgError::NonFinite`] if `b` contains NaN/inf.
/// - [`LinalgError::Breakdown`] when a refinement pass fails to shrink
///   the f64 residual — for the thermal matrices this is the
///   indefiniteness (runaway) signal, mirroring CG's negative-curvature
///   breakdown.
/// - [`LinalgError::NotConverged`] if the refinement budget is exhausted
///   while the residual is still (slowly) improving.
#[must_use = "the solve outcome (including failure) is in the Result"]
pub fn solve_cg_mixed(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    params: &IterativeParams,
) -> Result<IterativeSummary, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(n, b.len()));
    }
    if b.iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite("mixed-precision CG right-hand side"));
    }
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch(n, x0.len()));
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let collecting = telemetry::collecting();
    let _span = telemetry::span("cg.mixed_solve");
    telemetry::counter_add("cg.mixed_solves", 1);

    let shadow = CsrF32::from_csr(a);
    let target = target_residual(b, params);
    // f32 carries ~7 significant digits; pushing the inner solve past
    // that wastes iterations on noise.
    let inner_rtol = 1e-4f32;
    let inner_cap = params.max_iter.max(1);
    // Each converged inner pass gains ~4 digits, so even a 1e-12-tight
    // target needs only a handful of passes; 60 is a generous ceiling.
    let max_refine = 60;

    let mut ax = vec![0.0; n];
    a.matvec_into(&x, &mut ax);
    let mut r = vector::sub(b, &ax);
    let mut rnorm = vector::norm2(&r);
    let mut residual_trace = Vec::new();
    if collecting {
        residual_trace.push(rnorm);
    }
    let mut total_inner = 0usize;
    let mut r32 = vec![0.0f32; n];
    for _pass in 0..max_refine {
        if rnorm <= target {
            telemetry::histogram_record("cg.mixed_iterations", ITER_BOUNDS, total_inner as u64);
            return Ok(IterativeSummary {
                x,
                iterations: total_inner,
                residual: rnorm,
                residual_trace,
            });
        }
        // Scale the residual to O(1) before the f32 cast so corrections
        // stay inside f32's exponent range even near convergence.
        let scale = rnorm;
        for i in 0..n {
            r32[i] = (r[i] / scale) as f32;
        }
        let (d32, inner) = cg_f32(&shadow, &r32, inner_rtol, inner_cap);
        total_inner += inner;
        for i in 0..n {
            x[i] += scale * d32[i] as f64;
        }
        a.matvec_into(&x, &mut ax);
        r = vector::sub(b, &ax);
        let new_norm = vector::norm2(&r);
        if collecting {
            residual_trace.push(new_norm);
        }
        if !new_norm.is_finite() || new_norm >= rnorm {
            // No progress in a full refinement pass: the matrix is
            // (numerically) indefinite or too ill-conditioned for the
            // f32 inner solve.
            return Err(LinalgError::Breakdown("mixed-precision refinement stalled"));
        }
        rnorm = new_norm;
    }
    Err(LinalgError::NotConverged {
        iterations: total_inner,
        residual: rnorm,
    })
}

/// Solves `A·x = b` with preconditioned BiCGSTAB, which tolerates the
/// nonsymmetric matrices produced by the Peltier/leakage diagonal folding.
///
/// # Errors
///
/// - [`LinalgError::DimensionMismatch`] on shape disagreement.
/// - [`LinalgError::NotConverged`] if `max_iter` is exhausted.
/// - [`LinalgError::Breakdown`] on a vanishing `ρ` or `ω` (restart-worthy
///   stagnation; callers usually fall back to a direct solve).
#[must_use = "the solve outcome (including failure) is in the Result"]
pub fn solve_bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    m: &dyn Preconditioner,
    params: &IterativeParams,
) -> Result<IterativeSummary, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(n, b.len()));
    }
    if m.dim() != n {
        return Err(LinalgError::DimensionMismatch(n, m.dim()));
    }
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch(n, x0.len()));
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let collecting = telemetry::collecting();
    let _span = telemetry::span("bicgstab.solve");
    telemetry::counter_add("bicgstab.solves", 1);

    let mut tmp = vec![0.0; n];
    a.matvec_into(&x, &mut tmp);
    let mut r = vector::sub(b, &tmp);
    let target = target_residual(b, params);
    let mut rnorm = vector::norm2(&r);
    let mut residual_trace = Vec::new();
    if collecting {
        residual_trace.push(rnorm);
    }
    if rnorm <= target {
        telemetry::histogram_record("bicgstab.iterations", ITER_BOUNDS, 0);
        return Ok(IterativeSummary {
            x,
            iterations: 0,
            residual: rnorm,
            residual_trace,
        });
    }

    let r_hat = r.clone();
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;
    let mut v = vec![0.0; n];
    let mut p = vec![0.0; n];
    let mut p_hat = vec![0.0; n];
    let mut s_hat = vec![0.0; n];
    let mut t = vec![0.0; n];

    for iter in 1..=params.max_iter {
        let rho_new = vector::dot(&r_hat, &r);
        if rho_new.abs() < f64::MIN_POSITIVE.sqrt() {
            return Err(LinalgError::Breakdown("rho vanished in BiCGSTAB"));
        }
        let beta = (rho_new / rho) * (alpha / omega);
        rho = rho_new;
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        m.apply(&p, &mut p_hat);
        a.matvec_into(&p_hat, &mut v);
        let rhv = vector::dot(&r_hat, &v);
        if rhv.abs() < f64::MIN_POSITIVE.sqrt() {
            return Err(LinalgError::Breakdown("r̂ᵀv vanished in BiCGSTAB"));
        }
        alpha = rho / rhv;
        // s = r - alpha v  (reuse r).
        vector::axpy(-alpha, &v, &mut r);
        rnorm = vector::norm2(&r);
        if collecting {
            residual_trace.push(rnorm);
        }
        if rnorm <= target {
            vector::axpy(alpha, &p_hat, &mut x);
            telemetry::histogram_record("bicgstab.iterations", ITER_BOUNDS, iter as u64);
            return Ok(IterativeSummary {
                x,
                iterations: iter,
                residual: rnorm,
                residual_trace,
            });
        }
        m.apply(&r, &mut s_hat);
        a.matvec_into(&s_hat, &mut t);
        let tt = vector::dot(&t, &t);
        // oftec-lint: allow(L004, exact zero guards the division; only a true zero breaks down)
        if tt == 0.0 {
            return Err(LinalgError::Breakdown("t vanished in BiCGSTAB"));
        }
        omega = vector::dot(&t, &r) / tt;
        if omega.abs() < f64::MIN_POSITIVE.sqrt() {
            return Err(LinalgError::Breakdown("omega vanished in BiCGSTAB"));
        }
        vector::axpy(alpha, &p_hat, &mut x);
        vector::axpy(omega, &s_hat, &mut x);
        // r = s - omega t.
        vector::axpy(-omega, &t, &mut r);
        rnorm = vector::norm2(&r);
        if collecting {
            residual_trace.push(rnorm);
        }
        if rnorm <= target {
            telemetry::histogram_record("bicgstab.iterations", ITER_BOUNDS, iter as u64);
            return Ok(IterativeSummary {
                x,
                iterations: iter,
                residual: rnorm,
                residual_trace,
            });
        }
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: rnorm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{IdentityPreconditioner, Ilu0Preconditioner, JacobiPreconditioner, Triplets};

    fn laplacian_2d(side: usize) -> CsrMatrix {
        let n = side * side;
        let mut t = Triplets::new(n, n);
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let i = idx(r, c);
                t.push(i, i, 4.0 + 0.01); // slightly shifted → SPD even w/ Neumann-ish edges
                if r > 0 {
                    t.push(i, idx(r - 1, c), -1.0);
                }
                if r + 1 < side {
                    t.push(i, idx(r + 1, c), -1.0);
                }
                if c > 0 {
                    t.push(i, idx(r, c - 1), -1.0);
                }
                if c + 1 < side {
                    t.push(i, idx(r, c + 1), -1.0);
                }
            }
        }
        t.to_csr()
    }

    fn check_residual(a: &CsrMatrix, b: &[f64], x: &[f64], tol: f64) {
        let r = vector::sub(&a.matvec(x), b);
        assert!(
            vector::norm2(&r) <= tol * vector::norm2(b).max(1.0),
            "residual too large: {}",
            vector::norm2(&r)
        );
    }

    #[test]
    fn cg_solves_spd_grid() {
        let a = laplacian_2d(10);
        let b = vec![1.0; a.rows()];
        let m = JacobiPreconditioner::new(&a).unwrap();
        let sol = solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        check_residual(&a, &b, &sol.x, 1e-8);
        assert!(sol.iterations > 0);
    }

    #[test]
    fn cg_with_identity_preconditioner() {
        let a = laplacian_2d(6);
        let b = vec![1.0; a.rows()];
        let m = IdentityPreconditioner::new(a.rows());
        let sol = solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        check_residual(&a, &b, &sol.x, 1e-8);
    }

    #[test]
    fn jacobi_preconditioning_reduces_iterations() {
        // Badly scaled SPD diagonal system.
        let n = 50;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 10f64.powi((i % 6) as i32));
            if i > 0 {
                t.push(i, i - 1, -0.1);
                t.push(i - 1, i, -0.1);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let ident = IdentityPreconditioner::new(n);
        let jac = JacobiPreconditioner::new(&a).unwrap();
        let plain = solve_cg(&a, &b, None, &ident, &IterativeParams::default()).unwrap();
        let pre = solve_cg(&a, &b, None, &jac, &IterativeParams::default()).unwrap();
        assert!(
            pre.iterations < plain.iterations,
            "jacobi {} vs plain {}",
            pre.iterations,
            plain.iterations
        );
    }

    #[test]
    fn cg_breaks_down_on_indefinite() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        let m = IdentityPreconditioner::new(2);
        let err = solve_cg(&a, &[1.0, 1.0], None, &m, &IterativeParams::default()).unwrap_err();
        assert!(matches!(err, LinalgError::Breakdown(_)));
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Convection-diffusion-like: diagonally dominant but nonsymmetric.
        let n = 80;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i > 0 {
                t.push(i, i - 1, -1.5);
            }
            if i + 1 < n {
                t.push(i, i + 1, -0.5);
            }
        }
        let a = t.to_csr();
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let m = Ilu0Preconditioner::new(&a).unwrap();
        let sol = solve_bicgstab(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        check_residual(&a, &b, &sol.x, 1e-8);
    }

    #[test]
    fn bicgstab_matches_cg_on_spd() {
        let a = laplacian_2d(8);
        let b = vec![0.5; a.rows()];
        let m = JacobiPreconditioner::new(&a).unwrap();
        let cg = solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        let bi = solve_bicgstab(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        let diff = vector::sub(&cg.x, &bi.x);
        assert!(vector::norm2(&diff) < 1e-6);
    }

    #[test]
    fn warm_start_converges_immediately() {
        let a = laplacian_2d(5);
        let b = vec![1.0; a.rows()];
        let m = JacobiPreconditioner::new(&a).unwrap();
        let sol = solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        let warm = solve_cg(&a, &b, Some(&sol.x), &m, &IterativeParams::default()).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn max_iter_exhaustion_reported() {
        let a = laplacian_2d(10);
        let b = vec![1.0; a.rows()];
        let m = IdentityPreconditioner::new(a.rows());
        let params = IterativeParams {
            max_iter: 2,
            ..Default::default()
        };
        let err = solve_cg(&a, &b, None, &m, &params).unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotConverged { iterations: 2, .. }
        ));
    }

    #[test]
    fn residual_trace_follows_collection_gate() {
        let a = laplacian_2d(6);
        let b = vec![1.0; a.rows()];
        let m = JacobiPreconditioner::new(&a).unwrap();
        oftec_telemetry::set_collecting(true);
        let (sol, buf) = oftec_telemetry::capture(|| {
            solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap()
        });
        // Initial residual + one entry per iteration, monotone at the tail.
        assert_eq!(sol.residual_trace.len(), sol.iterations + 1);
        assert_eq!(*sol.residual_trace.last().unwrap(), sol.residual);
        assert_eq!(buf.counter("cg.solves"), 1);
        let h = buf.histogram("cg.iterations").unwrap();
        assert_eq!(h.total, 1);
        assert_eq!(h.sum, sol.iterations as u64);

        oftec_telemetry::set_collecting(false);
        let quiet = solve_cg(&a, &b, None, &m, &IterativeParams::default()).unwrap();
        assert!(quiet.residual_trace.is_empty());
        oftec_telemetry::set_collecting(true);
    }

    #[test]
    fn mixed_precision_matches_f64_cg_accuracy() {
        let a = laplacian_2d(12);
        let b: Vec<f64> = (0..a.rows())
            .map(|i| 1.0 + (i as f64 * 0.13).sin())
            .collect();
        let params = IterativeParams::default();
        let sol = solve_cg_mixed(&a, &b, None, &params).unwrap();
        check_residual(&a, &b, &sol.x, 1e-9);
        assert!(sol.iterations > 0);
        let m = JacobiPreconditioner::new(&a).unwrap();
        let full = solve_cg(&a, &b, None, &m, &params).unwrap();
        let diff = vector::sub(&full.x, &sol.x);
        assert!(vector::norm2(&diff) < 1e-7, "diff {}", vector::norm2(&diff));
    }

    #[test]
    fn mixed_precision_is_deterministic() {
        let a = laplacian_2d(9);
        let b = vec![0.7; a.rows()];
        let params = IterativeParams::default();
        let s1 = solve_cg_mixed(&a, &b, None, &params).unwrap();
        let s2 = solve_cg_mixed(&a, &b, None, &params).unwrap();
        for (x1, x2) in s1.x.iter().zip(&s2.x) {
            assert_eq!(x1.to_bits(), x2.to_bits());
        }
    }

    #[test]
    fn mixed_precision_warm_start_converges_immediately() {
        let a = laplacian_2d(6);
        let b = vec![1.0; a.rows()];
        let params = IterativeParams::default();
        let sol = solve_cg_mixed(&a, &b, None, &params).unwrap();
        let warm = solve_cg_mixed(&a, &b, Some(&sol.x), &params).unwrap();
        assert_eq!(warm.iterations, 0);
    }

    #[test]
    fn mixed_precision_breaks_down_on_indefinite() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(1, 1, -1.0);
        let a = t.to_csr();
        let err = solve_cg_mixed(&a, &[1.0, 1.0], None, &IterativeParams::default()).unwrap_err();
        assert!(matches!(err, LinalgError::Breakdown(_)));
    }

    #[test]
    fn mixed_precision_rejects_bad_input() {
        let a = laplacian_2d(3);
        let params = IterativeParams::default();
        assert!(matches!(
            solve_cg_mixed(&a, &[1.0; 4], None, &params),
            Err(LinalgError::DimensionMismatch(_, _))
        ));
        let mut b = vec![1.0; a.rows()];
        b[0] = f64::NAN;
        assert!(matches!(
            solve_cg_mixed(&a, &b, None, &params),
            Err(LinalgError::NonFinite(_))
        ));
    }

    #[test]
    fn dimension_mismatches_rejected() {
        let a = laplacian_2d(3);
        let m = IdentityPreconditioner::new(a.rows());
        let bad_b = vec![1.0; 4];
        assert!(matches!(
            solve_cg(&a, &bad_b, None, &m, &IterativeParams::default()),
            Err(LinalgError::DimensionMismatch(_, _))
        ));
        let bad_m = IdentityPreconditioner::new(2);
        let b = vec![1.0; a.rows()];
        assert!(matches!(
            solve_bicgstab(&a, &b, None, &bad_m, &IterativeParams::default()),
            Err(LinalgError::DimensionMismatch(_, _))
        ));
    }
}
