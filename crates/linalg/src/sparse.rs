//! Compressed sparse row (CSR) matrices and a COO triplet builder.

use crate::{LinalgError, Matrix};

/// A coordinate-format (COO) accumulator used to assemble sparse matrices.
///
/// Duplicate `(row, col)` entries are summed when converting to CSR, which
/// matches how finite-volume thermal assembly naturally wants to work: each
/// conductance contributes to four entries, and contributions accumulate.
///
/// # Examples
///
/// ```
/// use oftec_linalg::Triplets;
///
/// let mut t = Triplets::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // accumulates
/// t.push(1, 1, 5.0);
/// let csr = t.to_csr();
/// assert_eq!(csr.get(0, 0), 3.0);
/// assert_eq!(csr.nnz(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Triplets {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl Triplets {
    /// Creates an empty accumulator for a `rows × cols` matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty accumulator with reserved capacity.
    pub fn with_capacity(rows: usize, cols: usize, capacity: usize) -> Self {
        Self {
            rows,
            cols,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Adds `value` at `(row, col)`; duplicates accumulate.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[inline]
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet index out of bounds: ({row}, {col}) in {}×{}",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Number of raw (pre-deduplication) entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Converts to CSR, summing duplicates and dropping explicit zeros that
    /// result from cancellation only if exactly zero.
    pub fn to_csr(&self) -> CsrMatrix {
        // Count entries per row after dedup: first sort a copy.
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|a| (a.0, a.1));

        let mut row_ptr = vec![0usize; self.rows + 1];
        let mut col_idx = Vec::with_capacity(sorted.len());
        let mut values = Vec::with_capacity(sorted.len());

        let mut iter = sorted.into_iter().peekable();
        while let Some((r, c, mut v)) = iter.next() {
            while let Some(&(r2, c2, v2)) = iter.peek() {
                if r2 == r && c2 == c {
                    v += v2;
                    iter.next();
                } else {
                    break;
                }
            }
            col_idx.push(c);
            values.push(v);
            row_ptr[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_ptr[i + 1] += row_ptr[i];
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed-sparse-row matrix of `f64`.
///
/// The format used for the thermal network matrix `G(ω)` (Eq. (18) of the
/// paper): thousands of nodes, ~7 nonzeros per row.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds the `n × n` identity in CSR form.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the entry at `(row, col)`, zero if not stored.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(pos) => self.values[lo + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(col, value)` pairs of one row.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(row < self.rows, "row out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Matrix-vector product `y = A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }

    /// Matrix-vector product into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        assert_eq!(y.len(), self.rows, "output dimension mismatch");
        for i in 0..self.rows {
            let (lo, hi) = (self.row_ptr[i], self.row_ptr[i + 1]);
            let mut sum = 0.0;
            for k in lo..hi {
                sum += self.values[k] * x[self.col_idx[k]];
            }
            y[i] = sum;
        }
    }

    /// Extracts the diagonal (missing entries are zero).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|` over stored entries;
    /// zero for a symmetric matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for rectangular matrices.
    pub fn asymmetry(&self) -> Result<f64, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                worst = worst.max((v - self.get(j, i)).abs());
            }
        }
        Ok(worst)
    }

    /// Reports strict diagonal dominance failure: returns the worst row
    /// margin `|a_ii| − Σ_{j≠i}|a_ij|` (negative ⇒ not diagonally dominant).
    pub fn diagonal_dominance_margin(&self) -> f64 {
        let mut worst = f64::INFINITY;
        for i in 0..self.rows {
            let mut diag = 0.0;
            let mut off = 0.0;
            for (j, v) in self.row_iter(i) {
                if j == i {
                    diag = v.abs();
                } else {
                    off += v.abs();
                }
            }
            worst = worst.min(diag - off);
        }
        worst
    }

    /// Densifies into a [`Matrix`] (for tests and small reference solves).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_iter(i) {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Returns a copy with `delta[i]` added to each diagonal entry `(i, i)`.
    /// Diagonal entries must already be present in the sparsity pattern
    /// (always true for assembled thermal networks).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for rectangular matrices.
    /// - [`LinalgError::DimensionMismatch`] if `delta.len() != rows`.
    /// - [`LinalgError::Breakdown`] if some diagonal entry is absent from
    ///   the pattern.
    pub fn with_diagonal_shift(&self, delta: &[f64]) -> Result<CsrMatrix, LinalgError> {
        if self.rows != self.cols {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        if delta.len() != self.rows {
            return Err(LinalgError::DimensionMismatch(self.rows, delta.len()));
        }
        let mut out = self.clone();
        for i in 0..self.rows {
            let (lo, hi) = (out.row_ptr[i], out.row_ptr[i + 1]);
            match out.col_idx[lo..hi].binary_search(&i) {
                Ok(pos) => out.values[lo + pos] += delta[i],
                Err(_) => {
                    return Err(LinalgError::Breakdown(
                        "diagonal entry missing from sparsity pattern",
                    ))
                }
            }
        }
        Ok(out)
    }

    /// Internal accessor for the raw CSR arrays (row pointer, column
    /// indices, values) — used by preconditioners.
    pub(crate) fn raw(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// The stored values, in CSR order (row-major, columns ascending).
    ///
    /// Positions returned by [`CsrMatrix::entry_index`] index into this
    /// slice.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Mutable access to the stored values.
    ///
    /// The sparsity pattern is fixed; this only rewrites the numeric
    /// entries. Together with [`CsrMatrix::entry_index`] it supports
    /// skeleton-style assembly: build the pattern once, then fold each
    /// operating point into a scratch copy in place.
    #[inline]
    pub fn values_mut(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Position of the stored entry `(row, col)` in [`CsrMatrix::values`],
    /// or `None` if the entry is not part of the sparsity pattern.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn entry_index(&self, row: usize, col: usize) -> Option<usize> {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        self.col_idx[lo..hi]
            .binary_search(&col)
            .ok()
            .map(|pos| lo + pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 2 -1  0 ]
        // [-1  2 -1 ]
        // [ 0 -1  2 ]
        let mut t = Triplets::new(3, 3);
        for i in 0..3usize {
            t.push(i, i, 2.0);
        }
        for i in 0..2usize {
            t.push(i, i + 1, -1.0);
            t.push(i + 1, i, -1.0);
        }
        t.to_csr()
    }

    #[test]
    fn assembly_accumulates_duplicates() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 0, 0.5);
        t.push(1, 0, -1.0);
        assert_eq!(t.len(), 3);
        let m = t.to_csr();
        assert_eq!(m.nnz(), 2);
        assert_eq!(m.get(0, 0), 1.5);
        assert_eq!(m.get(1, 0), -1.0);
        assert_eq!(m.get(1, 1), 0.0);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.matvec(&x);
        assert_eq!(y, m.to_dense().matvec(&x));
        assert_eq!(y, vec![0.0, 0.0, 4.0]);
    }

    #[test]
    fn matvec_into_reuses_buffer() {
        let m = sample();
        let mut y = vec![9.0; 3];
        m.matvec_into(&[1.0, 0.0, 0.0], &mut y);
        assert_eq!(y, vec![2.0, -1.0, 0.0]);
    }

    #[test]
    fn diagonal_and_dominance() {
        let m = sample();
        assert_eq!(m.diagonal(), vec![2.0, 2.0, 2.0]);
        // Middle row margin: 2 - 2 = 0 (weakly dominant).
        assert_eq!(m.diagonal_dominance_margin(), 0.0);
    }

    #[test]
    fn symmetry_check() {
        assert_eq!(sample().asymmetry().unwrap(), 0.0);
        let mut t = Triplets::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 0.25);
        t.push(0, 0, 1.0);
        t.push(1, 1, 1.0);
        assert_eq!(t.to_csr().asymmetry().unwrap(), 0.75);
    }

    #[test]
    fn diagonal_shift() {
        let m = sample();
        let shifted = m.with_diagonal_shift(&[1.0, -0.5, 0.0]).unwrap();
        assert_eq!(shifted.get(0, 0), 3.0);
        assert_eq!(shifted.get(1, 1), 1.5);
        assert_eq!(shifted.get(2, 2), 2.0);
        assert_eq!(shifted.get(0, 1), -1.0);
        // Wrong length rejected.
        assert!(m.with_diagonal_shift(&[0.0]).is_err());
    }

    #[test]
    fn identity_matvec() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn empty_rows_are_fine() {
        let mut t = Triplets::new(3, 3);
        t.push(0, 0, 1.0);
        t.push(2, 2, 1.0);
        let m = t.to_csr();
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 0.0, 1.0]);
        assert_eq!(m.row_iter(1).count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_push_panics() {
        let mut t = Triplets::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn entry_index_addresses_values() {
        let m = sample();
        for i in 0..3 {
            let k = m.entry_index(i, i).unwrap();
            assert_eq!(m.values()[k], 2.0);
        }
        assert_eq!(m.entry_index(0, 2), None);
        // In-place edit through the index changes what `get` sees.
        let mut m = m;
        let k = m.entry_index(1, 1).unwrap();
        m.values_mut()[k] = 7.5;
        assert_eq!(m.get(1, 1), 7.5);
    }
}
