//! Dense row-major matrices and raw vector kernels.

use crate::LinalgError;

/// A dense, row-major, heap-allocated matrix of `f64`.
///
/// Sized for the small dense systems in this workspace: QP subproblems of
/// the SQP solver (a handful of variables/constraints) and reference solves
/// used to validate the sparse path. For the large thermal networks use
/// [`crate::CsrMatrix`].
///
/// # Examples
///
/// ```
/// use oftec_linalg::Matrix;
///
/// let mut a = Matrix::zeros(2, 2);
/// a[(0, 0)] = 2.0;
/// a[(1, 1)] = 3.0;
/// let y = a.matvec(&[1.0, 1.0]);
/// assert_eq!(y, vec![2.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Creates a diagonal matrix from the given entries.
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let mut m = Self::zeros(diag.len(), diag.len());
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns `true` if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index out of bounds");
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index out of bounds");
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// The flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Matrix-vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "matvec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        for i in 0..self.rows {
            y[i] = vector::dot(self.row(i), x);
        }
        y
    }

    /// Transposed matrix-vector product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.rows()`.
    pub fn matvec_transpose(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows, "matvec_transpose dimension mismatch");
        let mut y = vec![0.0; self.cols];
        for i in 0..self.rows {
            let xi = x[i];
            for (j, &a) in self.row(i).iter().enumerate() {
                y[j] += a * xi;
            }
        }
        y
    }

    /// Matrix product `A·B`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != b.rows()`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, b.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // oftec-lint: allow(L004, exact zero skips a structurally zero entry in elimination)
                if aik == 0.0 {
                    continue;
                }
                for j in 0..b.cols {
                    out[(i, j)] += aik * b[(k, j)];
                }
            }
        }
        out
    }

    /// Returns the transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Maximum absolute asymmetry `max |A_ij − A_ji|`; zero for symmetric
    /// matrices. Returns an error for non-square matrices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if the matrix is not square.
    pub fn asymmetry(&self) -> Result<f64, LinalgError> {
        if !self.is_square() {
            return Err(LinalgError::NotSquare(self.rows, self.cols));
        }
        let mut worst: f64 = 0.0;
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                worst = worst.max((self[(i, j)] - self[(j, i)]).abs());
            }
        }
        Ok(worst)
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Adds `alpha * B` in place.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn axpy(&mut self, alpha: f64, b: &Matrix) {
        assert_eq!(
            (self.rows, self.cols),
            (b.rows, b.cols),
            "axpy shape mismatch"
        );
        for (s, &v) in self.data.iter_mut().zip(&b.data) {
            *s += alpha * v;
        }
    }

    /// Scales every entry in place.
    pub fn scale(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl core::fmt::Display for Matrix {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

/// Kernels over raw `&[f64]` vectors, used by every solver in the crate.
pub mod vector {
    /// Dot product `xᵀy`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn dot(x: &[f64], y: &[f64]) -> f64 {
        assert_eq!(x.len(), y.len(), "dot length mismatch");
        x.iter().zip(y).map(|(a, b)| a * b).sum()
    }

    /// Euclidean norm `‖x‖₂`.
    #[inline]
    pub fn norm2(x: &[f64]) -> f64 {
        dot(x, x).sqrt()
    }

    /// Infinity norm `max|xᵢ|`.
    #[inline]
    pub fn norm_inf(x: &[f64]) -> f64 {
        x.iter().fold(0.0_f64, |m, v| m.max(v.abs()))
    }

    /// `y ← y + alpha·x`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), y.len(), "axpy length mismatch");
        for (yi, &xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    /// Elementwise difference `x − y`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), y.len(), "sub length mismatch");
        x.iter().zip(y).map(|(a, b)| a - b).collect()
    }

    /// Elementwise sum `x + y`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    #[inline]
    pub fn add(x: &[f64], y: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), y.len(), "add length mismatch");
        x.iter().zip(y).map(|(a, b)| a + b).collect()
    }

    /// Scaled copy `alpha·x`.
    #[inline]
    pub fn scaled(alpha: f64, x: &[f64]) -> Vec<f64> {
        x.iter().map(|v| alpha * v).collect()
    }

    /// Largest entry (not absolute value); `-inf` for an empty slice.
    #[inline]
    pub fn max(x: &[f64]) -> f64 {
        x.iter().fold(f64::NEG_INFINITY, |m, &v| m.max(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(0), &[1.0, 2.0]);
        assert!(m.is_square());
    }

    #[test]
    fn identity_matvec_is_noop() {
        let i = Matrix::identity(3);
        let x = [1.0, -2.0, 3.5];
        assert_eq!(i.matvec(&x), x.to_vec());
    }

    #[test]
    fn matvec_and_transpose_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, 1.0, 1.0];
        assert_eq!(a.matvec(&x), vec![6.0, 15.0]);
        let y = [1.0, 1.0];
        assert_eq!(a.matvec_transpose(&y), vec![5.0, 7.0, 9.0]);
        assert_eq!(a.transpose().matvec(&y), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn matmul_against_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn asymmetry_detects_nonsymmetric() {
        let sym = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        assert_eq!(sym.asymmetry().unwrap(), 0.0);
        let asym = Matrix::from_rows(&[&[2.0, 1.0], &[0.5, 2.0]]);
        assert_eq!(asym.asymmetry().unwrap(), 0.5);
        let rect = Matrix::zeros(2, 3);
        assert_eq!(rect.asymmetry(), Err(LinalgError::NotSquare(2, 3)));
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Matrix::identity(2);
        let b = Matrix::identity(2);
        a.axpy(2.0, &b);
        a.scale(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        assert_eq!(a[(0, 1)], 0.0);
    }

    #[test]
    fn diagonal_constructor() {
        let d = Matrix::from_diagonal(&[1.0, 2.0, 3.0]);
        assert_eq!(d.matvec(&[1.0, 1.0, 1.0]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn frobenius() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(a.frobenius_norm(), 5.0);
    }

    #[test]
    fn vector_kernels() {
        assert_eq!(vector::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(vector::norm2(&[3.0, 4.0]), 5.0);
        assert_eq!(vector::norm_inf(&[-7.0, 3.0]), 7.0);
        let mut y = vec![1.0, 1.0];
        vector::axpy(2.0, &[1.0, 2.0], &mut y);
        assert_eq!(y, vec![3.0, 5.0]);
        assert_eq!(vector::sub(&[3.0, 3.0], &[1.0, 2.0]), vec![2.0, 1.0]);
        assert_eq!(vector::add(&[1.0, 2.0], &[1.0, 1.0]), vec![2.0, 3.0]);
        assert_eq!(vector::scaled(2.0, &[1.0, 2.0]), vec![2.0, 4.0]);
        assert_eq!(vector::max(&[1.0, 5.0, 2.0]), 5.0);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn ragged_rows_panic() {
        let _ = Matrix::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }
}
