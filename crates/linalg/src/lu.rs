//! LU factorization with partial pivoting for general square systems.

use crate::{LinalgError, Matrix};

/// An LU factorization `P·A = L·U` with partial (row) pivoting.
///
/// This is the workhorse for the thermal network's dense reference solves
/// and for every small dense system inside the optimizer. It handles the
/// nonsymmetric matrices produced by folding the Peltier feedback terms
/// into the conductance matrix.
///
/// # Examples
///
/// ```
/// use oftec_linalg::{LuFactor, Matrix};
///
/// let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]); // needs pivoting
/// let lu = LuFactor::new(&a)?;
/// let x = lu.solve(&[2.0, 2.0])?;
/// assert!((x[0] - 1.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
/// # Ok::<(), oftec_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LuFactor {
    /// Combined L (strict lower, unit diagonal implied) and U (upper) in one
    /// buffer.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row stored at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const SINGULARITY_RTOL: f64 = 1e-13;

impl LuFactor {
    /// Factors the matrix.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::Singular`] if a pivot falls below the singularity
    ///   threshold relative to the matrix magnitude.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare(a.rows(), a.cols()));
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        // Scale reference for the singularity test.
        let scale = a
            .as_slice()
            .iter()
            .fold(0.0_f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Find pivot row.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if !pivot_val.is_finite() || pivot_val < SINGULARITY_RTOL * scale {
                return Err(LinalgError::Singular(k));
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                // oftec-lint: allow(L004, exact zero skips update work for a structurally zero factor)
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Self {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(n, b.len()));
        }
        // Apply permutation: y = P·b.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit-diagonal L.
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A·X = B` column by column, returning `X` with the same shape
    /// as `B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != self.dim()`.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve_matrix(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch(n, b.rows()));
        }
        let mut out = Matrix::zeros(n, b.cols());
        let mut col = vec![0.0; n];
        for j in 0..b.cols() {
            for i in 0..n {
                col[i] = b[(i, j)];
            }
            let x = self.solve(&col)?;
            for i in 0..n {
                out[(i, j)] = x[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factored matrix (product of U's diagonal times the
    /// permutation sign).
    pub fn determinant(&self) -> f64 {
        let n = self.dim();
        let mut det = self.perm_sign;
        for i in 0..n {
            det *= self.lu[(i, i)];
        }
        det
    }

    /// Inverse of the factored matrix.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (cannot occur for a successfully factored
    /// matrix of matching dimension).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_matrix(&Matrix::identity(self.dim()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn solves_known_system() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = LuFactor::new(&a).unwrap().solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = LuFactor::new(&a).unwrap().solve(&[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(LuFactor::new(&a), Err(LinalgError::Singular(_))));
    }

    #[test]
    fn not_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(LuFactor::new(&a).unwrap_err(), LinalgError::NotSquare(2, 3));
    }

    #[test]
    fn determinant_with_permutation_sign() {
        // Swapping rows of the identity gives det = -1.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let det = LuFactor::new(&a).unwrap().determinant();
        assert!((det + 1.0).abs() < 1e-12);

        let b = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((LuFactor::new(&b).unwrap().determinant() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = LuFactor::new(&a).unwrap().inverse().unwrap();
        let prod = a.matmul(&inv);
        for i in 0..2 {
            for j in 0..2 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn residual_small_for_moderate_system() {
        // Deterministic pseudo-random diagonally dominant system.
        let n = 30;
        let mut a = Matrix::zeros(n, n);
        let mut state = 0x9e3779b97f4a7c15_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let mut b = vec![0.0; n];
        for i in 0..n {
            let mut rowsum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = next();
                    a[(i, j)] = v;
                    rowsum += v.abs();
                }
            }
            a[(i, i)] = rowsum + 1.0;
            b[i] = next();
        }
        let x = LuFactor::new(&a).unwrap().solve(&b).unwrap();
        let r = vector::sub(&a.matvec(&x), &b);
        assert!(vector::norm2(&r) < 1e-10);
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = Matrix::identity(3);
        let lu = LuFactor::new(&a).unwrap();
        assert_eq!(
            lu.solve(&[1.0, 2.0]).unwrap_err(),
            LinalgError::DimensionMismatch(3, 2)
        );
    }
}
