//! Sliced-ELLPACK (SELL-C) storage for read-only SpMV hot loops.
//!
//! CSR's row-pointer indirection makes its matvec kernel walk three
//! arrays with data-dependent bounds per row. For matrices that are
//! assembled once and then multiplied thousands of times — the reduced-
//! order model's residual check, basis projections — a blocked layout
//! pays: rows are grouped into chunks of [`SellMatrix::CHUNK`] lanes and
//! each chunk stores its entries column-major (entry slot × lane), so
//! the inner loop streams contiguously and the per-row bookkeeping is a
//! single length array.
//!
//! Determinism contract: [`SellMatrix::matvec_into`] accumulates each
//! row's products in exactly the CSR entry order (ascending column), so
//! its results are bit-identical to [`CsrMatrix::matvec_into`] on the
//! matrix it was built from — padding slots are never touched, not even
//! as `+ 0.0` terms, which would rewrite `-0.0` sums.

use crate::CsrMatrix;

/// A sparse matrix in SELL-C layout (chunked rows, column-major slots),
/// built from a [`CsrMatrix`] and read-only thereafter.
#[derive(Debug, Clone)]
pub struct SellMatrix {
    rows: usize,
    cols: usize,
    /// Entries per row, in row order.
    row_len: Vec<usize>,
    /// Start of each chunk's slot storage in `vals`/`col_idx`
    /// (`chunks + 1` entries).
    chunk_ptr: Vec<usize>,
    /// Column indices, chunk-local column-major: slot `e` of lane `l` in
    /// chunk `c` lives at `chunk_ptr[c] + e * CHUNK + l`.
    col_idx: Vec<u32>,
    /// Values, same layout as `col_idx`.
    vals: Vec<f64>,
}

impl SellMatrix {
    /// Rows per chunk. Eight lanes of `f64` fill a cache line pair and
    /// match the widest vector registers in common use.
    pub const CHUNK: usize = 8;

    /// Converts a CSR matrix. Entry order within each row is preserved
    /// (ascending column, as CSR stores it).
    pub fn from_csr(csr: &CsrMatrix) -> Self {
        let rows = csr.rows();
        let chunk = Self::CHUNK;
        let n_chunks = rows.div_ceil(chunk);
        let row_len: Vec<usize> = (0..rows).map(|r| csr.row_iter(r).count()).collect();
        let mut chunk_ptr = Vec::with_capacity(n_chunks + 1);
        let mut total = 0usize;
        chunk_ptr.push(total);
        for c in 0..n_chunks {
            let start = c * chunk;
            let end = (start + chunk).min(rows);
            let width = row_len[start..end].iter().copied().max().unwrap_or(0);
            total += width * chunk;
            chunk_ptr.push(total);
        }
        // Padding slots keep column 0 / value 0.0 but are skipped by the
        // kernel via `row_len`; the concrete contents never matter.
        let mut col_idx = vec![0u32; total];
        let mut vals = vec![0.0f64; total];
        for r in 0..rows {
            let c = r / chunk;
            let lane = r % chunk;
            let base = chunk_ptr[c];
            for (e, (col, v)) in csr.row_iter(r).enumerate() {
                let slot = base + e * chunk + lane;
                // oftec-lint: allow(L012, SELL-C-sigma stores u32 column indices by format; col < cols <= u32::MAX is checked at construction)
                col_idx[slot] = col as u32;
                vals[slot] = v;
            }
        }
        Self {
            rows,
            cols: csr.cols(),
            row_len,
            chunk_ptr,
            col_idx,
            vals,
        }
    }

    /// Row count.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Stored (non-padding) entry count.
    pub fn nnz(&self) -> usize {
        self.row_len.iter().sum()
    }

    /// `y = A·x`, bit-identical to the source CSR matrix's
    /// [`CsrMatrix::matvec_into`].
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn matvec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "x length must match matrix columns");
        assert_eq!(y.len(), self.rows, "y length must match matrix rows");
        let chunk = Self::CHUNK;
        for c in 0..self.chunk_ptr.len() - 1 {
            let base = self.chunk_ptr[c];
            let start = c * chunk;
            let end = (start + chunk).min(self.rows);
            for r in start..end {
                let lane = r - start;
                let len = self.row_len[r];
                let mut acc = 0.0;
                for e in 0..len {
                    let slot = base + e * chunk + lane;
                    acc += self.vals[slot] * x[self.col_idx[slot] as usize];
                }
                y[r] = acc;
            }
        }
    }

    /// Convenience allocating form of [`SellMatrix::matvec_into`].
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_into(x, &mut y);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn dense_to_csr(rows: usize, cols: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
        let mut t = Triplets::new(rows, cols);
        for &(r, c, v) in entries {
            t.push(r, c, v);
        }
        t.to_csr()
    }

    #[test]
    fn matvec_matches_csr_bitwise() {
        // 19 rows: two full chunks + a ragged tail, with wildly varying
        // row lengths (including empty rows).
        let mut entries = Vec::new();
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rnd = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        for r in 0..19usize {
            let len = (r * 7) % 5; // 0..=4 entries per row
            for e in 0..len {
                let c = (r * 3 + e * 5) % 17;
                entries.push((r, c, rnd() * 2.0 - 1.0));
            }
        }
        let csr = dense_to_csr(19, 17, &entries);
        let sell = SellMatrix::from_csr(&csr);
        assert_eq!(sell.nnz(), csr.nnz());
        let x: Vec<f64> = (0..17).map(|i| rnd() * 10.0 - 5.0 + i as f64).collect();
        let mut y_csr = vec![0.0; 19];
        csr.matvec_into(&x, &mut y_csr);
        let y_sell = sell.matvec(&x);
        for (a, b) in y_csr.iter().zip(&y_sell) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "SELL matvec must match CSR bitwise"
            );
        }
    }

    #[test]
    fn empty_rows_produce_exact_zero() {
        let csr = dense_to_csr(9, 9, &[(0, 0, 2.0), (8, 8, 3.0)]);
        let sell = SellMatrix::from_csr(&csr);
        let y = sell.matvec(&[1.0; 9]);
        assert_eq!(y[0], 2.0);
        assert_eq!(y[8], 3.0);
        for &v in &y[1..8] {
            assert_eq!(v.to_bits(), 0.0f64.to_bits());
        }
    }
}
