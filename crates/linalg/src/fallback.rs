//! Graceful-degradation chain for small dense systems.
//!
//! The QP subproblems and BFGS trust-region steps inside the optimizer are
//! tiny (a handful of rows) but must never take the whole solve down: a
//! failed factorization should degrade to a slower method, not abort the
//! operating-point search. [`solve_dense_chain`] tries direct Cholesky
//! (when the matrix is near-symmetric), then LU with partial pivoting, then
//! a diagonally preconditioned BiCGSTAB sweep, verifying each candidate
//! solution against the residual before accepting it. Every degradation is
//! counted (`linalg.dense.fallbacks`) and WARN-logged through the
//! telemetry registry, mirroring the ILU(0) → Jacobi preconditioner
//! fallback in the thermal solver.

use oftec_telemetry as telemetry;
use oftec_telemetry::{Field, Severity};

use crate::{
    solve_bicgstab, vector, CholeskyFactor, IterativeParams, JacobiPreconditioner, LinalgError,
    LuFactor, Matrix, Triplets,
};

/// Which rung of the dense fallback chain produced the accepted solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseMethod {
    /// Direct LLᵀ factorization (matrix was near-symmetric and SPD).
    Cholesky,
    /// LU with partial pivoting.
    Lu,
    /// Diagonally preconditioned BiCGSTAB.
    Iterative,
}

impl DenseMethod {
    /// Short stable name for telemetry fields.
    pub fn name(self) -> &'static str {
        match self {
            Self::Cholesky => "cholesky",
            Self::Lu => "lu",
            Self::Iterative => "bicgstab",
        }
    }
}

/// A verified solution from [`solve_dense_chain`].
#[derive(Debug, Clone, PartialEq)]
pub struct DenseSolve {
    /// The solution vector.
    pub x: Vec<f64>,
    /// The method that produced it.
    pub method: DenseMethod,
    /// Relative residual `‖Ax − b‖ / max(‖b‖, 1)` of the accepted solution.
    pub relative_residual: f64,
}

/// Asymmetry threshold below which the Cholesky rung is attempted. The
/// factorization only reads the lower triangle, so on a meaningfully
/// asymmetric matrix it can "succeed" with the wrong answer — skip it.
const SYMMETRY_TOL: f64 = 1e-10;

/// Relative residual at which a candidate solution is accepted.
const RESIDUAL_TOL: f64 = 1e-8;

/// Relative residual of a verified, accepted candidate; `None` if the
/// candidate contains non-finite entries or misses the tolerance.
fn verify(a: &Matrix, b: &[f64], x: &[f64], bnorm: f64) -> Option<f64> {
    if !x.iter().all(|v| v.is_finite()) {
        return None;
    }
    let r = vector::sub(b, &a.matvec(x));
    let rel = vector::norm2(&r) / bnorm.max(1.0);
    (rel <= RESIDUAL_TOL).then_some(rel)
}

fn warn_fallback(from: DenseMethod, to: DenseMethod, reason: &LinalgError) {
    telemetry::counter_add("linalg.dense.fallbacks", 1);
    telemetry::event(
        Severity::Warn,
        "linalg.dense.fallback",
        &[
            ("from", Field::Str(from.name())),
            ("to", Field::Str(to.name())),
            ("reason", Field::Str(&reason.to_string())),
        ],
    );
}

/// Solves the dense square system `A x = b` through the degradation chain
/// Cholesky → LU → preconditioned BiCGSTAB, residual-verifying each rung.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on
///   shape violations.
/// - [`LinalgError::NonFinite`] if `A` or `b` contains NaN/inf (no method
///   can recover a poisoned system, so the chain is not attempted).
/// - The *last* rung's error if every method fails or produces a solution
///   that does not satisfy the residual check.
#[must_use = "the solve outcome (including failure) is in the Result"]
pub fn solve_dense_chain(a: &Matrix, b: &[f64]) -> Result<DenseSolve, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(n, b.len()));
    }
    if !a.as_slice().iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFinite("dense system matrix"));
    }
    if !b.iter().all(|v| v.is_finite()) {
        return Err(LinalgError::NonFinite("dense right-hand side"));
    }
    let bnorm = vector::norm2(b);
    telemetry::counter_add("linalg.dense.solves", 1);

    // Rung 1: Cholesky, only when the matrix is symmetric enough that
    // reading one triangle is sound.
    let scale = a.frobenius_norm().max(1.0);
    let near_symmetric = a
        .asymmetry()
        .map(|asym| asym <= SYMMETRY_TOL * scale)
        .unwrap_or(false);
    let mut last_err = if near_symmetric {
        match CholeskyFactor::new(a).and_then(|c| c.solve(b)) {
            Ok(x) => {
                if let Some(rel) = verify(a, b, &x, bnorm) {
                    return Ok(DenseSolve {
                        x,
                        method: DenseMethod::Cholesky,
                        relative_residual: rel,
                    });
                }
                LinalgError::NonFinite("cholesky solution failed residual check")
            }
            Err(e) => e,
        }
    } else {
        // Not an error per se, but recorded as the degradation reason.
        LinalgError::Breakdown("matrix not symmetric; cholesky skipped")
    };
    if near_symmetric {
        warn_fallback(DenseMethod::Cholesky, DenseMethod::Lu, &last_err);
    }

    // Rung 2: LU with partial pivoting.
    match LuFactor::new(a).and_then(|lu| lu.solve(b)) {
        Ok(x) => {
            if let Some(rel) = verify(a, b, &x, bnorm) {
                return Ok(DenseSolve {
                    x,
                    method: DenseMethod::Lu,
                    relative_residual: rel,
                });
            }
            last_err = LinalgError::NonFinite("lu solution failed residual check");
        }
        Err(e) => last_err = e,
    }
    warn_fallback(DenseMethod::Lu, DenseMethod::Iterative, &last_err);

    // Rung 3: diagonally preconditioned BiCGSTAB on a CSR copy.
    let mut triplets = Triplets::with_capacity(n, n, n * n);
    for i in 0..n {
        for j in 0..n {
            let v = a[(i, j)];
            // oftec-lint: allow(L004, exact zero prunes structural zeros when densifying to CSR)
            if v != 0.0 {
                triplets.push(i, j, v);
            }
        }
    }
    let csr = triplets.to_csr();
    let precond = match JacobiPreconditioner::new(&csr) {
        Ok(p) => p,
        // A length-n vector of ones always has a valid reciprocal, so
        // the fallback cannot fail; if it somehow does, the error
        // propagates as a typed breakdown instead of a panic.
        Err(_) => JacobiPreconditioner::from_diagonal(&vec![1.0; n])?,
    };
    let params = IterativeParams {
        rtol: 1e-12,
        atol: 1e-14,
        max_iter: 50 * n.max(4),
    };
    match solve_bicgstab(&csr, b, None, &precond, &params) {
        Ok(summary) => {
            if let Some(rel) = verify(a, b, &summary.x, bnorm) {
                Ok(DenseSolve {
                    x: summary.x,
                    method: DenseMethod::Iterative,
                    relative_residual: rel,
                })
            } else {
                Err(LinalgError::NonFinite(
                    "iterative solution failed residual check",
                ))
            }
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spd_system_uses_cholesky() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let sol = solve_dense_chain(&a, &[1.0, 2.0]).unwrap();
        assert_eq!(sol.method, DenseMethod::Cholesky);
        assert!((4.0 * sol.x[0] + sol.x[1] - 1.0).abs() < 1e-10);
        assert!(sol.relative_residual < 1e-10);
    }

    #[test]
    fn indefinite_symmetric_system_falls_back_to_lu() {
        // Symmetric but indefinite: Cholesky must fail, LU must recover.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let sol = solve_dense_chain(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(sol.method, DenseMethod::Lu);
        assert!((sol.x[0] - 3.0).abs() < 1e-12 && (sol.x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn asymmetric_system_skips_cholesky() {
        // A matrix whose lower triangle alone looks SPD; a naive Cholesky
        // read would silently produce the wrong answer.
        let a = Matrix::from_rows(&[&[4.0, -2.0], &[1.0, 3.0]]);
        let sol = solve_dense_chain(&a, &[1.0, 1.0]).unwrap();
        assert_eq!(sol.method, DenseMethod::Lu);
        let r = vector::sub(&[1.0, 1.0], &a.matvec(&sol.x));
        assert!(vector::norm2(&r) < 1e-10);
    }

    #[test]
    fn singular_system_errors_through_all_rungs() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = solve_dense_chain(&a, &[1.0, 1.0]).unwrap_err();
        // Inconsistent singular system: no rung can pass the residual gate.
        assert!(!matches!(
            err,
            LinalgError::NonFinite("dense system matrix")
        ));
    }

    #[test]
    fn non_finite_inputs_rejected_up_front() {
        let a = Matrix::from_rows(&[&[f64::NAN, 0.0], &[0.0, 1.0]]);
        assert_eq!(
            solve_dense_chain(&a, &[1.0, 1.0]).unwrap_err(),
            LinalgError::NonFinite("dense system matrix")
        );
        let good = Matrix::identity(2);
        assert_eq!(
            solve_dense_chain(&good, &[f64::INFINITY, 0.0]).unwrap_err(),
            LinalgError::NonFinite("dense right-hand side")
        );
    }

    #[test]
    fn fallback_emits_telemetry_counter() {
        oftec_telemetry::set_collecting(true);
        let (_, buf) = oftec_telemetry::capture(|| {
            let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
            solve_dense_chain(&a, &[2.0, 3.0]).unwrap();
        });
        oftec_telemetry::set_collecting(false);
        assert!(buf.counter("linalg.dense.fallbacks") >= 1);
    }
}
