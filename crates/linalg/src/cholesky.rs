//! Cholesky (LLᵀ) factorization for symmetric positive-definite systems.

use crate::{LinalgError, Matrix};

/// A lower-triangular Cholesky factor `A = L·Lᵀ` of a symmetric
/// positive-definite matrix.
///
/// Besides being ~2× cheaper than LU for SPD systems, the factorization is
/// the thermal simulator's *positive-definiteness oracle*: when leakage and
/// Peltier feedback are folded into a symmetric conductance matrix, loss of
/// positive definiteness is exactly the thermal-runaway condition, surfaced
/// here as [`LinalgError::NotPositiveDefinite`].
///
/// # Examples
///
/// ```
/// use oftec_linalg::{CholeskyFactor, Matrix};
///
/// let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
/// let chol = CholeskyFactor::new(&a)?;
/// let x = chol.solve(&[8.0, 7.0])?;
/// assert!((x[0] - 1.25).abs() < 1e-12 && (x[1] - 1.5).abs() < 1e-12);
/// # Ok::<(), oftec_linalg::LinalgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CholeskyFactor {
    /// Lower-triangular factor, stored densely (upper part zero).
    l: Matrix,
}

impl CholeskyFactor {
    /// Factors the matrix. Only the lower triangle of `a` is read, so the
    /// caller may pass a matrix whose upper triangle is stale.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] if `a` is not square.
    /// - [`LinalgError::NotPositiveDefinite`] if a non-positive pivot
    ///   appears — i.e. `a` (or its symmetrization) is not SPD.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare(a.rows(), a.cols()));
        }
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= 0.0 || !diag.is_finite() {
                return Err(LinalgError::NotPositiveDefinite(j));
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = sum / ljj;
            }
        }
        Ok(Self { l })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[inline]
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A·x = b` via two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != self.dim()`.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch(n, b.len()));
        }
        let mut x = b.to_vec();
        // L·y = b.
        for i in 0..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Lᵀ·x = y.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of `A` (square of the product of L's diagonal).
    pub fn determinant(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            d *= self.l[(i, i)];
        }
        d * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    #[test]
    fn solves_spd_system() {
        let a = Matrix::from_rows(&[&[6.0, 2.0, 1.0], &[2.0, 5.0, 2.0], &[1.0, 2.0, 4.0]]);
        let chol = CholeskyFactor::new(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let r = vector::sub(&a.matvec(&x), &b);
        assert!(vector::norm2(&r) < 1e-12);
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let chol = CholeskyFactor::new(&a).unwrap();
        let l = chol.factor();
        let llt = l.matmul(&l.transpose());
        for i in 0..2 {
            for j in 0..2 {
                assert!((llt[(i, j)] - a[(i, j)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn indefinite_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(matches!(
            CholeskyFactor::new(&a),
            Err(LinalgError::NotPositiveDefinite(_))
        ));
    }

    #[test]
    fn negative_definite_detected_at_row_zero() {
        let a = Matrix::from_rows(&[&[-1.0, 0.0], &[0.0, -1.0]]);
        assert_eq!(
            CholeskyFactor::new(&a).unwrap_err(),
            LinalgError::NotPositiveDefinite(0)
        );
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let chol = CholeskyFactor::new(&a).unwrap();
        assert!((chol.determinant() - 36.0).abs() < 1e-12);
    }

    #[test]
    fn only_lower_triangle_is_read() {
        // Upper triangle deliberately garbage.
        let a = Matrix::from_rows(&[&[4.0, 999.0], &[2.0, 3.0]]);
        let sym = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let x1 = CholeskyFactor::new(&a).unwrap().solve(&[1.0, 1.0]).unwrap();
        let x2 = CholeskyFactor::new(&sym)
            .unwrap()
            .solve(&[1.0, 1.0])
            .unwrap();
        assert_eq!(x1, x2);
    }

    #[test]
    fn dimension_errors() {
        assert_eq!(
            CholeskyFactor::new(&Matrix::zeros(2, 3)).unwrap_err(),
            LinalgError::NotSquare(2, 3)
        );
        let chol = CholeskyFactor::new(&Matrix::identity(2)).unwrap();
        assert_eq!(
            chol.solve(&[1.0]).unwrap_err(),
            LinalgError::DimensionMismatch(2, 1)
        );
    }
}
