//! Eigenvalue extremes of symmetric sparse matrices, via power and
//! inverse-power iteration.
//!
//! The thermal simulator uses [`smallest_eigenvalue`] as a *stability
//! margin*: the folded network matrix is symmetric, and its smallest
//! eigenvalue measures how far the operating point sits from the
//! thermal-runaway boundary (λ_min → 0 as leakage feedback eats the
//! package's conductance).

use crate::{
    solve_cg, vector, CsrMatrix, IterativeParams, JacobiPreconditioner, LinalgError, Matrix,
};

/// Controls for the eigen iterations.
#[derive(Debug, Clone, Copy)]
pub struct EigenParams {
    /// Relative change in the eigenvalue estimate at which to stop.
    pub rtol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for EigenParams {
    fn default() -> Self {
        Self {
            rtol: 1e-8,
            max_iter: 500,
        }
    }
}

/// Deterministic pseudo-random start vector (no RNG dependency).
fn seed_vector(n: usize) -> Vec<f64> {
    let mut state = 0x243f6a8885a308d3_u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

/// Estimates the largest eigenvalue (in magnitude) of a symmetric matrix
/// by power iteration, returning `(λ, iterations)`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for rectangular input.
/// - [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn largest_eigenvalue(
    a: &CsrMatrix,
    params: &EigenParams,
) -> Result<(f64, usize), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    let mut v = seed_vector(n);
    let norm = vector::norm2(&v);
    for x in &mut v {
        *x /= norm;
    }
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for k in 1..=params.max_iter {
        a.matvec_into(&v, &mut av);
        let new_lambda = vector::dot(&v, &av);
        let norm = vector::norm2(&av);
        // oftec-lint: allow(L004, exact-zero breakdown guard: only a true zero vector divides by zero below)
        if norm == 0.0 {
            return Ok((0.0, k));
        }
        for (vi, &ai) in v.iter_mut().zip(&av) {
            *vi = ai / norm;
        }
        if (new_lambda - lambda).abs() <= params.rtol * new_lambda.abs().max(1e-300) {
            return Ok((new_lambda, k));
        }
        lambda = new_lambda;
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: f64::NAN,
    })
}

/// Estimates the smallest eigenvalue of a symmetric **positive definite**
/// matrix by inverse power iteration (each step one CG solve), returning
/// `(λ_min, iterations)`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for rectangular input.
/// - [`LinalgError::Breakdown`] (propagated from CG) if the matrix is not
///   positive definite — which *is* the thermal-runaway signal.
/// - [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn smallest_eigenvalue(
    a: &CsrMatrix,
    params: &EigenParams,
) -> Result<(f64, usize), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    let precond = JacobiPreconditioner::new(a)?;
    let cg_params = IterativeParams {
        rtol: 1e-8,
        atol: 1e-14,
        max_iter: 20 * n,
    };
    let mut v = seed_vector(n);
    let norm = vector::norm2(&v);
    for x in &mut v {
        *x /= norm;
    }
    let mut lambda = f64::INFINITY;
    let mut av = vec![0.0; n];
    for k in 1..=params.max_iter {
        let w = solve_cg(a, &v, Some(&v), &precond, &cg_params)?.x;
        let norm = vector::norm2(&w);
        // oftec-lint: allow(L004, exact-zero breakdown guard: only a true zero vector divides by zero below)
        if norm == 0.0 {
            return Err(LinalgError::Breakdown("inverse iteration collapsed"));
        }
        for (vi, &wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
        a.matvec_into(&v, &mut av);
        let new_lambda = vector::dot(&v, &av);
        if (new_lambda - lambda).abs() <= params.rtol * new_lambda.abs().max(1e-300) {
            return Ok((new_lambda, k));
        }
        lambda = new_lambda;
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: f64::NAN,
    })
}

/// Full eigendecomposition of a small symmetric dense matrix by cyclic
/// Jacobi rotations, returning `(eigenvalues, eigenvectors)` with the
/// eigenvalues sorted descending and eigenvector `k` in column `k`.
///
/// Intended for the Gram matrices of POD/snapshot bases (tens of rows);
/// the cost is `O(n³)` per sweep. Only the given matrix's lower triangle
/// is trusted — the upper triangle is mirrored before iterating, so
/// symmetric-up-to-roundoff inputs are fine. The computation is a fixed
/// sequence of rotations with no data-dependent ordering, so results are
/// deterministic across runs and thread counts.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for rectangular input.
/// - [`LinalgError::NonFinite`] if the input contains NaN/inf.
/// - [`LinalgError::NotConverged`] if the off-diagonal mass has not
///   vanished after `params.max_iter` sweeps (with the default 500-sweep
///   cap this indicates corrupt input, not a hard problem: Jacobi
///   converges quadratically once sweeps begin to bite).
pub fn sym_eigen(a: &Matrix, params: &EigenParams) -> Result<(Vec<f64>, Matrix), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    if a.as_slice().iter().any(|v| !v.is_finite()) {
        return Err(LinalgError::NonFinite("sym_eigen input matrix"));
    }
    let n = a.rows();
    if n == 0 {
        return Ok((Vec::new(), Matrix::zeros(0, 0)));
    }
    // Work on a symmetrized copy: mirror the lower triangle up.
    let mut w = a.clone();
    for p in 0..n {
        for q in 0..p {
            let lo = w[(p, q)];
            w[(q, p)] = lo;
        }
    }
    let mut v = Matrix::identity(n);
    let fro = w.frobenius_norm().max(f64::MIN_POSITIVE);
    let stop = params.rtol.max(f64::EPSILON) * fro;

    for _sweep in 0..params.max_iter {
        let mut off = 0.0;
        for p in 0..n {
            for q in (p + 1)..n {
                off += w[(p, q)] * w[(p, q)];
            }
        }
        if (2.0 * off).sqrt() <= stop {
            return Ok(sorted_eigenpairs(&w, &v));
        }
        for p in 0..n - 1 {
            for q in (p + 1)..n {
                let apq = w[(p, q)];
                if apq.abs() <= f64::EPSILON * fro {
                    continue;
                }
                // Classic Jacobi rotation annihilating (p, q).
                let theta = (w[(q, q)] - w[(p, p)]) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (theta * theta + 1.0).sqrt())
                } else {
                    -1.0 / (-theta + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let wkp = w[(k, p)];
                    let wkq = w[(k, q)];
                    w[(k, p)] = c * wkp - s * wkq;
                    w[(k, q)] = s * wkp + c * wkq;
                }
                for k in 0..n {
                    let wpk = w[(p, k)];
                    let wqk = w[(q, k)];
                    w[(p, k)] = c * wpk - s * wqk;
                    w[(q, k)] = s * wpk + c * wqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: f64::NAN,
    })
}

/// Sorts the diagonalized pair descending by eigenvalue, breaking exact
/// ties by original index so the output order is fully deterministic.
fn sorted_eigenpairs(w: &Matrix, v: &Matrix) -> (Vec<f64>, Matrix) {
    let n = w.rows();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        w[(j, j)]
            .partial_cmp(&w[(i, i)])
            .unwrap_or(core::cmp::Ordering::Equal)
            .then(i.cmp(&j))
    });
    let values: Vec<f64> = order.iter().map(|&i| w[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (dst, &src) in order.iter().enumerate() {
        for k in 0..n {
            vectors[(k, dst)] = v[(k, src)];
        }
    }
    (values, vectors)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn diag(values: &[f64]) -> CsrMatrix {
        let n = values.len();
        let mut t = Triplets::new(n, n);
        for (i, &v) in values.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    fn laplacian(n: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn diagonal_extremes_are_exact() {
        let a = diag(&[1.0, 5.0, 3.0, 0.25]);
        let (hi, _) = largest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((hi - 5.0).abs() < 1e-6);
        let (lo, _) = smallest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((lo - 0.25).abs() < 1e-6);
    }

    #[test]
    fn laplacian_extremes_match_closed_form() {
        // 1-D Dirichlet Laplacian: λ_k = 2 − 2 cos(kπ/(n+1)).
        let n = 20;
        let a = laplacian(n);
        let exact_min = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let exact_max = 2.0 - 2.0 * (n as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let (lo, _) = smallest_eigenvalue(&a, &EigenParams::default()).unwrap();
        let (hi, _) = largest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((lo - exact_min).abs() < 1e-5, "min {lo} vs {exact_min}");
        assert!((hi - exact_max).abs() < 1e-4, "max {hi} vs {exact_max}");
    }

    #[test]
    fn indefinite_matrix_breaks_inverse_iteration() {
        let a = diag(&[1.0, -1.0]);
        assert!(smallest_eigenvalue(&a, &EigenParams::default()).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        assert!(matches!(
            largest_eigenvalue(&a, &EigenParams::default()),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }

    #[test]
    fn jacobi_diagonalizes_known_matrix() {
        // Symmetric 3×3 with eigenvalues 6, 3, 1 (classic example):
        // A = Q diag(6,3,1) Qᵀ built by hand.
        let a = Matrix::from_rows(&[&[4.0, 1.0, 1.0], &[1.0, 4.0, 1.0], &[1.0, 1.0, 4.0]]);
        // Eigenvalues: 6 (vector of ones) and 3 (double).
        let (vals, vecs) = sym_eigen(&a, &EigenParams::default()).unwrap();
        assert!((vals[0] - 6.0).abs() < 1e-10, "vals {vals:?}");
        assert!((vals[1] - 3.0).abs() < 1e-10);
        assert!((vals[2] - 3.0).abs() < 1e-10);
        // Each column is a unit eigenvector: ‖A v − λ v‖ small.
        for k in 0..3 {
            let v: Vec<f64> = (0..3).map(|i| vecs[(i, k)]).collect();
            let av = a.matvec(&v);
            for i in 0..3 {
                assert!((av[i] - vals[k] * v[i]).abs() < 1e-9);
            }
            assert!((vector::norm2(&v) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn jacobi_handles_indefinite_and_sorts_descending() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, -2.0]]);
        // Eigenvalues of [[1,2],[2,-2]]: 2 and -3.
        let (vals, _) = sym_eigen(&a, &EigenParams::default()).unwrap();
        assert!((vals[0] - 2.0).abs() < 1e-10);
        assert!((vals[1] + 3.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_is_deterministic() {
        let mut data = Vec::new();
        let mut state = 0xdeadbeefcafef00du64;
        for _ in 0..36 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            data.push((state >> 12) as f64 / (1u64 << 52) as f64 - 0.5);
        }
        // Symmetrize.
        let raw = Matrix::from_vec(6, 6, data);
        let mut a = raw.clone();
        for p in 0..6 {
            for q in 0..6 {
                a[(p, q)] = 0.5 * (raw[(p, q)] + raw[(q, p)]);
            }
        }
        let (v1, m1) = sym_eigen(&a, &EigenParams::default()).unwrap();
        let (v2, m2) = sym_eigen(&a, &EigenParams::default()).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(m1.as_slice(), m2.as_slice());
    }

    #[test]
    fn jacobi_rejects_bad_input() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            sym_eigen(&a, &EigenParams::default()),
            Err(LinalgError::NotSquare(2, 3))
        ));
        let mut a = Matrix::zeros(2, 2);
        a[(0, 1)] = f64::NAN;
        assert!(matches!(
            sym_eigen(&a, &EigenParams::default()),
            Err(LinalgError::NonFinite(_))
        ));
    }
}
