//! Eigenvalue extremes of symmetric sparse matrices, via power and
//! inverse-power iteration.
//!
//! The thermal simulator uses [`smallest_eigenvalue`] as a *stability
//! margin*: the folded network matrix is symmetric, and its smallest
//! eigenvalue measures how far the operating point sits from the
//! thermal-runaway boundary (λ_min → 0 as leakage feedback eats the
//! package's conductance).

use crate::{solve_cg, vector, CsrMatrix, IterativeParams, JacobiPreconditioner, LinalgError};

/// Controls for the eigen iterations.
#[derive(Debug, Clone, Copy)]
pub struct EigenParams {
    /// Relative change in the eigenvalue estimate at which to stop.
    pub rtol: f64,
    /// Iteration cap.
    pub max_iter: usize,
}

impl Default for EigenParams {
    fn default() -> Self {
        Self {
            rtol: 1e-8,
            max_iter: 500,
        }
    }
}

/// Deterministic pseudo-random start vector (no RNG dependency).
fn seed_vector(n: usize) -> Vec<f64> {
    let mut state = 0x243f6a8885a308d3_u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

/// Estimates the largest eigenvalue (in magnitude) of a symmetric matrix
/// by power iteration, returning `(λ, iterations)`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for rectangular input.
/// - [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn largest_eigenvalue(
    a: &CsrMatrix,
    params: &EigenParams,
) -> Result<(f64, usize), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    let mut v = seed_vector(n);
    let norm = vector::norm2(&v);
    for x in &mut v {
        *x /= norm;
    }
    let mut av = vec![0.0; n];
    let mut lambda = 0.0;
    for k in 1..=params.max_iter {
        a.matvec_into(&v, &mut av);
        let new_lambda = vector::dot(&v, &av);
        let norm = vector::norm2(&av);
        if norm == 0.0 {
            return Ok((0.0, k));
        }
        for (vi, &ai) in v.iter_mut().zip(&av) {
            *vi = ai / norm;
        }
        if (new_lambda - lambda).abs() <= params.rtol * new_lambda.abs().max(1e-300) {
            return Ok((new_lambda, k));
        }
        lambda = new_lambda;
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: f64::NAN,
    })
}

/// Estimates the smallest eigenvalue of a symmetric **positive definite**
/// matrix by inverse power iteration (each step one CG solve), returning
/// `(λ_min, iterations)`.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] for rectangular input.
/// - [`LinalgError::Breakdown`] (propagated from CG) if the matrix is not
///   positive definite — which *is* the thermal-runaway signal.
/// - [`LinalgError::NotConverged`] if the tolerance is not reached.
pub fn smallest_eigenvalue(
    a: &CsrMatrix,
    params: &EigenParams,
) -> Result<(f64, usize), LinalgError> {
    if a.rows() != a.cols() {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    let n = a.rows();
    let precond = JacobiPreconditioner::new(a)?;
    let cg_params = IterativeParams {
        rtol: 1e-8,
        atol: 1e-14,
        max_iter: 20 * n,
    };
    let mut v = seed_vector(n);
    let norm = vector::norm2(&v);
    for x in &mut v {
        *x /= norm;
    }
    let mut lambda = f64::INFINITY;
    let mut av = vec![0.0; n];
    for k in 1..=params.max_iter {
        let w = solve_cg(a, &v, Some(&v), &precond, &cg_params)?.x;
        let norm = vector::norm2(&w);
        if norm == 0.0 {
            return Err(LinalgError::Breakdown("inverse iteration collapsed"));
        }
        for (vi, &wi) in v.iter_mut().zip(&w) {
            *vi = wi / norm;
        }
        a.matvec_into(&v, &mut av);
        let new_lambda = vector::dot(&v, &av);
        if (new_lambda - lambda).abs() <= params.rtol * new_lambda.abs().max(1e-300) {
            return Ok((new_lambda, k));
        }
        lambda = new_lambda;
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_iter,
        residual: f64::NAN,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn diag(values: &[f64]) -> CsrMatrix {
        let n = values.len();
        let mut t = Triplets::new(n, n);
        for (i, &v) in values.iter().enumerate() {
            t.push(i, i, v);
        }
        t.to_csr()
    }

    fn laplacian(n: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn diagonal_extremes_are_exact() {
        let a = diag(&[1.0, 5.0, 3.0, 0.25]);
        let (hi, _) = largest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((hi - 5.0).abs() < 1e-6);
        let (lo, _) = smallest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((lo - 0.25).abs() < 1e-6);
    }

    #[test]
    fn laplacian_extremes_match_closed_form() {
        // 1-D Dirichlet Laplacian: λ_k = 2 − 2 cos(kπ/(n+1)).
        let n = 20;
        let a = laplacian(n);
        let exact_min = 2.0 - 2.0 * (std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let exact_max = 2.0 - 2.0 * (n as f64 * std::f64::consts::PI / (n as f64 + 1.0)).cos();
        let (lo, _) = smallest_eigenvalue(&a, &EigenParams::default()).unwrap();
        let (hi, _) = largest_eigenvalue(&a, &EigenParams::default()).unwrap();
        assert!((lo - exact_min).abs() < 1e-5, "min {lo} vs {exact_min}");
        assert!((hi - exact_max).abs() < 1e-4, "max {hi} vs {exact_max}");
    }

    #[test]
    fn indefinite_matrix_breaks_inverse_iteration() {
        let a = diag(&[1.0, -1.0]);
        assert!(smallest_eigenvalue(&a, &EigenParams::default()).is_err());
    }

    #[test]
    fn rectangular_rejected() {
        let mut t = Triplets::new(2, 3);
        t.push(0, 0, 1.0);
        let a = t.to_csr();
        assert!(matches!(
            largest_eigenvalue(&a, &EigenParams::default()),
            Err(LinalgError::NotSquare(2, 3))
        ));
    }
}
