//! Stationary iterative methods: Gauss-Seidel and SOR.
//!
//! These converge slowly but are simple, allocation-light, and robust for
//! strictly diagonally dominant systems. The thermal simulator uses them as
//! a sanity cross-check against the Krylov and direct paths.

use crate::{vector, CsrMatrix, LinalgError};

/// Controls for the stationary solvers.
#[derive(Debug, Clone, Copy)]
pub struct StationaryParams {
    /// Relative residual tolerance.
    pub rtol: f64,
    /// Absolute residual floor.
    pub atol: f64,
    /// Sweep cap.
    pub max_sweeps: usize,
    /// SOR relaxation factor in `(0, 2)`; 1.0 reduces SOR to Gauss-Seidel.
    pub relaxation: f64,
}

impl Default for StationaryParams {
    fn default() -> Self {
        Self {
            rtol: 1e-10,
            atol: 1e-14,
            max_sweeps: 50_000,
            relaxation: 1.0,
        }
    }
}

/// Outcome of a converged stationary solve.
#[derive(Debug, Clone, PartialEq)]
pub struct StationarySummary {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Sweeps used.
    pub sweeps: usize,
    /// Final residual 2-norm.
    pub residual: f64,
}

/// Solves `A·x = b` with Gauss-Seidel sweeps.
///
/// Convergence is guaranteed for strictly diagonally dominant or SPD `A`.
///
/// # Errors
///
/// See [`sor`]; this is `sor` with `relaxation = 1.0`.
pub fn gauss_seidel(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    params: &StationaryParams,
) -> Result<StationarySummary, LinalgError> {
    sor(
        a,
        b,
        x0,
        &StationaryParams {
            relaxation: 1.0,
            ..*params
        },
    )
}

/// Solves `A·x = b` with successive over-relaxation.
///
/// # Errors
///
/// - [`LinalgError::NotSquare`] / [`LinalgError::DimensionMismatch`] on
///   shape disagreement.
/// - [`LinalgError::Breakdown`] if a diagonal entry is missing/zero or the
///   relaxation factor is outside `(0, 2)`.
/// - [`LinalgError::NotConverged`] if `max_sweeps` is exhausted.
pub fn sor(
    a: &CsrMatrix,
    b: &[f64],
    x0: Option<&[f64]>,
    params: &StationaryParams,
) -> Result<StationarySummary, LinalgError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(LinalgError::NotSquare(a.rows(), a.cols()));
    }
    if b.len() != n {
        return Err(LinalgError::DimensionMismatch(n, b.len()));
    }
    if !(params.relaxation > 0.0 && params.relaxation < 2.0) {
        return Err(LinalgError::Breakdown("SOR relaxation outside (0, 2)"));
    }
    let w = params.relaxation;
    let mut x = match x0 {
        Some(x0) => {
            if x0.len() != n {
                return Err(LinalgError::DimensionMismatch(n, x0.len()));
            }
            x0.to_vec()
        }
        None => vec![0.0; n],
    };

    let diag = a.diagonal();
    // oftec-lint: allow(L004, only an exactly zero diagonal breaks the SOR sweep)
    if diag.iter().any(|&d| d == 0.0 || !d.is_finite()) {
        return Err(LinalgError::Breakdown("zero diagonal in SOR"));
    }

    let target = (params.rtol * vector::norm2(b)).max(params.atol);
    let mut r = vec![0.0; n];
    for sweep in 1..=params.max_sweeps {
        for i in 0..n {
            let mut sigma = 0.0;
            for (j, v) in a.row_iter(i) {
                if j != i {
                    sigma += v * x[j];
                }
            }
            let gs = (b[i] - sigma) / diag[i];
            x[i] = (1.0 - w) * x[i] + w * gs;
        }
        a.matvec_into(&x, &mut r);
        for i in 0..n {
            r[i] = b[i] - r[i];
        }
        let rnorm = vector::norm2(&r);
        if rnorm <= target {
            return Ok(StationarySummary {
                x,
                sweeps: sweep,
                residual: rnorm,
            });
        }
        if !rnorm.is_finite() {
            return Err(LinalgError::Breakdown("divergence in SOR"));
        }
    }
    a.matvec_into(&x, &mut r);
    for i in 0..n {
        r[i] = b[i] - r[i];
    }
    Err(LinalgError::NotConverged {
        iterations: params.max_sweeps,
        residual: vector::norm2(&r),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Triplets;

    fn dominant_system(n: usize) -> (CsrMatrix, Vec<f64>) {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 4.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let b: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.1)).collect();
        (t.to_csr(), b)
    }

    #[test]
    fn gauss_seidel_converges() {
        let (a, b) = dominant_system(25);
        let sol = gauss_seidel(&a, &b, None, &StationaryParams::default()).unwrap();
        let r = vector::sub(&a.matvec(&sol.x), &b);
        assert!(vector::norm2(&r) < 1e-8);
    }

    #[test]
    fn sor_with_overrelaxation_is_faster() {
        // Weakly dominant 1D Laplacian (diag barely above 2): the Jacobi
        // spectral radius is close to 1, so the optimal SOR factor is well
        // above 1 and over-relaxation clearly beats plain Gauss-Seidel.
        let n = 60;
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.02);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let gs = gauss_seidel(&a, &b, None, &StationaryParams::default()).unwrap();
        let fast = sor(
            &a,
            &b,
            None,
            &StationaryParams {
                relaxation: 1.7,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(fast.sweeps < gs.sweeps, "{} vs {}", fast.sweeps, gs.sweeps);
    }

    #[test]
    fn invalid_relaxation_rejected() {
        let (a, b) = dominant_system(4);
        for w in [0.0, 2.0, -1.0] {
            let err = sor(
                &a,
                &b,
                None,
                &StationaryParams {
                    relaxation: w,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(matches!(err, LinalgError::Breakdown(_)));
        }
    }

    #[test]
    fn sweep_cap_reported() {
        let (a, b) = dominant_system(30);
        let err = gauss_seidel(
            &a,
            &b,
            None,
            &StationaryParams {
                max_sweeps: 1,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            LinalgError::NotConverged { iterations: 1, .. }
        ));
    }

    #[test]
    fn warm_start_finishes_in_one_sweep() {
        let (a, b) = dominant_system(10);
        let sol = gauss_seidel(&a, &b, None, &StationaryParams::default()).unwrap();
        let warm = gauss_seidel(&a, &b, Some(&sol.x), &StationaryParams::default()).unwrap();
        assert!(warm.sweeps <= 2);
    }
}
