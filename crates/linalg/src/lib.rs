// Index-based loops are the clearest notation for the factorization and
// triangular-solve kernels in this crate; iterator rewrites obscure the
// textbook algorithms they implement.
#![allow(clippy::needless_range_loop)]

//! Dense and sparse linear algebra for the OFTEC thermal/optimization stack.
//!
//! Everything here is written from scratch: the thermal simulator needs to
//! factor and solve the (possibly nonsymmetric) network matrix
//! `G(ω) − A(I_TEC) − D_leak`, and the SQP solver needs small dense
//! factorizations for its QP subproblems. No external linear-algebra crate
//! is used.
//!
//! # Contents
//!
//! - [`Matrix`] / [`vector`] — dense row-major matrices and vector kernels
//! - [`LuFactor`] — LU with partial pivoting (general square systems)
//! - [`CholeskyFactor`] — LLᵀ for symmetric positive-definite systems,
//!   doubling as a positive-definiteness test (thermal-runaway detection)
//! - [`CsrMatrix`] / [`Triplets`] — compressed sparse row storage
//! - [`solve_cg`] / [`solve_bicgstab`] — preconditioned Krylov solvers
//! - [`JacobiPreconditioner`] / [`Ilu0Preconditioner`] — preconditioners
//! - [`gauss_seidel`] / [`sor`] — stationary smoothers
//!
//! # Examples
//!
//! ```
//! use oftec_linalg::{Matrix, LuFactor};
//!
//! let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
//! let lu = LuFactor::new(&a)?;
//! let x = lu.solve(&[1.0, 2.0])?;
//! assert!((4.0 * x[0] + x[1] - 1.0).abs() < 1e-12);
//! # Ok::<(), oftec_linalg::LinalgError>(())
//! ```

mod cholesky;
mod dense;
mod eigen;
mod error;
mod fallback;
mod iterative;
mod lu;
mod precond;
mod sell;
mod sparse;
mod stationary;
mod tridiag;

pub use cholesky::CholeskyFactor;
pub use dense::{vector, Matrix};
pub use eigen::{largest_eigenvalue, smallest_eigenvalue, sym_eigen, EigenParams};
pub use error::LinalgError;
pub use fallback::{solve_dense_chain, DenseMethod, DenseSolve};
pub use iterative::{solve_bicgstab, solve_cg, solve_cg_mixed, IterativeParams, IterativeSummary};
pub use lu::LuFactor;
pub use precond::{
    IdentityPreconditioner, Ilu0Preconditioner, JacobiPreconditioner, Preconditioner,
};
pub use sell::SellMatrix;
pub use sparse::{CsrMatrix, Triplets};
pub use stationary::{gauss_seidel, sor, StationaryParams, StationarySummary};
pub use tridiag::Tridiagonal;
