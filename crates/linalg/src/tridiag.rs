//! Tridiagonal systems (Thomas algorithm).
//!
//! One-dimensional layer stacks (depth-only thermal ladders, as in quick
//! package estimates) produce tridiagonal matrices; the Thomas algorithm
//! solves them in O(n) without any sparse machinery.

use crate::LinalgError;

/// A tridiagonal matrix stored as three bands.
#[derive(Debug, Clone, PartialEq)]
pub struct Tridiagonal {
    /// Sub-diagonal `a[1..n]` (length `n`, `a\[0\]` unused and zero).
    lower: Vec<f64>,
    /// Diagonal `b[0..n]`.
    diag: Vec<f64>,
    /// Super-diagonal `c[0..n-1]` (length `n`, last unused and zero).
    upper: Vec<f64>,
}

impl Tridiagonal {
    /// Builds from bands. `lower\[0\]` and `upper[n-1]` are forced to zero.
    ///
    /// # Panics
    ///
    /// Panics if the band lengths differ or are empty.
    pub fn new(mut lower: Vec<f64>, diag: Vec<f64>, mut upper: Vec<f64>) -> Self {
        let n = diag.len();
        assert!(n > 0, "empty system");
        assert_eq!(lower.len(), n, "lower band length");
        assert_eq!(upper.len(), n, "upper band length");
        lower[0] = 0.0;
        upper[n - 1] = 0.0;
        Self { lower, diag, upper }
    }

    /// Dimension.
    pub fn dim(&self) -> usize {
        self.diag.len()
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(x.len(), n, "matvec length");
        (0..n)
            .map(|i| {
                let mut v = self.diag[i] * x[i];
                if i > 0 {
                    v += self.lower[i] * x[i - 1];
                }
                if i + 1 < n {
                    v += self.upper[i] * x[i + 1];
                }
                v
            })
            .collect()
    }

    /// Solves `T·x = d` with the Thomas algorithm (no pivoting — intended
    /// for diagonally dominant thermal ladders).
    ///
    /// # Errors
    ///
    /// - [`LinalgError::DimensionMismatch`] if `d.len() != self.dim()`.
    /// - [`LinalgError::Singular`] on a vanishing pivot.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve(&self, d: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.dim();
        if d.len() != n {
            return Err(LinalgError::DimensionMismatch(n, d.len()));
        }
        let mut c_star = vec![0.0; n];
        let mut d_star = vec![0.0; n];
        let mut denom = self.diag[0];
        if denom.abs() < 1e-300 {
            return Err(LinalgError::Singular(0));
        }
        c_star[0] = self.upper[0] / denom;
        d_star[0] = d[0] / denom;
        for i in 1..n {
            denom = self.diag[i] - self.lower[i] * c_star[i - 1];
            if denom.abs() < 1e-300 {
                return Err(LinalgError::Singular(i));
            }
            if i + 1 < n {
                c_star[i] = self.upper[i] / denom;
            }
            d_star[i] = (d[i] - self.lower[i] * d_star[i - 1]) / denom;
        }
        let mut x = d_star;
        for i in (0..n - 1).rev() {
            let next = x[i + 1];
            x[i] -= c_star[i] * next;
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn ladder(n: usize) -> Tridiagonal {
        // [2 -1; -1 2 -1; …] — the 1-D conduction ladder.
        Tridiagonal::new(vec![-1.0; n], vec![2.0; n], vec![-1.0; n])
    }

    #[test]
    fn solves_ladder() {
        let t = ladder(50);
        let d = vec![1.0; 50];
        let x = t.solve(&d).unwrap();
        let r = vector::sub(&t.matvec(&x), &d);
        assert!(vector::norm2(&r) < 1e-10);
    }

    #[test]
    fn known_small_system() {
        // [2 1 0; 1 3 1; 0 1 2]·x = [3, 5, 3] → x = [1, 1, 1].
        let t = Tridiagonal::new(
            vec![0.0, 1.0, 1.0],
            vec![2.0, 3.0, 2.0],
            vec![1.0, 1.0, 0.0],
        );
        let x = t.solve(&[3.0, 5.0, 3.0]).unwrap();
        for xi in &x {
            assert!((xi - 1.0).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn single_element() {
        let t = Tridiagonal::new(vec![0.0], vec![4.0], vec![0.0]);
        assert_eq!(t.solve(&[8.0]).unwrap(), vec![2.0]);
    }

    #[test]
    fn singular_detected() {
        let t = Tridiagonal::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0, 0.0]);
        assert!(matches!(
            t.solve(&[1.0, 1.0]),
            Err(LinalgError::Singular(0))
        ));
    }

    #[test]
    fn dimension_mismatch() {
        let t = ladder(3);
        assert!(matches!(
            t.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch(3, 1))
        ));
    }

    #[test]
    fn matvec_matches_definition() {
        let t = ladder(4);
        assert_eq!(t.matvec(&[1.0, 1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0, 1.0]);
    }
}
