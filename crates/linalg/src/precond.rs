//! Preconditioners for the Krylov solvers.

use crate::{CsrMatrix, LinalgError};

/// A left preconditioner: given `r`, computes `z ≈ M⁻¹·r`.
///
/// Implementations must be cheap to apply; they are called once or twice per
/// Krylov iteration.
pub trait Preconditioner {
    /// Applies the preconditioner, writing `z ≈ M⁻¹·r` into `z`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `r.len() != z.len()` or the dimension
    /// does not match the operator.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Problem dimension.
    fn dim(&self) -> usize;
}

/// The identity preconditioner (plain CG/BiCGSTAB).
#[derive(Debug, Clone)]
pub struct IdentityPreconditioner {
    n: usize,
}

impl IdentityPreconditioner {
    /// Creates an identity preconditioner of dimension `n`.
    pub fn new(n: usize) -> Self {
        Self { n }
    }
}

impl Preconditioner for IdentityPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }

    fn dim(&self) -> usize {
        self.n
    }
}

/// Diagonal (Jacobi) preconditioner `M = diag(A)`.
///
/// For the diagonally dominant thermal network this alone typically halves
/// CG iteration counts.
#[derive(Debug, Clone)]
pub struct JacobiPreconditioner {
    inv_diag: Vec<f64>,
}

impl JacobiPreconditioner {
    /// Builds the preconditioner from the matrix diagonal.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Breakdown`] if any diagonal entry is zero or
    /// not finite.
    pub fn new(a: &CsrMatrix) -> Result<Self, LinalgError> {
        Self::from_diagonal(&a.diagonal())
    }

    /// Builds the preconditioner from an explicit diagonal, skipping the
    /// per-row binary searches of [`JacobiPreconditioner::new`]. Useful
    /// when the caller already tracks the diagonal entries (e.g. through
    /// [`CsrMatrix::entry_index`] on a cached assembly skeleton).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Breakdown`] if any entry is zero or not
    /// finite.
    pub fn from_diagonal(diag: &[f64]) -> Result<Self, LinalgError> {
        let mut inv = Vec::with_capacity(diag.len());
        for &d in diag {
            // oftec-lint: allow(L004, only an exactly zero diagonal is uninvertible)
            if d == 0.0 || !d.is_finite() {
                return Err(LinalgError::Breakdown("zero or non-finite diagonal"));
            }
            inv.push(1.0 / d);
        }
        Ok(Self { inv_diag: inv })
    }
}

impl Preconditioner for JacobiPreconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, &ri), &di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }

    fn dim(&self) -> usize {
        self.inv_diag.len()
    }
}

/// Incomplete LU factorization with zero fill-in, ILU(0).
///
/// Uses the sparsity pattern of `A` itself for both factors. For the
/// near-symmetric thermal matrices this is the strongest preconditioner in
/// the crate and is what the steady-state solver uses by default for
/// BiCGSTAB.
#[derive(Debug, Clone)]
pub struct Ilu0Preconditioner {
    /// The ILU factors stored in the same CSR pattern as A (L strict lower
    /// with implied unit diagonal, U upper including diagonal).
    factors: CsrMatrix,
    /// Position of the `(i, i)` entry in the CSR arrays, per row: the
    /// split point between the L and U parts of each row.
    diag_pos: Vec<usize>,
}

impl Ilu0Preconditioner {
    /// Computes the ILU(0) factorization.
    ///
    /// The factorization mutates a scratch clone of `A` in place; hot
    /// sweep loops re-factor once per operating point, so this avoids any
    /// triplet rebuild or re-sort of the (unchanged) sparsity pattern.
    ///
    /// # Errors
    ///
    /// - [`LinalgError::NotSquare`] for rectangular input.
    /// - [`LinalgError::Breakdown`] if a zero pivot appears.
    pub fn new(a: &CsrMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare(a.rows(), a.cols()));
        }
        let n = a.rows();
        let mut factors = a.clone();
        let (row_ptr, col_idx) = {
            let (rp, ci, _) = factors.raw();
            (rp.to_vec(), ci.to_vec())
        };

        // diag_pos[i] = position of (i, i) in the CSR arrays.
        let mut diag_pos = vec![usize::MAX; n];
        for i in 0..n {
            for k in row_ptr[i]..row_ptr[i + 1] {
                if col_idx[k] == i {
                    diag_pos[i] = k;
                }
            }
            if diag_pos[i] == usize::MAX {
                return Err(LinalgError::Breakdown("missing diagonal in ILU(0)"));
            }
        }

        // Standard IKJ-variant ILU(0), updating the values in place.
        let values = factors.values_mut();
        for i in 1..n {
            for kk in row_ptr[i]..diag_pos[i] {
                let k = col_idx[kk];
                let pivot = values[diag_pos[k]];
                // oftec-lint: allow(L004, only an exactly zero pivot is uninvertible)
                if pivot == 0.0 || !pivot.is_finite() {
                    return Err(LinalgError::Breakdown("zero pivot in ILU(0)"));
                }
                let lik = values[kk] / pivot;
                values[kk] = lik;
                // Subtract lik * U(k, j) for j > k present in row i pattern.
                let mut jj = kk + 1;
                for uk in (diag_pos[k] + 1)..row_ptr[k + 1] {
                    let j = col_idx[uk];
                    // Advance jj to column j in row i, if present.
                    while jj < row_ptr[i + 1] && col_idx[jj] < j {
                        jj += 1;
                    }
                    if jj < row_ptr[i + 1] && col_idx[jj] == j {
                        values[jj] -= lik * values[uk];
                    }
                }
            }
        }

        Ok(Self { factors, diag_pos })
    }
}

impl Preconditioner for Ilu0Preconditioner {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        let n = self.factors.rows();
        assert_eq!(r.len(), n, "preconditioner dimension mismatch");
        assert_eq!(z.len(), n, "preconditioner dimension mismatch");
        let (row_ptr, col_idx, values) = self.factors.raw();
        // Forward solve L·y = r (unit diagonal): entries left of the
        // diagonal position.
        for i in 0..n {
            let mut sum = r[i];
            for k in row_ptr[i]..self.diag_pos[i] {
                sum -= values[k] * z[col_idx[k]];
            }
            z[i] = sum;
        }
        // Backward solve U·z = y: the diagonal entry and everything after.
        for i in (0..n).rev() {
            let d = self.diag_pos[i];
            let mut sum = z[i];
            for k in (d + 1)..row_ptr[i + 1] {
                sum -= values[k] * z[col_idx[k]];
            }
            z[i] = sum / values[d];
        }
    }

    fn dim(&self) -> usize {
        self.factors.rows()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{vector, Triplets};

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = Triplets::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i > 0 {
                t.push(i, i - 1, -1.0);
            }
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn identity_is_noop() {
        let p = IdentityPreconditioner::new(3);
        let mut z = vec![0.0; 3];
        p.apply(&[1.0, 2.0, 3.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = laplacian_1d(3);
        let p = JacobiPreconditioner::new(&a).unwrap();
        let mut z = vec![0.0; 3];
        p.apply(&[2.0, 4.0, 6.0], &mut z);
        assert_eq!(z, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn jacobi_from_diagonal_matches_matrix_path() {
        let a = laplacian_1d(4);
        let from_matrix = JacobiPreconditioner::new(&a).unwrap();
        let from_diag = JacobiPreconditioner::from_diagonal(&a.diagonal()).unwrap();
        let r = [1.0, -2.0, 3.0, 0.5];
        let (mut z1, mut z2) = (vec![0.0; 4], vec![0.0; 4]);
        from_matrix.apply(&r, &mut z1);
        from_diag.apply(&r, &mut z2);
        assert_eq!(z1, z2);
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, 0.0]).is_err());
        assert!(JacobiPreconditioner::from_diagonal(&[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn jacobi_rejects_zero_diagonal() {
        let mut t = Triplets::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        // (1,1) never set → zero diagonal.
        let a = t.to_csr();
        assert!(JacobiPreconditioner::new(&a).is_err());
    }

    #[test]
    fn ilu0_is_exact_for_tridiagonal() {
        // For a tridiagonal matrix ILU(0) has no dropped fill, so applying
        // the preconditioner IS a direct solve.
        let a = laplacian_1d(6);
        let ilu = Ilu0Preconditioner::new(&a).unwrap();
        let b = [1.0, 0.0, 0.0, 0.0, 0.0, 1.0];
        let mut x = vec![0.0; 6];
        ilu.apply(&b, &mut x);
        let r = vector::sub(&a.matvec(&x), &b);
        assert!(vector::norm2(&r) < 1e-12, "residual {}", vector::norm2(&r));
    }

    #[test]
    fn ilu0_approximates_on_2d_pattern() {
        // 2D 3×3 grid Laplacian: ILU(0) is inexact but must still reduce
        // the residual dramatically compared to the raw rhs.
        let n = 9;
        let mut t = Triplets::new(n, n);
        let idx = |r: usize, c: usize| r * 3 + c;
        for r in 0..3 {
            for c in 0..3 {
                let i = idx(r, c);
                t.push(i, i, 4.0);
                if r > 0 {
                    t.push(i, idx(r - 1, c), -1.0);
                }
                if r < 2 {
                    t.push(i, idx(r + 1, c), -1.0);
                }
                if c > 0 {
                    t.push(i, idx(r, c - 1), -1.0);
                }
                if c < 2 {
                    t.push(i, idx(r, c + 1), -1.0);
                }
            }
        }
        let a = t.to_csr();
        let ilu = Ilu0Preconditioner::new(&a).unwrap();
        let b = vec![1.0; n];
        let mut x = vec![0.0; n];
        ilu.apply(&b, &mut x);
        let r = vector::sub(&a.matvec(&x), &b);
        assert!(vector::norm2(&r) < 0.5 * vector::norm2(&b));
    }
}
