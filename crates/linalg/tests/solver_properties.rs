//! Property-based cross-validation of the direct, Krylov, and stationary
//! solvers on randomly generated diagonally dominant systems.

use oftec_linalg::{
    gauss_seidel, solve_bicgstab, solve_cg, vector, CholeskyFactor, Ilu0Preconditioner,
    IterativeParams, JacobiPreconditioner, LuFactor, Matrix, StationaryParams, Triplets,
};
use proptest::prelude::*;

/// Strategy: a random strictly diagonally dominant matrix of size 3..=12
/// with symmetric sparsity, returned as (dense, csr, rhs).
fn dominant_system() -> impl Strategy<Value = (Matrix, oftec_linalg::CsrMatrix, Vec<f64>)> {
    (3usize..=12).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0..1.0f64, n * n),
            proptest::collection::vec(-10.0..10.0f64, n),
        )
            .prop_map(move |(offd, b)| {
                let mut dense = Matrix::zeros(n, n);
                let mut t = Triplets::new(n, n);
                for i in 0..n {
                    let mut rowsum = 0.0;
                    for j in 0..n {
                        if i != j {
                            let v = offd[i * n + j];
                            dense[(i, j)] = v;
                            t.push(i, j, v);
                            rowsum += v.abs();
                        }
                    }
                    let d = rowsum + 1.0;
                    dense[(i, i)] = d;
                    t.push(i, i, d);
                }
                (dense, t.to_csr(), b)
            })
    })
}

/// Strategy: a random SPD matrix built as `B·Bᵀ + n·I`.
fn spd_system() -> impl Strategy<Value = (Matrix, oftec_linalg::CsrMatrix, Vec<f64>)> {
    (3usize..=10).prop_flat_map(|n| {
        (
            proptest::collection::vec(-1.0..1.0f64, n * n),
            proptest::collection::vec(-5.0..5.0f64, n),
        )
            .prop_map(move |(raw, b)| {
                let bmat = Matrix::from_vec(n, n, raw);
                let mut a = bmat.matmul(&bmat.transpose());
                for i in 0..n {
                    a[(i, i)] += n as f64;
                }
                let mut t = Triplets::new(n, n);
                for i in 0..n {
                    for j in 0..n {
                        t.push(i, j, a[(i, j)]);
                    }
                }
                (a.clone(), t.to_csr(), b)
            })
    })
}

fn rel_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let r = vector::sub(&a.matvec(x), b);
    vector::norm2(&r) / vector::norm2(b).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_solves_dominant_systems((dense, _csr, b) in dominant_system()) {
        let x = LuFactor::new(&dense).unwrap().solve(&b).unwrap();
        prop_assert!(rel_residual(&dense, &x, &b) < 1e-10);
    }

    #[test]
    fn bicgstab_agrees_with_lu((dense, csr, b) in dominant_system()) {
        let x_lu = LuFactor::new(&dense).unwrap().solve(&b).unwrap();
        let m = Ilu0Preconditioner::new(&csr).unwrap();
        let sol = solve_bicgstab(&csr, &b, None, &m, &IterativeParams::default()).unwrap();
        let diff = vector::sub(&x_lu, &sol.x);
        prop_assert!(vector::norm2(&diff) < 1e-6 * vector::norm2(&x_lu).max(1.0));
    }

    #[test]
    fn gauss_seidel_agrees_with_lu((dense, csr, b) in dominant_system()) {
        let x_lu = LuFactor::new(&dense).unwrap().solve(&b).unwrap();
        let sol = gauss_seidel(&csr, &b, None, &StationaryParams::default()).unwrap();
        let diff = vector::sub(&x_lu, &sol.x);
        prop_assert!(vector::norm2(&diff) < 1e-6 * vector::norm2(&x_lu).max(1.0));
    }

    #[test]
    fn cholesky_and_cg_agree_on_spd((dense, csr, b) in spd_system()) {
        let x_chol = CholeskyFactor::new(&dense).unwrap().solve(&b).unwrap();
        let m = JacobiPreconditioner::new(&csr).unwrap();
        let sol = solve_cg(&csr, &b, None, &m, &IterativeParams::default()).unwrap();
        let diff = vector::sub(&x_chol, &sol.x);
        prop_assert!(vector::norm2(&diff) < 1e-6 * vector::norm2(&x_chol).max(1.0));
    }

    #[test]
    fn lu_determinant_matches_cholesky_on_spd((dense, _csr, _b) in spd_system()) {
        let det_lu = LuFactor::new(&dense).unwrap().determinant();
        let det_chol = CholeskyFactor::new(&dense).unwrap().determinant();
        prop_assert!((det_lu - det_chol).abs() <= 1e-8 * det_lu.abs().max(1.0));
    }

    #[test]
    fn triplet_accumulation_order_invariant(
        entries in proptest::collection::vec((0usize..5, 0usize..5, -1.0..1.0f64), 1..40),
    ) {
        let mut fwd = Triplets::new(5, 5);
        for &(r, c, v) in &entries {
            fwd.push(r, c, v);
        }
        let mut rev = Triplets::new(5, 5);
        for &(r, c, v) in entries.iter().rev() {
            rev.push(r, c, v);
        }
        let a = fwd.to_csr();
        let b = rev.to_csr();
        for i in 0..5 {
            for j in 0..5 {
                prop_assert!((a.get(i, j) - b.get(i, j)).abs() < 1e-12);
            }
        }
    }
}
