//! The fleet engine's headline contracts, end to end:
//!
//! 1. the concatenated verdict stream is byte-identical at 1 vs 8 worker
//!    threads;
//! 2. a run killed mid-shard (and even one with a torn tail past its
//!    checkpoint) resumes to the same bytes as an uninterrupted run;
//! 3. a seeded injected fault produces a discrepancy, a written
//!    reproducer file, and a replay that still fails.

use oftec_fleet::diff::{FaultKindSpec, FaultPlan, FaultTarget};
use oftec_fleet::minimize::ReproCase;
use oftec_fleet::runner::{concatenated_verdicts, run, RunConfig, TargetedFault};
use std::io::Write;
use std::path::PathBuf;

const SEED: u64 = 20260808;
const SHARDS: u32 = 2;
const PER_SHARD: u32 = 30;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("oftec-fleet-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(dir: &std::path::Path) -> RunConfig {
    let mut c = RunConfig::new(SEED, SHARDS, PER_SHARD, dir.to_path_buf());
    c.cross_check_divisor = 8;
    c.batch = 7; // deliberately not a divisor of per_shard
    c
}

#[test]
fn verdict_stream_is_byte_identical_across_thread_counts() {
    let dir1 = tmp_dir("threads1");
    let dir8 = tmp_dir("threads8");
    let mut c1 = config(&dir1);
    c1.threads = 1;
    let mut c8 = config(&dir8);
    c8.threads = 8;
    let s1 = run(&c1).expect("single-threaded run");
    let s8 = run(&c8).expect("eight-threaded run");
    assert_eq!(s1.scenarios, u64::from(SHARDS * PER_SHARD));
    assert_eq!(s1, s8, "summaries must match exactly");
    let b1 = concatenated_verdicts(&dir1, SHARDS).expect("read 1-thread stream");
    let b8 = concatenated_verdicts(&dir8, SHARDS).expect("read 8-thread stream");
    assert!(!b1.is_empty());
    assert_eq!(b1, b8, "verdict bytes must not depend on thread count");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir8);
}

#[test]
fn killed_run_resumes_to_identical_bytes() {
    let full_dir = tmp_dir("uninterrupted");
    let resumed_dir = tmp_dir("resumed");
    let full = run(&config(&full_dir)).expect("uninterrupted run");
    assert!(!full.stopped_early);

    // "Kill" the second run mid-shard: 13 scenarios is inside shard 0
    // (30 per shard) and not on a batch boundary of 7.
    let mut first_leg = config(&resumed_dir);
    first_leg.stop_after = Some(13);
    let partial = run(&first_leg).expect("first leg");
    assert!(partial.stopped_early, "stop_after must report early stop");
    assert!(partial.scenarios < full.scenarios);

    // Simulate a crash that appended bytes the checkpoint never claimed:
    // resume must truncate the torn tail, not double-count it.
    let shard0 = resumed_dir.join("shard-0000.jsonl");
    let mut f = std::fs::OpenOptions::new()
        .append(true)
        .open(&shard0)
        .expect("open shard 0");
    f.write_all(b"{\"torn\":")
        .and_then(|()| f.sync_all())
        .expect("append torn tail");

    let resumed = run(&config(&resumed_dir)).expect("resume leg");
    assert!(!resumed.stopped_early);
    assert_eq!(resumed, full, "resumed summary must equal uninterrupted");
    let a = concatenated_verdicts(&full_dir, SHARDS).expect("read full");
    let b = concatenated_verdicts(&resumed_dir, SHARDS).expect("read resumed");
    assert_eq!(a, b, "kill-then-resume must reproduce the exact bytes");
    let _ = std::fs::remove_dir_all(&full_dir);
    let _ = std::fs::remove_dir_all(&resumed_dir);
}

#[test]
fn injected_fault_yields_a_replayable_reproducer() {
    let dir = tmp_dir("fault");
    let mut c = config(&dir);
    // Find a scenario address the sweep cross-checks anyway is not
    // required — a targeted fault forces the cross-check at its address.
    // Pick an address whose scenario is comfortably feasible so the
    // poisoned SQP visibly diverges; scan a few indices for one that
    // produces a discrepancy.
    let mut hit = None;
    for index in 0..PER_SHARD {
        let mut probe = c.clone();
        probe.out_dir = tmp_dir("fault-probe");
        probe.per_shard = 1; // unused; we call the diff layer directly below
        let id = oftec_fleet::scenario::ScenarioId {
            run_seed: oftec_fleet::rng::Seed(SEED),
            shard: 1,
            index,
        };
        let spec = oftec_fleet::scenario::ScenarioSpec::generate(id);
        let plan = FaultPlan {
            target: FaultTarget::Sqp,
            kind: FaultKindSpec::NonFinite,
            fail_at: 0,
        };
        if let Ok(system) = spec.build() {
            let report = oftec_fleet::diff::cross_check(&system, &c.policy, Some(&plan));
            if !report.failures.is_empty() {
                hit = Some((index, plan));
                break;
            }
        }
        let _ = std::fs::remove_dir_all(&probe.out_dir);
    }
    let (index, plan) = hit.expect("population contains fault-sensitive scenarios");

    c.fault = Some(TargetedFault {
        shard: 1,
        index,
        plan,
    });
    let summary = run(&c).expect("faulted run");
    assert!(
        summary.discrepancies > 0,
        "injected fault must surface as a discrepancy"
    );
    assert!(
        !summary.repro_files.is_empty(),
        "discrepancy must be minimized into a reproducer"
    );
    let repro_path = dir.join(&summary.repro_files[0]);
    let text = std::fs::read_to_string(&repro_path).expect("read reproducer");
    let case: ReproCase = serde_json::from_str(&text).expect("parse reproducer");
    assert_eq!(case.fault, Some(plan), "reproducer must carry the fault");
    assert!(
        !case.replay().is_empty(),
        "reproducer must still reproduce on replay"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
