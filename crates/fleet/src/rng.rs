//! Seeded streams for the scenario generator.
//!
//! Every random choice in the fleet engine derives from a splitmix64
//! stream keyed by the scenario's `(run_seed, shard, index)` address —
//! no wall clock, no process state, no thread identity. Two runs with the
//! same address produce bit-identical scenarios on any machine at any
//! `OFTEC_THREADS` setting.

use serde::{Deserialize, Serialize, Value};

/// A 64-bit seed that serializes as a hex string.
///
/// The vendored serde stand-in routes integers through `f64`, which
/// silently rounds values above 2⁵³; seeds span the full `u64` range, so
/// they travel as `"0x…"` strings instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Seed(pub u64);

impl Serialize for Seed {
    fn serialize(&self) -> Value {
        Value::Str(format!("{:#018x}", self.0))
    }
}

impl Deserialize for Seed {
    fn deserialize(v: &Value) -> Result<Self, serde::Error> {
        let s = v
            .as_str()
            .ok_or_else(|| serde::Error::msg("seed must be a hex string"))?;
        let digits = s.strip_prefix("0x").unwrap_or(s);
        u64::from_str_radix(digits, 16)
            .map(Seed)
            .map_err(|_| serde::Error::msg(format!("invalid seed `{s}`")))
    }
}

impl core::fmt::Display for Seed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

/// One step of the splitmix64 output function (Steele, Lea & Flood 2014):
/// a bijective avalanche over the incremented Weyl state.
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A splitmix64 generator: the Weyl-increment state plus the avalanche
/// output function. Tiny, full-period, and trivially forkable — exactly
/// what addressable scenario streams need.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }

    /// Uniform draw in `[0, 1)` using the top 53 bits.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform draw in `0..n` (`n > 0`) via Lemire's multiply-shift; the
    /// modulo bias is below 2⁻³² for every `n` this crate uses.
    pub fn below(&mut self, n: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// The seed of the scenario stream at address `(run_seed, shard, index)`.
///
/// Each coordinate passes through the avalanche before mixing so that
/// neighbouring addresses land in unrelated parts of the stream space
/// (plain XOR of small integers would put shard 0/index 1 and shard
/// 1/index 0 one Weyl step apart).
pub fn scenario_seed(run_seed: u64, shard: u32, index: u32) -> u64 {
    let a = splitmix64(run_seed);
    let b = splitmix64(a ^ ((u64::from(shard) << 32) | u64::from(index)));
    splitmix64(b ^ 0x5fee_7a11_f1ee_75ca)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_draws_stay_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.range_f64(35.0, 50.0);
            assert!((35.0..50.0).contains(&y));
            assert!(r.below(5) < 5);
        }
    }

    #[test]
    fn scenario_seeds_differ_across_addresses() {
        let base = scenario_seed(1, 0, 0);
        assert_ne!(base, scenario_seed(1, 0, 1));
        assert_ne!(base, scenario_seed(1, 1, 0));
        assert_ne!(base, scenario_seed(2, 0, 0));
        // The transposed-coordinate collision the avalanche exists to kill.
        assert_ne!(scenario_seed(1, 0, 1), scenario_seed(1, 1, 0));
    }

    #[test]
    fn seed_round_trips_through_json() {
        let s = Seed(u64::MAX - 12345);
        let json = serde_json::to_string(&s).unwrap();
        let back: Seed = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
