//! Discrepancy minimization: shrinks an out-of-tolerance scenario into
//! the smallest spec that still disagrees, and packages it as a
//! self-contained reproducer.
//!
//! The shrink loop is a deterministic fixpoint over a fixed candidate
//! order (coarser thermal grid first — it dominates solve cost — then
//! fewer tiles, smaller power, no exclusions). A candidate is accepted
//! only if the rebuilt scenario still produces at least one discrepancy
//! under the same policy and fault plan, so the reproducer always fails
//! for the same *family* of reasons the original did.

use crate::diff::{cross_check, Discrepancy, FaultPlan};
use crate::scenario::{ScenarioSpec, MIN_POWER_SCALE, MIN_THERMAL_CELLS, MIN_TILES};
use crate::tolerance::TolerancePolicy;
use serde::{Deserialize, Serialize};

/// Total power (W) below which the minimizer stops halving.
const MIN_TOTAL_POWER_W: f64 = 10.0;

/// Cap on shrink attempts; the candidate ladder is short, so the fixpoint
/// lands well under this in practice.
const MAX_ATTEMPTS: u32 = 40;

/// A self-contained reproducer: everything `oftec-fleet repro` needs to
/// replay the disagreement on a clean checkout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproCase {
    /// The (minimized) scenario.
    pub spec: ScenarioSpec,
    /// The injected fault, when the discrepancy came from fault-injection
    /// testing rather than a genuine solver divergence.
    pub fault: Option<FaultPlan>,
    /// The tolerance policy the check ran under.
    pub policy: TolerancePolicy,
    /// The discrepancies the minimized spec still produces.
    pub failures: Vec<Discrepancy>,
    /// Accepted shrink steps between the original and minimized spec.
    pub minimize_steps: u32,
}

impl ReproCase {
    /// Replays the case: rebuilds the spec and re-runs the cross-check.
    /// Returns the discrepancies found now (empty = no longer reproduces).
    pub fn replay(&self) -> Vec<Discrepancy> {
        check(&self.spec, self.fault.as_ref(), &self.policy)
    }
}

/// Cross-checks one spec; a spec that fails to build reproduces nothing.
fn check(
    spec: &ScenarioSpec,
    fault: Option<&FaultPlan>,
    policy: &TolerancePolicy,
) -> Vec<Discrepancy> {
    match spec.build() {
        Ok(system) => cross_check(&system, policy, fault).failures,
        Err(_) => Vec::new(),
    }
}

/// The shrink ladder: each rung returns `Some(smaller)` when it applies.
fn candidates(spec: &ScenarioSpec) -> Vec<ScenarioSpec> {
    let mut out = Vec::new();
    if spec.thermal_cells > MIN_THERMAL_CELLS {
        let mut s = spec.clone();
        s.thermal_cells -= 1;
        out.push(s);
    }
    if spec.tiles > MIN_TILES {
        let mut s = spec.clone();
        s.tiles -= 1;
        // Keep the exclusion count valid for the smaller grid.
        s.tec_exclusions = s.tec_exclusions.min(s.tiles * s.tiles / 3);
        out.push(s);
    }
    if spec.power_scale > MIN_POWER_SCALE {
        let mut s = spec.clone();
        s.power_scale = (s.power_scale * 0.5).max(MIN_POWER_SCALE);
        out.push(s);
    }
    if spec.tec_exclusions > 0 {
        let mut s = spec.clone();
        s.tec_exclusions = 0;
        out.push(s);
    }
    if spec.total_power_w > MIN_TOTAL_POWER_W {
        let mut s = spec.clone();
        s.total_power_w = (s.total_power_w * 0.5).max(MIN_TOTAL_POWER_W);
        out.push(s);
    }
    out
}

/// Minimizes `spec` into a [`ReproCase`], or `None` when the spec does not
/// actually produce a discrepancy under `policy` (nothing to reproduce).
pub fn minimize(
    spec: &ScenarioSpec,
    fault: Option<&FaultPlan>,
    policy: &TolerancePolicy,
) -> Option<ReproCase> {
    let mut failures = check(spec, fault, policy);
    if failures.is_empty() {
        return None;
    }
    let mut current = spec.clone();
    let mut steps = 0u32;
    let mut attempts = 0u32;
    // Fixpoint: restart the ladder after every accepted shrink so earlier
    // (higher-value) rungs get another chance on the smaller spec.
    'outer: loop {
        for candidate in candidates(&current) {
            if attempts >= MAX_ATTEMPTS {
                break 'outer;
            }
            attempts += 1;
            let candidate_failures = check(&candidate, fault, policy);
            if !candidate_failures.is_empty() {
                current = candidate;
                failures = candidate_failures;
                steps += 1;
                oftec_telemetry::counter_add("fleet.minimize.steps", 1);
                continue 'outer;
            }
        }
        break;
    }
    Some(ReproCase {
        spec: current,
        fault: fault.copied(),
        policy: *policy,
        failures,
        minimize_steps: steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diff::{FaultKindSpec, FaultTarget};
    use crate::rng::Seed;
    use crate::scenario::ScenarioId;

    #[test]
    fn clean_scenario_yields_no_case() {
        // A spec whose cross-check is clean has nothing to minimize.
        let spec = (0..40)
            .map(|i| {
                ScenarioSpec::generate(ScenarioId {
                    run_seed: Seed(13),
                    shard: 0,
                    index: i,
                })
            })
            .find(|s| check(s, None, &TolerancePolicy::default()).is_empty())
            .expect("population contains clean scenarios");
        assert!(minimize(&spec, None, &TolerancePolicy::default()).is_none());
    }

    #[test]
    fn injected_fault_minimizes_to_a_stable_reproducer() {
        let plan = FaultPlan {
            target: FaultTarget::Sqp,
            kind: FaultKindSpec::NonFinite,
            fail_at: 0,
        };
        let policy = TolerancePolicy::default();
        // Find a spec where the injected fault actually produces a
        // discrepancy (comfortably feasible scenarios).
        let spec = (0..60)
            .map(|i| {
                ScenarioSpec::generate(ScenarioId {
                    run_seed: Seed(29),
                    shard: 0,
                    index: i,
                })
            })
            .find(|s| !check(s, Some(&plan), &policy).is_empty())
            .expect("population contains fault-sensitive scenarios");
        let a = minimize(&spec, Some(&plan), &policy).expect("case exists");
        let b = minimize(&spec, Some(&plan), &policy).expect("case exists");
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap(),
            "minimization must be deterministic"
        );
        // The minimized case replays: the discrepancy is self-contained.
        assert!(!a.replay().is_empty(), "reproducer must still reproduce");
        // Shrinking never grows the spec.
        assert!(a.spec.thermal_cells <= spec.thermal_cells);
        assert!(a.spec.total_power_w <= spec.total_power_w);
    }

    #[test]
    fn repro_case_round_trips_through_json() {
        let spec = ScenarioSpec::generate(ScenarioId {
            run_seed: Seed(1),
            shard: 0,
            index: 0,
        });
        let case = ReproCase {
            spec,
            fault: Some(FaultPlan {
                target: FaultTarget::Reduced,
                kind: FaultKindSpec::Error,
                fail_at: 2,
            }),
            policy: TolerancePolicy::default(),
            failures: vec![Discrepancy {
                check: "reduced_vs_full".to_owned(),
                measured: Some(1.5),
                allowed: 0.1,
                detail: "probe 0".to_owned(),
            }],
            minimize_steps: 3,
        };
        let json = serde_json::to_string(&case).unwrap();
        let back: ReproCase = serde_json::from_str(&json).unwrap();
        assert_eq!(case, back);
    }
}
