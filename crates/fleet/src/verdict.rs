//! The per-scenario verdict: the compact JSONL record the batch runner
//! streams, and the solve logic that produces it.

use crate::scenario::{ScenarioClass, ScenarioId, ScenarioSpec};
use oftec::{Oftec, OftecOutcome};
use serde::{Deserialize, Serialize};

/// How many thermal evaluations a verdict-only hybrid solve is expected
/// to spend. Below the POD amortization point (≈ 44 evaluations, see
/// BENCH_reduction.json), so verdict solves take the full path and skip
/// the basis build; cross-checked scenarios use
/// [`CROSS_CHECK_EVAL_BUDGET`] instead and amortize the build across the
/// four optimizers.
pub const VERDICT_EVAL_BUDGET: usize = 40;

/// Eval-budget hint for cross-checked scenarios: four optimizer runs plus
/// the reduced-vs-full probes comfortably amortize a basis build.
pub const CROSS_CHECK_EVAL_BUDGET: usize = 400;

/// The five-way verdict partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerdictKind {
    /// A fan-only scenario met `T_max` (no TEC decision existed).
    Feasible,
    /// The fan-only baseline met `T_max`; TECs unnecessary.
    FanOnly,
    /// The fan-only baseline failed but the hybrid assembly met `T_max`.
    TecRequired,
    /// No operating point meets `T_max` (certified infeasible or true
    /// thermal runaway — `best_temp_c` distinguishes the two).
    Runaway,
    /// A typed solver/model fault prevented a verdict.
    SolverError,
}

impl VerdictKind {
    /// Stable lower-snake name used in JSONL lines and counters.
    pub fn name(self) -> &'static str {
        match self {
            VerdictKind::Feasible => "feasible",
            VerdictKind::FanOnly => "fan_only",
            VerdictKind::TecRequired => "tec_required",
            VerdictKind::Runaway => "runaway",
            VerdictKind::SolverError => "solver_error",
        }
    }

    /// All five kinds, in partition order.
    pub const ALL: [VerdictKind; 5] = [
        VerdictKind::Feasible,
        VerdictKind::FanOnly,
        VerdictKind::TecRequired,
        VerdictKind::Runaway,
        VerdictKind::SolverError,
    ];
}

/// One scenario's verdict — one compact JSONL line in the shard stream.
///
/// Field order is the wire order; every field is a deterministic function
/// of the scenario address, so the serialized line is byte-identical at
/// any thread count. (No wall-clock fields, by construction.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Verdict {
    /// The scenario's address.
    pub id: ScenarioId,
    /// Population class.
    pub class: ScenarioClass,
    /// The verdict partition.
    pub verdict: VerdictKind,
    /// Maximum die temperature in °C at the returned operating point
    /// (best achievable temperature for `Runaway`; absent on faults).
    pub max_temp_c: Option<f64>,
    /// Cooling power 𝒫 in watts at the optimum (absent unless optimized).
    pub cooling_power_w: Option<f64>,
    /// Steady-solve path the hybrid verdict used: `reduced`, `full`, or
    /// `fan` when the hybrid model never ran.
    pub solve_path: String,
    /// Thermal solves spent on the verdict.
    pub thermal_solves: u64,
    /// Whether the differential-fuzzing layer ran on this scenario.
    pub cross_checked: bool,
    /// Out-of-tolerance discrepancies found by the fuzzing layer.
    pub discrepancies: u32,
    /// The typed fault behind a `solver_error` verdict.
    pub error: Option<String>,
}

/// Computes the verdict for `spec`'s scenario, building the cooling
/// system from the spec.
///
/// The hybrid solve consumes `hybrid_budget` as its eval-budget hint (see
/// [`VERDICT_EVAL_BUDGET`]): short budgets take the full path rather than
/// paying for a POD basis they cannot amortize.
pub fn solve_verdict(spec: &ScenarioSpec, hybrid_budget: usize) -> Verdict {
    match spec.build() {
        Ok(system) => solve_verdict_on(&system, spec, hybrid_budget),
        Err(e) => {
            let mut verdict = empty_verdict(spec);
            verdict.error = Some(e.to_string());
            verdict
        }
    }
}

fn empty_verdict(spec: &ScenarioSpec) -> Verdict {
    Verdict {
        id: spec.id,
        class: spec.class,
        verdict: VerdictKind::SolverError,
        max_temp_c: None,
        cooling_power_w: None,
        solve_path: "fan".to_owned(),
        thermal_solves: 0,
        cross_checked: false,
        discrepancies: 0,
        error: None,
    }
}

/// [`solve_verdict`] on an already-built system — the batch runner builds
/// each scenario once and shares the system (and its cached POD basis)
/// between the verdict solve and the differential cross-check.
pub fn solve_verdict_on(
    system: &oftec::CoolingSystem,
    spec: &ScenarioSpec,
    hybrid_budget: usize,
) -> Verdict {
    let mut verdict = empty_verdict(spec);
    let oftec = Oftec::default();
    let fan = oftec.run_on_model(system.fan_model(), system.t_max());
    match (&fan, spec.class) {
        (Ok(OftecOutcome::Optimized(sol)), ScenarioClass::SyntheticFanOnly) => {
            verdict.verdict = VerdictKind::Feasible;
            verdict.max_temp_c = Some(sol.max_temperature.celsius());
            verdict.cooling_power_w = Some(sol.cooling_power.watts());
            verdict.thermal_solves = sol.thermal_solves as u64;
        }
        (Ok(OftecOutcome::Optimized(sol)), _) => {
            verdict.verdict = VerdictKind::FanOnly;
            verdict.max_temp_c = Some(sol.max_temperature.celsius());
            verdict.cooling_power_w = Some(sol.cooling_power.watts());
            verdict.thermal_solves = sol.thermal_solves as u64;
        }
        (Ok(OftecOutcome::Infeasible(report)), ScenarioClass::SyntheticFanOnly) => {
            match &report.solver_error {
                Some(err) => {
                    verdict.verdict = VerdictKind::SolverError;
                    verdict.error = Some(err.clone());
                }
                None => {
                    verdict.verdict = VerdictKind::Runaway;
                    verdict.max_temp_c = Some(report.best_temperature.celsius());
                }
            }
        }
        (Err(e), ScenarioClass::SyntheticFanOnly) => {
            verdict.verdict = VerdictKind::SolverError;
            verdict.error = Some(e.to_string());
        }
        // TEC-capable scenario whose fan baseline failed (or faulted):
        // the hybrid assembly decides.
        _ => {
            let model = system.reduced_tec_model_with_budget(hybrid_budget);
            verdict.solve_path = if model.reduced_model().is_some() {
                "reduced".to_owned()
            } else {
                "full".to_owned()
            };
            match oftec.run_on_model(&model, system.t_max()) {
                Ok(OftecOutcome::Optimized(sol)) => {
                    verdict.verdict = VerdictKind::TecRequired;
                    verdict.max_temp_c = Some(sol.max_temperature.celsius());
                    verdict.cooling_power_w = Some(sol.cooling_power.watts());
                    verdict.thermal_solves = sol.thermal_solves as u64;
                }
                Ok(OftecOutcome::Infeasible(report)) => match &report.solver_error {
                    Some(err) => {
                        verdict.verdict = VerdictKind::SolverError;
                        verdict.error = Some(err.clone());
                    }
                    None => {
                        verdict.verdict = VerdictKind::Runaway;
                        verdict.max_temp_c = Some(report.best_temperature.celsius());
                    }
                },
                Err(e) => {
                    verdict.verdict = VerdictKind::SolverError;
                    verdict.error = Some(e.to_string());
                }
            }
        }
    }
    // The JSONL writer rejects non-finite floats; a poisoned value that
    // slipped past the solver's screens degrades to "absent", never to a
    // write error that would sink the shard.
    if verdict.max_temp_c.is_some_and(|t| !t.is_finite()) {
        verdict.max_temp_c = None;
    }
    if verdict.cooling_power_w.is_some_and(|p| !p.is_finite()) {
        verdict.cooling_power_w = None;
    }
    verdict
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;

    fn spec(index: u32) -> ScenarioSpec {
        ScenarioSpec::generate(ScenarioId {
            run_seed: Seed(42),
            shard: 0,
            index,
        })
    }

    #[test]
    fn verdicts_are_deterministic_and_serializable() {
        for index in 0..6 {
            let s = spec(index);
            let a = solve_verdict(&s, VERDICT_EVAL_BUDGET);
            let b = solve_verdict(&s, VERDICT_EVAL_BUDGET);
            assert_eq!(
                serde_json::to_string(&a).unwrap(),
                serde_json::to_string(&b).unwrap(),
                "index {index}"
            );
            let back: Verdict = serde_json::from_str(&serde_json::to_string(&a).unwrap()).unwrap();
            assert_eq!(a, back);
        }
    }

    #[test]
    fn verdict_names_are_stable() {
        let names: Vec<_> = VerdictKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            [
                "feasible",
                "fan_only",
                "tec_required",
                "runaway",
                "solver_error"
            ]
        );
    }

    #[test]
    fn short_budget_takes_the_full_path() {
        // Find a scenario whose fan baseline fails so the hybrid runs.
        let s = (0..40)
            .map(spec)
            .find(|s| {
                let v = solve_verdict(s, VERDICT_EVAL_BUDGET);
                v.verdict == VerdictKind::TecRequired
            })
            .expect("population contains TEC-required scenarios");
        let v = solve_verdict(&s, VERDICT_EVAL_BUDGET);
        assert_eq!(v.solve_path, "full", "short budget must skip the POD build");
        let v = solve_verdict(&s, CROSS_CHECK_EVAL_BUDGET);
        assert_eq!(v.solve_path, "reduced", "large budget must build");
    }
}
