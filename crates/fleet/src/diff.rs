//! The differential-fuzzing layer: cross-checks the four optimizers and
//! the reduced/full steady-solve paths on one scenario under the typed
//! [`TolerancePolicy`].
//!
//! Grid search is the trusted oracle (exhaustive over the 2-D box, every
//! returned point feasible by construction); the three NLP methods and
//! the reduced-order path are the subjects. A [`FaultPlan`] can wrap one
//! subject in the PR-3 [`FaultyModel`] harness so tests and the CI gate
//! can prove an injected divergence is caught, minimized and replayed.

use crate::tolerance::TolerancePolicy;
use crate::verdict::CROSS_CHECK_EVAL_BUDGET;
use oftec::faults::{FaultKind, FaultyModel};
use oftec::problems::{CoolingObjective, CoolingProblem};
use oftec::CoolingSystem;
use oftec_optim::{ActiveSetSqp, GridSearch, InteriorPoint, NlpProblem, SolveOptions, TrustRegion};
use oftec_thermal::CoolingModel;
use serde::{Deserialize, Serialize};

/// Which differential subject a [`FaultPlan`] corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultTarget {
    /// The model evaluated by the active-set SQP run.
    Sqp,
    /// The model evaluated by the interior-point run.
    InteriorPoint,
    /// The model evaluated by the trust-region run.
    TrustRegion,
    /// The reduced-order path of the reduced-vs-full probes.
    Reduced,
}

/// Which corruption the [`FaultyModel`] wrapper injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKindSpec {
    /// NaN-poisoned solutions (a silently corrupted solver).
    NonFinite,
    /// Typed `ThermalError`s.
    Error,
    /// Mid-solve panics (contained by the evaluation boundary).
    Panic,
}

impl FaultKindSpec {
    fn kind(self) -> FaultKind {
        match self {
            FaultKindSpec::NonFinite => FaultKind::NonFinite,
            FaultKindSpec::Error => FaultKind::Error,
            FaultKindSpec::Panic => FaultKind::Panic,
        }
    }
}

/// A seeded fault injection: corrupt `target` with `kind` from solve call
/// `fail_at` on (sticky, like [`FaultyModel::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The corrupted subject.
    pub target: FaultTarget,
    /// The injected corruption.
    pub kind: FaultKindSpec,
    /// Zero-based solve-call index at which the fault starts firing.
    pub fail_at: u32,
}

/// One out-of-tolerance disagreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrepancy {
    /// Which check failed (stable snake-case name).
    pub check: String,
    /// The measured quantity (absent when the subject produced nothing
    /// measurable, e.g. a poisoned solver with no feasible endpoint).
    pub measured: Option<f64>,
    /// The policy bound the measurement violated.
    pub allowed: f64,
    /// Human-readable context.
    pub detail: String,
}

/// Outcome of one scenario's cross-check.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CrossCheckReport {
    /// Checks that actually ran (boundary-riding scenarios skip some).
    pub checks_run: u32,
    /// Out-of-tolerance disagreements.
    pub failures: Vec<Discrepancy>,
}

impl CrossCheckReport {
    /// `true` when every executed check stayed within tolerance.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

fn solve_options() -> SolveOptions {
    SolveOptions {
        max_iterations: 60,
        tolerance: 1e-6,
    }
}

/// `Some(x)` if finite, else `None` (the JSONL writer rejects NaN/inf).
fn finite(x: f64) -> Option<f64> {
    x.is_finite().then_some(x)
}

/// Out-of-tolerance test that treats NaN as a violation: a poisoned
/// solver must not slip through on an incomparable measurement.
fn exceeds(measured: f64, bound: f64) -> bool {
    measured.is_nan() || measured > bound
}

/// The strictly feasible objective at `x`, by the paper's real constraint
/// (`T < T_max`), mirroring the seed cross-solver tests.
fn feasible_power<M: CoolingModel>(
    p: &CoolingProblem<'_, M>,
    x: &[f64],
    t_max: oftec_units::Temperature,
) -> Option<f64> {
    let t = p.max_temperature(x)?;
    if t.kelvin() < t_max.kelvin() {
        p.objective(x)
    } else {
        None
    }
}

/// One NLP subject's result: its best strictly feasible objective, if any.
struct SubjectRun {
    name: &'static str,
    feasible_objective: Option<f64>,
}

/// Runs one NLP subject on (a possibly fault-wrapped view of) the model.
fn run_subject<M: CoolingModel>(
    name: &'static str,
    model: &M,
    t_max: oftec_units::Temperature,
    solver: Solver,
) -> SubjectRun {
    let problem = CoolingProblem::new(model, CoolingObjective::Power, t_max);
    let x0 = vec![0.5; problem.dim()];
    let opts = solve_options();
    let result = match solver {
        Solver::Sqp => ActiveSetSqp::default().solve(&problem, &x0, &opts),
        Solver::InteriorPoint => InteriorPoint::default().solve(&problem, &x0, &opts),
        Solver::TrustRegion => TrustRegion::default().solve(&problem, &x0, &opts),
    };
    let feasible_objective = result
        .ok()
        .and_then(|r| feasible_power(&problem, &r.x, t_max))
        .or_else(|| feasible_power(&problem, &x0, t_max));
    SubjectRun {
        name,
        feasible_objective,
    }
}

enum Solver {
    Sqp,
    InteriorPoint,
    TrustRegion,
}

/// Cross-checks every solver path on `system`'s hybrid model under
/// `policy`, optionally corrupting one subject per `fault`.
pub fn cross_check(
    system: &CoolingSystem,
    policy: &TolerancePolicy,
    fault: Option<&FaultPlan>,
) -> CrossCheckReport {
    let mut report = CrossCheckReport {
        checks_run: 0,
        failures: Vec::new(),
    };
    let full = system.tec_model();
    let t_max = system.t_max();

    // Ground truth: exhaustive grid search on the clean full model.
    let grid_problem = CoolingProblem::new(full, CoolingObjective::Power, t_max);
    let x0 = vec![0.5; grid_problem.dim()];
    let grid = GridSearch {
        points_per_dim: 17,
        ..GridSearch::default()
    }
    .solve(&grid_problem, &x0, &solve_options());
    let Ok(grid) = grid else {
        // No feasible grid point: the scenario is (close to) infeasible
        // and small feasible islands below the 17×17 resolution cannot be
        // distinguished from solver luck — the NLP comparisons are
        // skipped rather than risking a false alarm. The reduced/full
        // probes below still run.
        report.checks_run += 1;
        check_reduced_vs_full(
            system,
            policy,
            fault,
            std::slice::from_ref(&x0),
            &mut report,
        );
        return report;
    };
    let grid_temp = grid_problem
        .max_temperature(&grid.x)
        .map_or(f64::MAX, |t| t.kelvin());
    let comfortable = grid_temp < t_max.kelvin() - policy.solver_must_succeed_margin_k;

    // The three NLP subjects, one of them possibly fault-wrapped.
    let wrap = |target: FaultTarget, name: &'static str, solver: Solver| -> SubjectRun {
        match fault {
            Some(plan) if plan.target == target => {
                let faulty = FaultyModel::new(full, plan.kind.kind(), plan.fail_at as usize);
                run_subject(name, &faulty, t_max, solver)
            }
            _ => run_subject(name, full, t_max, solver),
        }
    };
    let subjects = [
        wrap(FaultTarget::Sqp, "sqp", Solver::Sqp),
        wrap(
            FaultTarget::InteriorPoint,
            "interior_point",
            Solver::InteriorPoint,
        ),
        wrap(
            FaultTarget::TrustRegion,
            "trust_region",
            Solver::TrustRegion,
        ),
    ];

    // Check 1: each subject vs the grid oracle.
    for s in &subjects {
        report.checks_run += 1;
        match s.feasible_objective {
            Some(p) => {
                let gap = (p - grid.objective) / grid.objective;
                let bound = if s.name == "sqp" {
                    policy.sqp_grid_rel_gap
                } else {
                    // IP/TR carry the looser cross-method bound vs the
                    // oracle; the tight pairwise bound is check 2.
                    policy.sqp_grid_rel_gap + policy.nlp_rel_gap
                };
                if exceeds(gap, bound) {
                    report.failures.push(Discrepancy {
                        check: format!("{}_vs_grid", s.name),
                        measured: finite(gap),
                        allowed: bound,
                        detail: format!(
                            "{} found {:.4} W vs grid {:.4} W",
                            s.name, p, grid.objective
                        ),
                    });
                }
            }
            None if comfortable => {
                report.failures.push(Discrepancy {
                    check: format!("{}_missing_feasible", s.name),
                    measured: None,
                    allowed: policy.solver_must_succeed_margin_k,
                    detail: format!(
                        "{} found no strictly feasible point while the grid \
                         optimum sits {:.2} K below T_max",
                        s.name,
                        t_max.kelvin() - grid_temp
                    ),
                });
            }
            None => {} // boundary-riding scenario: absence is not evidence
        }
    }

    // Check 2: mutual spread of the NLP methods.
    let feasible: Vec<(&str, f64)> = subjects
        .iter()
        .filter_map(|s| s.feasible_objective.map(|p| (s.name, p)))
        .collect();
    if feasible.len() >= 2 {
        report.checks_run += 1;
        let min = feasible
            .iter()
            .map(|(_, p)| *p)
            .fold(f64::INFINITY, f64::min);
        let max = feasible.iter().map(|(_, p)| *p).fold(0.0_f64, f64::max);
        let spread = (max - min) / min;
        if exceeds(spread, policy.nlp_rel_gap) {
            report.failures.push(Discrepancy {
                check: "nlp_spread".to_owned(),
                measured: finite(spread),
                allowed: policy.nlp_rel_gap,
                detail: feasible
                    .iter()
                    .map(|(n, p)| format!("{n} {p:.4} W"))
                    .collect::<Vec<_>>()
                    .join(", "),
            });
        }
    }

    // Check 3: the continuum must beat or match the discrete oracle.
    if let Some(sqp_p) = subjects[0].feasible_objective {
        report.checks_run += 1;
        let headroom = sqp_p / grid.objective - 1.0;
        if exceeds(headroom, policy.continuous_headroom) {
            report.failures.push(Discrepancy {
                check: "continuous_headroom".to_owned(),
                measured: finite(headroom),
                allowed: policy.continuous_headroom,
                detail: format!(
                    "SQP (continuous) {:.4} W above grid (discrete) {:.4} W",
                    sqp_p, grid.objective
                ),
            });
        }
    }

    // Check 4: reduced vs full steady solves at deterministic probes.
    let probes = [x0.clone(), grid.x.clone(), vec![0.75, 0.25]];
    check_reduced_vs_full(system, policy, fault, &probes, &mut report);

    report
}

/// Solves each probe point on the full and the reduced path and compares
/// maximum die temperatures under the policy bound.
fn check_reduced_vs_full(
    system: &CoolingSystem,
    policy: &TolerancePolicy,
    fault: Option<&FaultPlan>,
    probes: &[Vec<f64>],
    report: &mut CrossCheckReport,
) {
    let full = system.tec_model();
    let t_max = system.t_max();
    let reduced = system.reduced_tec_model_with_budget(CROSS_CHECK_EVAL_BUDGET);
    // The probe coordinates are in the problem's scaled space; decode
    // through a problem built on the full model.
    let problem = CoolingProblem::new(full, CoolingObjective::Power, t_max);
    for (i, probe) in probes.iter().enumerate() {
        report.checks_run += 1;
        let op = problem.operating_point(probe);
        let full_t = full
            .solve(op)
            .ok()
            .map(|s| s.max_chip_temperature().kelvin());
        let reduced_t = match fault {
            Some(plan) if plan.target == FaultTarget::Reduced => {
                let faulty = FaultyModel::new(&reduced, plan.kind.kind(), plan.fail_at as usize);
                solve_contained(&faulty, op)
            }
            _ => solve_contained(&reduced, op),
        };
        match (full_t, reduced_t) {
            (Some(f), Some(r)) => {
                let diff = (f - r).abs();
                if exceeds(diff, policy.reduced_full_max_temp_k) {
                    report.failures.push(Discrepancy {
                        check: "reduced_vs_full".to_owned(),
                        measured: finite(diff),
                        allowed: policy.reduced_full_max_temp_k,
                        detail: format!(
                            "probe {i}: full {f:.3} K vs reduced {r:.3} K at \
                             ω = {:.0} RPM, I = {:.2} A",
                            op.fan_speed.rpm(),
                            op.tec_current.amperes()
                        ),
                    });
                }
            }
            (Some(f), None) => {
                report.failures.push(Discrepancy {
                    check: "reduced_vs_full".to_owned(),
                    measured: None,
                    allowed: policy.reduced_full_max_temp_k,
                    detail: format!(
                        "probe {i}: full path solved ({f:.3} K) but the \
                         reduced path returned no finite solution"
                    ),
                });
            }
            // Full path failing is a scenario property (runaway probe),
            // not a divergence — both paths see the same physics.
            _ => {}
        }
    }
}

/// A steady solve behind a panic boundary and a finite screen: `None` for
/// errors, panics, and poisoned solutions alike.
fn solve_contained<M: CoolingModel>(model: &M, op: oftec_thermal::OperatingPoint) -> Option<f64> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| model.solve(op)));
    match caught {
        Ok(Ok(sol)) => finite(sol.max_chip_temperature().kelvin()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Seed;
    use crate::scenario::{ScenarioId, ScenarioSpec};

    fn feasible_system() -> CoolingSystem {
        // A scenario with a comfortably feasible optimum: the clean checks
        // must pass and the injected-fault checks must fail.
        (0..60)
            .map(|i| {
                ScenarioSpec::generate(ScenarioId {
                    run_seed: Seed(21),
                    shard: 0,
                    index: i,
                })
            })
            .filter_map(|s| s.build().ok())
            .find(|sys| {
                let p = CoolingProblem::new(sys.tec_model(), CoolingObjective::Power, sys.t_max());
                p.max_temperature(&[0.5, 0.5])
                    .is_some_and(|t| t.kelvin() < sys.t_max().kelvin() - 3.0)
            })
            .expect("population contains comfortably feasible scenarios")
    }

    #[test]
    fn clean_scenario_is_clean() {
        let system = feasible_system();
        let report = cross_check(&system, &TolerancePolicy::default(), None);
        assert!(report.checks_run >= 5, "ran {} checks", report.checks_run);
        assert!(report.clean(), "unexpected failures: {:?}", report.failures);
    }

    #[test]
    fn injected_sqp_fault_is_caught() {
        let system = feasible_system();
        let plan = FaultPlan {
            target: FaultTarget::Sqp,
            kind: FaultKindSpec::NonFinite,
            fail_at: 0,
        };
        let report = cross_check(&system, &TolerancePolicy::default(), Some(&plan));
        assert!(
            report.failures.iter().any(|f| f.check.starts_with("sqp")),
            "fault not caught: {:?}",
            report.failures
        );
    }

    #[test]
    fn injected_reduced_fault_is_caught() {
        let system = feasible_system();
        let plan = FaultPlan {
            target: FaultTarget::Reduced,
            kind: FaultKindSpec::Error,
            fail_at: 0,
        };
        let report = cross_check(&system, &TolerancePolicy::default(), Some(&plan));
        assert!(
            report.failures.iter().any(|f| f.check == "reduced_vs_full"),
            "fault not caught: {:?}",
            report.failures
        );
    }

    #[test]
    fn reports_serialize() {
        let system = feasible_system();
        let report = cross_check(&system, &TolerancePolicy::default(), None);
        let json = serde_json::to_string(&report).unwrap();
        let back: CrossCheckReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
