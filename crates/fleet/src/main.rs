//! `oftec-fleet` — the fleet engine CLI.
//!
//! ```text
//! oftec-fleet run --seed 42 --shards 4 --per-shard 250 --out fleet-out
//! oftec-fleet repro fleet-out/repro_000000000000002a_1_17.json
//! oftec-fleet gen --seed 42 --shard 1 --index 17
//! ```
//!
//! Exit codes: `0` clean, `3` out-of-tolerance discrepancies found
//! (`run`), `2` a reproducer no longer reproduces (`repro`), `1` usage or
//! runtime error.

use oftec_fleet::diff::{FaultKindSpec, FaultPlan, FaultTarget};
use oftec_fleet::minimize::ReproCase;
use oftec_fleet::rng::Seed;
use oftec_fleet::runner::{run, RunConfig, TargetedFault};
use oftec_fleet::scenario::{ScenarioId, ScenarioSpec};

const USAGE: &str = "usage:
  oftec-fleet run [--seed N] [--shards N] [--per-shard N] [--out DIR]
                  [--threads N] [--batch N] [--cross-check-divisor N]
                  [--stop-after N] [--fault SHARD:INDEX:TARGET:KIND:FAIL_AT]
                  [--no-minimize]
  oftec-fleet repro FILE
  oftec-fleet gen [--seed N] [--shard N] [--index N]

  TARGET: sqp | interior_point | trust_region | reduced
  KIND:   non_finite | error | panic";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("repro") => cmd_repro(&args[1..]),
        Some("gen") => cmd_gen(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            1
        }
    };
    std::process::exit(code);
}

/// Pulls the value of `--flag VALUE` out of `args`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Result<Option<&'a str>, String> {
    let mut found = None;
    for (i, a) in args.iter().enumerate() {
        if a == flag {
            match args.get(i + 1) {
                Some(v) => found = Some(v.as_str()),
                None => return Err(format!("{flag} requires a value")),
            }
        }
    }
    Ok(found)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag)? {
        Some(v) => v
            .parse()
            .map_err(|_| format!("{flag}: invalid value `{v}`")),
        None => Ok(default),
    }
}

fn parse_fault(text: &str) -> Result<TargetedFault, String> {
    let parts: Vec<&str> = text.split(':').collect();
    let [shard, index, target, kind, fail_at] = parts.as_slice() else {
        return Err(format!(
            "--fault expects SHARD:INDEX:TARGET:KIND:FAIL_AT, got `{text}`"
        ));
    };
    let target = match *target {
        "sqp" => FaultTarget::Sqp,
        "interior_point" => FaultTarget::InteriorPoint,
        "trust_region" => FaultTarget::TrustRegion,
        "reduced" => FaultTarget::Reduced,
        other => return Err(format!("unknown fault target `{other}`")),
    };
    let kind = match *kind {
        "non_finite" => FaultKindSpec::NonFinite,
        "error" => FaultKindSpec::Error,
        "panic" => FaultKindSpec::Panic,
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    Ok(TargetedFault {
        shard: shard
            .parse()
            .map_err(|_| format!("bad fault shard `{shard}`"))?,
        index: index
            .parse()
            .map_err(|_| format!("bad fault index `{index}`"))?,
        plan: FaultPlan {
            target,
            kind,
            fail_at: fail_at
                .parse()
                .map_err(|_| format!("bad fault fail_at `{fail_at}`"))?,
        },
    })
}

fn build_config(args: &[String]) -> Result<RunConfig, String> {
    let out: String = parse_flag(args, "--out", "fleet-out".to_owned())?;
    let mut config = RunConfig::new(
        parse_flag(args, "--seed", 42u64)?,
        parse_flag(args, "--shards", 4u32)?,
        parse_flag(args, "--per-shard", 250u32)?,
        out.into(),
    );
    config.threads = parse_flag(args, "--threads", 0usize)?;
    config.batch = parse_flag(args, "--batch", 32usize)?;
    config.cross_check_divisor = parse_flag(args, "--cross-check-divisor", 16u64)?;
    if let Some(n) = flag_value(args, "--stop-after")? {
        config.stop_after = Some(n.parse().map_err(|_| format!("--stop-after: `{n}`"))?);
    }
    if let Some(f) = flag_value(args, "--fault")? {
        config.fault = Some(parse_fault(f)?);
    }
    if args.iter().any(|a| a == "--no-minimize") {
        config.minimize = false;
    }
    Ok(config)
}

fn cmd_run(args: &[String]) -> i32 {
    let config = match build_config(args) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 1;
        }
    };
    match run(&config) {
        Ok(summary) => {
            match serde_json::to_string(&summary) {
                Ok(json) => println!("{json}"),
                Err(e) => {
                    eprintln!("error: summary serialization failed: {e}");
                    return 1;
                }
            }
            if summary.discrepancies > 0 {
                eprintln!(
                    "{} out-of-tolerance discrepancies; reproducers: {}",
                    summary.discrepancies,
                    if summary.repro_files.is_empty() {
                        "none (run with minimization enabled)".to_owned()
                    } else {
                        summary.repro_files.join(", ")
                    }
                );
                3
            } else {
                0
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}

fn cmd_repro(args: &[String]) -> i32 {
    let Some(path) = args.first() else {
        eprintln!("error: repro requires a file\n{USAGE}");
        return 1;
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("error: cannot read {path}: {e}");
            return 1;
        }
    };
    let case: ReproCase = match serde_json::from_str(&text) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {path} is not a reproducer: {e}");
            return 1;
        }
    };
    let failures = case.replay();
    match serde_json::to_string(&failures) {
        Ok(json) => println!("{json}"),
        Err(e) => {
            eprintln!("error: failure serialization failed: {e}");
            return 1;
        }
    }
    if failures.is_empty() {
        eprintln!(
            "reproducer no longer reproduces (scenario {})",
            case.spec.id
        );
        2
    } else {
        0
    }
}

fn cmd_gen(args: &[String]) -> i32 {
    let parse = || -> Result<ScenarioId, String> {
        Ok(ScenarioId {
            run_seed: Seed(parse_flag(args, "--seed", 42u64)?),
            shard: parse_flag(args, "--shard", 0u32)?,
            index: parse_flag(args, "--index", 0u32)?,
        })
    };
    let id = match parse() {
        Ok(id) => id,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return 1;
        }
    };
    let spec = ScenarioSpec::generate(id);
    match serde_json::to_string(&spec) {
        Ok(json) => {
            println!("{json}");
            0
        }
        Err(e) => {
            eprintln!("error: {e}");
            1
        }
    }
}
