//! The typed tolerance policy shared by the differential-fuzzing layer
//! and the seed cross-solver tests.
//!
//! Before this crate existed the agreement tolerances lived as literals
//! inside `tests/cross_solver.rs`; the fuzzing layer would inevitably
//! have grown its own copies and drifted. Both now read this one type:
//! loosening a bound for the fuzzer loosens the seed tests' documented
//! contract too, and the diff shows it.

use serde::{Deserialize, Serialize};

/// Out-of-tolerance thresholds for the solver-agreement checks.
///
/// All relative quantities are fractions (0.02 = 2 %); absolute
/// temperature slacks are in kelvin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TolerancePolicy {
    /// Maximum relative spread of the feasible objectives found by the
    /// three NLP methods (SQP, interior point, trust region).
    pub nlp_rel_gap: f64,
    /// Maximum relative gap between the SQP optimum and the exhaustive
    /// grid-search optimum (ground truth) on Optimization 1.
    pub sqp_grid_rel_gap: f64,
    /// How far above the *discrete* grid optimum the continuous SQP
    /// optimum may sit (the continuum should beat or match the grid).
    pub continuous_headroom: f64,
    /// Slack (K) when comparing the Optimization 2 minimum against box
    /// corners and centre probes.
    pub opt2_corner_slack_k: f64,
    /// Maximum |ΔT_max| (K) between the reduced-order and full steady
    /// solves at the same operating point.
    pub reduced_full_max_temp_k: f64,
    /// Feasibility margin (K) below `T_max` the grid optimum must clear
    /// before the fuzzer insists that every NLP method also find a
    /// feasible point; boundary-riding scenarios are compared on
    /// objectives only.
    pub solver_must_succeed_margin_k: f64,
}

impl Default for TolerancePolicy {
    fn default() -> Self {
        Self {
            nlp_rel_gap: 0.02,
            sqp_grid_rel_gap: 0.02,
            continuous_headroom: 0.005,
            opt2_corner_slack_k: 0.35,
            reduced_full_max_temp_k: 0.1,
            solver_must_succeed_margin_k: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_round_trips() {
        let p = TolerancePolicy::default();
        let json = serde_json::to_string(&p).unwrap();
        let back: TolerancePolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn default_bounds_are_sane() {
        let p = TolerancePolicy::default();
        assert!(p.nlp_rel_gap > 0.0 && p.nlp_rel_gap < 0.5);
        assert!(p.sqp_grid_rel_gap > 0.0 && p.sqp_grid_rel_gap < 0.5);
        assert!(p.continuous_headroom > 0.0 && p.continuous_headroom < p.sqp_grid_rel_gap);
        assert!(p.opt2_corner_slack_k > 0.0);
        assert!(p.reduced_full_max_temp_k > 0.0);
        assert!(p.solver_must_succeed_margin_k > 0.0);
    }
}
