//! Seeded scenario generation: synthetic packages × workloads × ambient
//! conditions, each addressed by a stable `(run_seed, shard, index)` id.
//!
//! A [`ScenarioSpec`] is pure data: every field is derived from the
//! address alone, and [`ScenarioSpec::build`] reconstructs the same
//! [`CoolingSystem`] from the fields alone. That closure property is what
//! makes minimized reproducers self-contained — a `repro_*.json` carries
//! the spec, not a pointer into a run.

use crate::rng::{scenario_seed, Seed, SplitMix64};
use crate::FleetError;
use oftec::CoolingSystem;
use oftec_floorplan::{alpha21264, grid_floorplan, Floorplan, GridDims};
use oftec_power::{Benchmark, McpatBudget};
use oftec_thermal::PackageConfig;
use oftec_units::{AngularVelocity, Length, Temperature};
use serde::{Deserialize, Serialize};

/// A scenario's stable address within a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioId {
    /// The run's master seed.
    pub run_seed: Seed,
    /// Shard number (one verdict file per shard).
    pub shard: u32,
    /// Index within the shard.
    pub index: u32,
}

impl ScenarioId {
    /// The seed of this scenario's private generator stream.
    pub fn stream_seed(&self) -> u64 {
        scenario_seed(self.run_seed.0, self.shard, self.index)
    }
}

impl core::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}/{}/{}", self.run_seed, self.shard, self.index)
    }
}

/// Which population a scenario is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScenarioClass {
    /// The paper's Alpha 21264 die under one MiBench workload, with
    /// perturbed power magnitude, ambient and airflow.
    Dac14Perturbed,
    /// A synthetic `tiles × tiles` grid die with seeded per-tile activity
    /// and a partial TEC deployment.
    SyntheticGrid,
    /// A synthetic grid die cooled by the fan alone (no TEC decision);
    /// exercises the 1-D problem and the `feasible` verdict partition.
    SyntheticFanOnly,
}

impl ScenarioClass {
    /// Stable lower-snake name used in verdict lines and counters.
    pub fn name(self) -> &'static str {
        match self {
            ScenarioClass::Dac14Perturbed => "dac14_perturbed",
            ScenarioClass::SyntheticGrid => "synthetic_grid",
            ScenarioClass::SyntheticFanOnly => "synthetic_fan_only",
        }
    }
}

/// A fully materialized scenario description. Plain data; see the module
/// docs for the self-containment contract.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioSpec {
    /// The scenario's address.
    pub id: ScenarioId,
    /// Population the scenario was drawn from.
    pub class: ScenarioClass,
    /// MiBench benchmark name ([`ScenarioClass::Dac14Perturbed`] only;
    /// empty for synthetic classes).
    pub benchmark: String,
    /// Grid-die side in tiles (synthetic classes).
    pub tiles: u32,
    /// Die edge in millimetres (synthetic classes).
    pub die_edge_mm: f64,
    /// Total synthetic dynamic power in watts before scaling.
    pub total_power_w: f64,
    /// Multiplier on the per-unit dynamic power vector.
    pub power_scale: f64,
    /// Ambient air temperature in °C.
    pub ambient_c: f64,
    /// Multiplier on the fan curve (`ω_max` and the still-air floor).
    pub airflow_scale: f64,
    /// Thermal die grid side (the discretization knob the minimizer
    /// shrinks first).
    pub thermal_cells: u32,
    /// Number of tiles left uncovered by TECs (synthetic grid class).
    pub tec_exclusions: u32,
    /// Seed of the per-tile activity/exclusion stream.
    pub workload_seed: Seed,
}

/// Floors the minimizer may not shrink below (also the generator's lower
/// bounds, so a shrunk spec is always a valid member of the population).
pub const MIN_THERMAL_CELLS: u32 = 4;
/// Minimum synthetic grid side.
pub const MIN_TILES: u32 = 2;
/// Minimum power multiplier after shrinking.
pub const MIN_POWER_SCALE: f64 = 0.2;

impl ScenarioSpec {
    /// Derives the scenario at `id` — the one pure function from address
    /// to population member.
    pub fn generate(id: ScenarioId) -> Self {
        let mut rng = SplitMix64::new(id.stream_seed());
        let class = match rng.below(5) {
            0 | 1 => ScenarioClass::Dac14Perturbed,
            2 | 3 => ScenarioClass::SyntheticGrid,
            _ => ScenarioClass::SyntheticFanOnly,
        };
        let benchmark = if class == ScenarioClass::Dac14Perturbed {
            let all = Benchmark::ALL;
            all[rng.below(all.len() as u64) as usize].name().to_owned()
        } else {
            String::new()
        };
        let tiles = (MIN_TILES + rng.below(3) as u32).max(MIN_TILES);
        let die_edge_mm = rng.range_f64(10.0, 16.0);
        let total_power_w = rng.range_f64(15.0, 55.0);
        let power_scale = if class == ScenarioClass::Dac14Perturbed {
            rng.range_f64(0.8, 1.3)
        } else {
            1.0
        };
        let ambient_c = rng.range_f64(35.0, 50.0);
        let airflow_scale = rng.range_f64(0.7, 1.2);
        let thermal_cells = MIN_THERMAL_CELLS + rng.below(3) as u32;
        let max_excl = tiles * tiles / 3;
        let tec_exclusions = if class == ScenarioClass::SyntheticGrid && max_excl > 0 {
            rng.below(u64::from(max_excl) + 1) as u32
        } else {
            0
        };
        let workload_seed = Seed(rng.next_u64());
        Self {
            id,
            class,
            benchmark,
            tiles,
            die_edge_mm,
            total_power_w,
            power_scale,
            ambient_c,
            airflow_scale,
            thermal_cells,
            tec_exclusions,
            workload_seed,
        }
    }

    /// The package configuration this spec describes: the Table 1 stack
    /// with the spec's ambient, airflow and discretization perturbations.
    fn package(&self) -> PackageConfig {
        let mut pkg = PackageConfig::dac14_coarse();
        pkg.ambient = Temperature::from_celsius(self.ambient_c);
        pkg.fan.omega_max = AngularVelocity::from_rpm(pkg.fan.omega_max.rpm() * self.airflow_scale);
        pkg.fan.g_hs_still *= self.airflow_scale;
        let cells = self.thermal_cells.max(MIN_THERMAL_CELLS) as usize;
        pkg.die_dims = GridDims::new(cells, cells);
        pkg.spreader_dims = GridDims::new(
            cells.saturating_sub(1).max(3),
            cells.saturating_sub(1).max(3),
        );
        pkg.sink_dims = GridDims::new(
            cells.saturating_sub(2).max(3),
            cells.saturating_sub(2).max(3),
        );
        pkg.pcb_dims = GridDims::new(
            cells.saturating_sub(3).max(3),
            cells.saturating_sub(3).max(3),
        );
        pkg
    }

    /// The synthetic grid floorplan and its per-unit dynamic power vector
    /// (synthetic classes). Activity weights and hot tiles come from the
    /// spec's `workload_seed` stream, never from the address, so a
    /// minimized spec replays with the exact workload that failed.
    fn synthetic_workload(&self) -> (Floorplan, Vec<f64>) {
        let tiles = self.tiles.max(MIN_TILES) as usize;
        let edge = Length::from_mm(self.die_edge_mm);
        let fp = grid_floorplan(&format!("fleet{tiles}x{tiles}"), edge, edge, tiles, tiles);
        let mut rng = SplitMix64::new(self.workload_seed.0);
        let mut weights: Vec<f64> = (0..tiles * tiles)
            .map(|_| {
                let base = 0.25 + rng.next_f64();
                if rng.below(5) == 0 {
                    base * 5.0 // a hot spot
                } else {
                    base
                }
            })
            .collect();
        let sum: f64 = weights.iter().sum();
        let total = self.total_power_w * self.power_scale;
        for w in &mut weights {
            *w = *w / sum * total;
        }
        (fp, weights)
    }

    /// The tile names left uncovered by TECs, drawn from the tail of the
    /// `workload_seed` stream (after the weights, so weight draws and
    /// exclusion draws never alias between specs differing only in
    /// `tec_exclusions`).
    fn excluded_tiles(&self, fp: &Floorplan) -> Vec<String> {
        let n = fp.units().len();
        let want = (self.tec_exclusions as usize).min(n.saturating_sub(1));
        let mut rng = SplitMix64::new(self.workload_seed.0 ^ EXCLUSION_SALT);
        let mut picked: Vec<usize> = Vec::with_capacity(want);
        while picked.len() < want {
            let i = rng.below(n as u64) as usize;
            if !picked.contains(&i) {
                picked.push(i);
            }
        }
        picked.sort_unstable();
        picked
            .into_iter()
            .map(|i| fp.units()[i].name().to_owned())
            .collect()
    }

    /// Reconstructs the cooling system this spec describes.
    ///
    /// # Errors
    ///
    /// [`FleetError::Scenario`] when the spec names an unknown benchmark
    /// or the workload does not fit the floorplan (possible only for
    /// hand-edited spec files; generated specs always build).
    pub fn build(&self) -> Result<CoolingSystem, FleetError> {
        let pkg = self.package();
        match self.class {
            ScenarioClass::Dac14Perturbed => {
                let benchmark = Benchmark::from_name(&self.benchmark).ok_or_else(|| {
                    FleetError::Scenario(format!("unknown benchmark `{}`", self.benchmark))
                })?;
                let fp = alpha21264();
                let dynamic: Vec<f64> = benchmark
                    .max_dynamic_power(&fp)
                    .map_err(|e| FleetError::Scenario(e.to_string()))?
                    .into_iter()
                    .map(|p| p * self.power_scale)
                    .collect();
                let leakage = McpatBudget::alpha21264_22nm().distribute(&fp);
                Ok(CoolingSystem::new(
                    format!("fleet:{}", self.id),
                    fp,
                    pkg,
                    dynamic,
                    leakage,
                    oftec::default_t_max(),
                ))
            }
            ScenarioClass::SyntheticGrid | ScenarioClass::SyntheticFanOnly => {
                let (fp, dynamic) = self.synthetic_workload();
                let leakage = McpatBudget::alpha21264_22nm().distribute(&fp);
                let excluded = self.excluded_tiles(&fp);
                let excluded_refs: Vec<&str> = excluded.iter().map(String::as_str).collect();
                Ok(CoolingSystem::with_tec_exclusions(
                    format!("fleet:{}", self.id),
                    fp,
                    pkg,
                    dynamic,
                    leakage,
                    oftec::default_t_max(),
                    &excluded_refs,
                ))
            }
        }
    }
}

/// Salt separating the TEC-exclusion sub-stream from the activity-weight
/// sub-stream of `workload_seed`.
const EXCLUSION_SALT: u64 = 0x7ec5_c07e_4a9e_11d3;

#[cfg(test)]
mod tests {
    use super::*;

    fn id(run_seed: u64, shard: u32, index: u32) -> ScenarioId {
        ScenarioId {
            run_seed: Seed(run_seed),
            shard,
            index,
        }
    }

    #[test]
    fn generation_is_a_pure_function_of_the_address() {
        let a = ScenarioSpec::generate(id(99, 2, 17));
        let b = ScenarioSpec::generate(id(99, 2, 17));
        assert_eq!(a, b);
        assert_ne!(a, ScenarioSpec::generate(id(99, 2, 18)));
    }

    #[test]
    fn specs_round_trip_through_json() {
        for index in 0..20 {
            let spec = ScenarioSpec::generate(id(7, 0, index));
            let json = serde_json::to_string(&spec).unwrap();
            let back: ScenarioSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(spec, back, "index {index}");
        }
    }

    #[test]
    fn all_classes_appear_and_build() {
        let mut seen = [false; 3];
        for index in 0..24 {
            let spec = ScenarioSpec::generate(id(3, 0, index));
            seen[spec.class as usize] = true;
            let system = spec.build().expect("generated specs always build");
            assert_eq!(
                system.dynamic_power().len(),
                system.floorplan().units().len()
            );
            assert!(system.total_dynamic_power().watts() > 1.0);
        }
        assert!(seen.iter().all(|&s| s), "class mix too narrow: {seen:?}");
    }

    #[test]
    fn synthetic_grid_respects_exclusions() {
        // Find a synthetic-grid spec with at least one exclusion and check
        // the built system still has TECs (never fully stripped).
        let spec = (0..200)
            .map(|i| ScenarioSpec::generate(id(11, 0, i)))
            .find(|s| s.class == ScenarioClass::SyntheticGrid && s.tec_exclusions > 0)
            .expect("population contains partially covered grids");
        let system = spec.build().unwrap();
        assert!(system.tec_model().has_tec());
    }

    #[test]
    fn perturbed_package_stays_physical() {
        for index in 0..50 {
            let spec = ScenarioSpec::generate(id(5, 1, index));
            spec.package().assert_physical();
        }
    }
}
