//! **oftec-fleet** — deterministic fleet-scale scenario engine with
//! differential solver fuzzing.
//!
//! The substrate crates solve *one* cooling problem well; this crate asks
//! whether they solve *every* problem in a seeded population consistently:
//!
//! - [`scenario`] — a pure generator from `(run_seed, shard, index)`
//!   addresses to synthetic packages, workloads and ambient conditions;
//! - [`runner`] — a sharded, checkpointed batch sweep whose concatenated
//!   verdict stream is byte-identical at any thread count and across
//!   kill-then-resume;
//! - [`diff`] — differential fuzzing of SQP vs interior point vs trust
//!   region vs grid search, and reduced vs full steady solves, under the
//!   typed [`tolerance::TolerancePolicy`];
//! - [`minimize`] — shrinks an out-of-tolerance scenario into a
//!   self-contained `repro_*.json` replayed by `oftec-fleet repro`.
//!
//! # Examples
//!
//! ```no_run
//! use oftec_fleet::runner::{run, RunConfig};
//!
//! # fn main() -> Result<(), oftec_fleet::FleetError> {
//! let config = RunConfig::new(42, 4, 250, "fleet-out".into());
//! let summary = run(&config)?;
//! assert_eq!(summary.discrepancies, 0, "solver divergence detected");
//! # Ok(())
//! # }
//! ```

pub mod diff;
pub mod minimize;
pub mod rng;
pub mod runner;
pub mod scenario;
pub mod tolerance;
pub mod verdict;

/// Errors surfaced by the fleet engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FleetError {
    /// A scenario spec cannot be materialized (unknown benchmark,
    /// inconsistent hand-edited fields).
    Scenario(String),
    /// A filesystem operation on the run directory failed.
    Io(String),
    /// The run directory's manifests/checkpoints are inconsistent with
    /// the requested run.
    Manifest(String),
}

impl core::fmt::Display for FleetError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FleetError::Scenario(m) => write!(f, "scenario error: {m}"),
            FleetError::Io(m) => write!(f, "io error: {m}"),
            FleetError::Manifest(m) => write!(f, "manifest error: {m}"),
        }
    }
}

impl std::error::Error for FleetError {}
