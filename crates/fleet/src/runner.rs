//! The sharded, resumable batch runner.
//!
//! One verdict JSONL file per shard, advanced in fixed-size batches. The
//! contract: the concatenated verdict stream of a completed run is
//! byte-identical at any `OFTEC_THREADS` setting, and a run killed
//! mid-shard resumes from its checkpoint to the same bytes.
//!
//! The mechanism is the same scatter-by-index discipline the rest of the
//! workspace uses — workers compute, only the orchestrator writes, and
//! the write order is the index order. Durability is checkpoint-ordered:
//! the shard file is flushed and fsynced *before* the checkpoint is
//! atomically replaced, so `ckpt.bytes` never points past valid data and
//! resume truncates any torn tail the crash left behind.

use crate::diff::{cross_check, FaultPlan};
use crate::minimize::{minimize, ReproCase};
use crate::rng::{splitmix64, Seed};
use crate::scenario::{ScenarioId, ScenarioSpec};
use crate::tolerance::TolerancePolicy;
use crate::verdict::{
    solve_verdict_on, Verdict, VerdictKind, CROSS_CHECK_EVAL_BUDGET, VERDICT_EVAL_BUDGET,
};
use crate::FleetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Salt for the deterministic cross-check subsample draw.
const CROSS_CHECK_SALT: u64 = 0xc05e_c4ec_ca11_ab1e;

/// Wire-format version stamped into shard manifests.
const MANIFEST_FORMAT: u32 = 1;

/// A fault injected into exactly one scenario of the run (CI and tests
/// use this to prove the pipeline catches, minimizes and reports a
/// divergence end to end).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetedFault {
    /// Shard of the targeted scenario.
    pub shard: u32,
    /// Index of the targeted scenario within the shard.
    pub index: u32,
    /// The fault to inject there.
    pub plan: FaultPlan,
}

/// Configuration of one fleet run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Master seed; scenario `(shard, index)` addresses hang off it.
    pub run_seed: u64,
    /// Number of shards (one JSONL file each).
    pub shards: u32,
    /// Scenarios per shard.
    pub per_shard: u32,
    /// Output directory (created if absent).
    pub out_dir: PathBuf,
    /// Worker threads; `0` means [`oftec_parallel::thread_count`].
    pub threads: usize,
    /// Scenarios per checkpointed batch.
    pub batch: usize,
    /// Cross-check every scenario whose subsample draw is `0 (mod d)`;
    /// `0` disables the differential layer entirely.
    pub cross_check_divisor: u64,
    /// Agreement tolerances for the differential layer.
    pub policy: TolerancePolicy,
    /// Optional single-scenario fault injection (forces a cross-check at
    /// the targeted address).
    pub fault: Option<TargetedFault>,
    /// Stop (checkpointed, resumable) after this many scenarios have been
    /// processed *by this invocation* — the kill half of kill-then-resume
    /// testing.
    pub stop_after: Option<u64>,
    /// Minimize out-of-tolerance scenarios into `repro_*.json` files.
    pub minimize: bool,
}

impl RunConfig {
    /// A small default run under `out_dir`.
    pub fn new(run_seed: u64, shards: u32, per_shard: u32, out_dir: PathBuf) -> Self {
        Self {
            run_seed,
            shards,
            per_shard,
            out_dir,
            threads: 0,
            batch: 32,
            cross_check_divisor: 16,
            policy: TolerancePolicy::default(),
            fault: None,
            stop_after: None,
            minimize: true,
        }
    }
}

/// Per-verdict-kind tallies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VerdictCounts {
    /// `feasible` verdicts.
    pub feasible: u64,
    /// `fan_only` verdicts.
    pub fan_only: u64,
    /// `tec_required` verdicts.
    pub tec_required: u64,
    /// `runaway` verdicts.
    pub runaway: u64,
    /// `solver_error` verdicts.
    pub solver_error: u64,
}

impl VerdictCounts {
    fn add(&mut self, kind: VerdictKind) {
        match kind {
            VerdictKind::Feasible => self.feasible += 1,
            VerdictKind::FanOnly => self.fan_only += 1,
            VerdictKind::TecRequired => self.tec_required += 1,
            VerdictKind::Runaway => self.runaway += 1,
            VerdictKind::SolverError => self.solver_error += 1,
        }
    }

    /// Sum over the partition (must equal the scenario count).
    pub fn total(&self) -> u64 {
        self.feasible + self.fan_only + self.tec_required + self.runaway + self.solver_error
    }
}

/// Outcome of a [`run`] call, tallied from the shard files on disk (so a
/// resumed run reports the whole run, not just its own increment).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// The run's master seed.
    pub run_seed: Seed,
    /// Shard count.
    pub shards: u32,
    /// Scenarios per shard.
    pub per_shard: u32,
    /// Scenarios with verdicts on disk.
    pub scenarios: u64,
    /// Verdict partition tallies.
    pub verdicts: VerdictCounts,
    /// Scenarios the differential layer cross-checked.
    pub cross_checks: u64,
    /// Total out-of-tolerance discrepancies.
    pub discrepancies: u64,
    /// Reproducer files present in the output directory.
    pub repro_files: Vec<String>,
    /// `true` when `stop_after` ended this invocation before the run
    /// completed (resume by calling [`run`] again with the same config).
    pub stopped_early: bool,
}

/// Shard checkpoint: scenarios completed and the exact byte length of the
/// valid JSONL prefix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Checkpoint {
    completed: u32,
    bytes: u64,
}

/// Shard manifest: the run parameters the shard file was written under.
/// Resume refuses to append to a shard from a different run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct Manifest {
    format: u32,
    run_seed: Seed,
    shard: u32,
    per_shard: u32,
}

/// Shard file paths.
fn shard_paths(out_dir: &Path, shard: u32) -> (PathBuf, PathBuf, PathBuf) {
    (
        out_dir.join(format!("shard-{shard:04}.jsonl")),
        out_dir.join(format!("shard-{shard:04}.ckpt.json")),
        out_dir.join(format!("shard-{shard:04}.manifest.json")),
    )
}

fn io_err(context: &str, e: std::io::Error) -> FleetError {
    FleetError::Io(format!("{context}: {e}"))
}

/// Atomically replaces `path` with `contents` (tmp write + rename).
fn write_atomic(path: &Path, contents: &str) -> Result<(), FleetError> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, contents).map_err(|e| io_err("write tmp", e))?;
    std::fs::rename(&tmp, path).map_err(|e| io_err("rename tmp", e))
}

fn read_json<T: Deserialize>(path: &Path, what: &str) -> Result<T, FleetError> {
    let text = std::fs::read_to_string(path).map_err(|e| io_err(what, e))?;
    serde_json::from_str(&text).map_err(|e| FleetError::Manifest(format!("{what}: {e}")))
}

/// One worker's output for one scenario.
struct WorkItem {
    line: String,
    repro: Option<ReproCase>,
}

/// Whether the differential layer runs on this scenario: either the
/// deterministic subsample draw selects it, or a targeted fault names it.
fn selects_cross_check(config: &RunConfig, id: ScenarioId) -> bool {
    if targeted_fault(config, id).is_some() {
        return true;
    }
    if config.cross_check_divisor == 0 {
        return false;
    }
    splitmix64(id.stream_seed() ^ CROSS_CHECK_SALT).is_multiple_of(config.cross_check_divisor)
}

fn targeted_fault(config: &RunConfig, id: ScenarioId) -> Option<&FaultPlan> {
    config
        .fault
        .as_ref()
        .filter(|f| f.shard == id.shard && f.index == id.index)
        .map(|f| &f.plan)
}

/// Computes one scenario end to end: verdict, optional cross-check,
/// optional minimization. Pure function of `(config, id)`.
fn process_scenario(config: &RunConfig, id: ScenarioId) -> WorkItem {
    let spec = ScenarioSpec::generate(id);
    let cross = selects_cross_check(config, id);
    let budget = if cross {
        CROSS_CHECK_EVAL_BUDGET
    } else {
        VERDICT_EVAL_BUDGET
    };
    let mut repro = None;
    let mut verdict = match spec.build() {
        Ok(system) => {
            let mut v = solve_verdict_on(&system, &spec, budget);
            if cross {
                let fault = targeted_fault(config, id);
                let report = cross_check(&system, &config.policy, fault);
                v.cross_checked = true;
                v.discrepancies = report.failures.len() as u32;
                if !report.failures.is_empty() && config.minimize {
                    repro = minimize(&spec, fault, &config.policy);
                }
            }
            v
        }
        Err(e) => {
            let mut v = error_verdict(&spec);
            v.error = Some(e.to_string());
            v
        }
    };
    let line = match serde_json::to_string(&verdict) {
        Ok(line) => line,
        Err(e) => {
            // Unreachable by construction (verdicts are finite-sanitized),
            // but a shard must never die on one bad line.
            verdict = error_verdict(&spec);
            verdict.error = Some(format!("verdict serialization failed: {e}"));
            serde_json::to_string(&verdict).unwrap_or_default()
        }
    };
    WorkItem { line, repro }
}

/// A bare `solver_error` verdict for `spec` (no floats — always
/// serializable).
fn error_verdict(spec: &ScenarioSpec) -> Verdict {
    Verdict {
        id: spec.id,
        class: spec.class,
        verdict: VerdictKind::SolverError,
        max_temp_c: None,
        cooling_power_w: None,
        solve_path: "fan".to_owned(),
        thermal_solves: 0,
        cross_checked: false,
        discrepancies: 0,
        error: None,
    }
}

/// The reproducer filename for a scenario address.
fn repro_filename(id: ScenarioId) -> String {
    format!(
        "repro_{:016x}_{}_{}.json",
        id.run_seed.0, id.shard, id.index
    )
}

/// Runs (or resumes) the fleet sweep described by `config`.
///
/// # Errors
///
/// [`FleetError::Io`] on filesystem failures; [`FleetError::Manifest`]
/// when the output directory holds shards from a different run.
#[must_use = "the summary carries the discrepancy count the caller must check"]
pub fn run(config: &RunConfig) -> Result<RunSummary, FleetError> {
    std::fs::create_dir_all(&config.out_dir).map_err(|e| io_err("create out dir", e))?;
    let threads = if config.threads == 0 {
        oftec_parallel::thread_count()
    } else {
        config.threads
    };
    let batch = config.batch.max(1);
    let mut processed_now: u64 = 0;
    let mut stopped_early = false;

    'shards: for shard in 0..config.shards {
        let (jsonl_path, ckpt_path, manifest_path) = shard_paths(&config.out_dir, shard);

        // Manifest: create on first touch, verify on resume.
        let manifest = Manifest {
            format: MANIFEST_FORMAT,
            run_seed: Seed(config.run_seed),
            shard,
            per_shard: config.per_shard,
        };
        if manifest_path.exists() {
            let existing: Manifest = read_json(&manifest_path, "shard manifest")?;
            if existing != manifest {
                return Err(FleetError::Manifest(format!(
                    "shard {shard} was written by a different run \
                     (found seed {}, {} per shard; expected seed {}, {})",
                    existing.run_seed, existing.per_shard, manifest.run_seed, manifest.per_shard
                )));
            }
        } else {
            write_atomic(
                &manifest_path,
                &serde_json::to_string(&manifest)
                    .map_err(|e| FleetError::Manifest(e.to_string()))?,
            )?;
        }

        // Checkpoint: where the valid prefix ends.
        let ckpt = if ckpt_path.exists() {
            read_json::<Checkpoint>(&ckpt_path, "shard checkpoint")?
        } else {
            Checkpoint {
                completed: 0,
                bytes: 0,
            }
        };
        if ckpt.completed >= config.per_shard {
            continue; // shard already complete
        }

        // Open the shard file and discard any torn tail past the
        // checkpoint (a crash between write and checkpoint leaves one).
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .read(true)
            .write(true)
            .truncate(false)
            .open(&jsonl_path)
            .map_err(|e| io_err("open shard file", e))?;
        file.set_len(ckpt.bytes)
            .map_err(|e| io_err("truncate shard file", e))?;
        file.seek(SeekFrom::End(0))
            .map_err(|e| io_err("seek shard file", e))?;
        let mut bytes = ckpt.bytes;
        let mut completed = ckpt.completed;

        while completed < config.per_shard {
            if let Some(limit) = config.stop_after {
                if processed_now >= limit {
                    stopped_early = true;
                    break 'shards;
                }
            }
            let end = (completed as usize + batch).min(config.per_shard as usize) as u32;
            let indices: Vec<u32> = (completed..end).collect();
            let results =
                oftec_parallel::par_try_map_indexed_with(threads, &indices, |_, &index| {
                    process_scenario(
                        config,
                        ScenarioId {
                            run_seed: Seed(config.run_seed),
                            shard,
                            index,
                        },
                    )
                });
            for (offset, result) in results.into_iter().enumerate() {
                let index = indices[offset];
                let id = ScenarioId {
                    run_seed: Seed(config.run_seed),
                    shard,
                    index,
                };
                let item = match result {
                    Ok(item) => item,
                    Err(panic) => {
                        // A panicking scenario degrades to a solver_error
                        // line; the shard stream stays complete.
                        let spec = ScenarioSpec::generate(id);
                        let mut v = error_verdict(&spec);
                        v.error = Some(format!("scenario worker panicked: {}", panic.message));
                        WorkItem {
                            line: serde_json::to_string(&v).unwrap_or_default(),
                            repro: None,
                        }
                    }
                };
                file.write_all(item.line.as_bytes())
                    .and_then(|()| file.write_all(b"\n"))
                    .map_err(|e| io_err("append verdict", e))?;
                bytes += item.line.len() as u64 + 1;
                if let Some(case) = item.repro {
                    let path = config.out_dir.join(repro_filename(id));
                    let json = serde_json::to_string(&case)
                        .map_err(|e| FleetError::Manifest(format!("repro case: {e}")))?;
                    write_atomic(&path, &json)?;
                }
            }
            // Durability order: data reaches the disk before the
            // checkpoint claims it.
            file.sync_all().map_err(|e| io_err("sync shard file", e))?;
            let new_ckpt = Checkpoint {
                completed: end,
                bytes,
            };
            write_atomic(
                &ckpt_path,
                &serde_json::to_string(&new_ckpt)
                    .map_err(|e| FleetError::Manifest(e.to_string()))?,
            )?;
            processed_now += u64::from(end - completed);
            completed = end;
        }
    }

    tally(config, stopped_early)
}

/// Builds the run summary by re-reading every shard's valid prefix (so
/// the numbers describe the whole run regardless of which invocation
/// processed which scenario), and mirrors the tallies into telemetry.
fn tally(config: &RunConfig, stopped_early: bool) -> Result<RunSummary, FleetError> {
    let mut summary = RunSummary {
        run_seed: Seed(config.run_seed),
        shards: config.shards,
        per_shard: config.per_shard,
        scenarios: 0,
        verdicts: VerdictCounts::default(),
        cross_checks: 0,
        discrepancies: 0,
        repro_files: Vec::new(),
        stopped_early,
    };
    for shard in 0..config.shards {
        let (jsonl_path, ckpt_path, _) = shard_paths(&config.out_dir, shard);
        if !ckpt_path.exists() {
            continue;
        }
        let ckpt: Checkpoint = read_json(&ckpt_path, "shard checkpoint")?;
        let mut file = std::fs::File::open(&jsonl_path).map_err(|e| io_err("open shard", e))?;
        let mut text = String::new();
        file.read_to_string(&mut text)
            .map_err(|e| io_err("read shard", e))?;
        // Only the checkpointed prefix is the run's output.
        let prefix = &text[..(ckpt.bytes as usize).min(text.len())];
        for line in prefix.lines() {
            let v: Verdict = serde_json::from_str(line)
                .map_err(|e| FleetError::Manifest(format!("shard {shard} verdict line: {e}")))?;
            summary.scenarios += 1;
            summary.verdicts.add(v.verdict);
            if v.cross_checked {
                summary.cross_checks += 1;
            }
            summary.discrepancies += u64::from(v.discrepancies);
        }
    }
    let mut repro_files: Vec<String> = std::fs::read_dir(&config.out_dir)
        .map_err(|e| io_err("list out dir", e))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("repro_") && name.ends_with(".json"))
        .collect();
    repro_files.sort_unstable();
    summary.repro_files = repro_files;

    oftec_telemetry::counter_add("fleet.scenarios", summary.scenarios);
    oftec_telemetry::counter_add("fleet.verdict.feasible", summary.verdicts.feasible);
    oftec_telemetry::counter_add("fleet.verdict.fan_only", summary.verdicts.fan_only);
    oftec_telemetry::counter_add("fleet.verdict.tec_required", summary.verdicts.tec_required);
    oftec_telemetry::counter_add("fleet.verdict.runaway", summary.verdicts.runaway);
    oftec_telemetry::counter_add("fleet.verdict.solver_error", summary.verdicts.solver_error);
    oftec_telemetry::counter_add("fleet.cross_checks", summary.cross_checks);
    oftec_telemetry::counter_add("fleet.discrepancies", summary.discrepancies);
    Ok(summary)
}

/// Reads and concatenates every shard's checkpointed verdict stream, in
/// shard order — the canonical byte stream determinism tests compare.
pub fn concatenated_verdicts(out_dir: &Path, shards: u32) -> Result<Vec<u8>, FleetError> {
    let mut all = Vec::new();
    for shard in 0..shards {
        let (jsonl_path, ckpt_path, _) = shard_paths(out_dir, shard);
        if !ckpt_path.exists() {
            continue;
        }
        let ckpt: Checkpoint = read_json(&ckpt_path, "shard checkpoint")?;
        let data = std::fs::read(&jsonl_path).map_err(|e| io_err("read shard", e))?;
        let take = (ckpt.bytes as usize).min(data.len());
        all.extend_from_slice(&data[..take]);
    }
    Ok(all)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("oftec-fleet-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn small_run_partitions_every_scenario() {
        let dir = tmp_dir("unit-partition");
        let mut config = RunConfig::new(77, 2, 12, dir.clone());
        config.threads = 2;
        config.cross_check_divisor = 4;
        let summary = run(&config).expect("run succeeds");
        assert_eq!(summary.scenarios, 24);
        assert_eq!(summary.verdicts.total(), 24);
        assert!(!summary.stopped_early);
        assert!(summary.cross_checks > 0, "subsample selected nothing");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rerun_of_a_complete_run_is_a_no_op() {
        let dir = tmp_dir("unit-noop");
        let config = RunConfig::new(5, 1, 6, dir.clone());
        let first = run(&config).expect("first run");
        let bytes_before = concatenated_verdicts(&dir, 1).expect("read");
        let second = run(&config).expect("second run");
        let bytes_after = concatenated_verdicts(&dir, 1).expect("read");
        assert_eq!(first.scenarios, second.scenarios);
        assert_eq!(bytes_before, bytes_after);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_manifest_is_refused() {
        let dir = tmp_dir("unit-manifest");
        let config = RunConfig::new(9, 1, 4, dir.clone());
        run(&config).expect("first run");
        let mut other = config.clone();
        other.run_seed = 10;
        let err = run(&other).expect_err("different seed must be refused");
        assert!(matches!(err, FleetError::Manifest(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
