//! Multi-start wrapper: run any solver from several starting points and
//! keep the best feasible result.
//!
//! The paper's objective has "minor non-convexities" (§5.2), so a single
//! well-placed start suffices there; this wrapper is the insurance policy
//! for harder instances (sharper workloads, tighter limits) where a lone
//! SQP run can settle into the wrong basin.

use crate::{NlpProblem, OptimError, SolveOptions, SolveResult};

/// Evenly spaced starting points over the box: `per_dim` samples per
/// coordinate, interior-shifted (no corner starts).
///
/// # Panics
///
/// Panics if `per_dim == 0`.
pub fn grid_starts<P: NlpProblem>(problem: &P, per_dim: usize) -> Vec<Vec<f64>> {
    assert!(per_dim > 0, "need at least one start per dimension");
    let (lo, hi) = problem.bounds();
    let n = problem.dim();
    // oftec-lint: allow(L012, exponent cast: n is the NLP dimension (2-3), far below u32::MAX)
    let total = per_dim.pow(n as u32);
    let mut starts = Vec::with_capacity(total);
    for flat in 0..total {
        let mut rem = flat;
        let mut x = vec![0.0; n];
        for d in 0..n {
            let idx = rem % per_dim;
            rem /= per_dim;
            // Interior sampling: (idx + ½) / per_dim.
            let frac = (idx as f64 + 0.5) / per_dim as f64;
            x[d] = lo[d] + (hi[d] - lo[d]) * frac;
        }
        starts.push(x);
    }
    starts
}

/// Runs `solve` from each start and returns the best outcome, preferring
/// feasible results (constraint tolerance `1e-6`) and lower objectives.
///
/// The starts run concurrently on [`oftec_parallel`] worker threads
/// (every solver in this crate is a pure function of its inputs); the
/// winner is reduced serially in start order, so the outcome — including
/// which of two equal-objective results wins — matches a serial loop at
/// any thread count.
///
/// Individual solver failures are tolerated; only if *every* start fails
/// is the last error returned.
///
/// # Errors
///
/// The last solver error, when no start produced a result.
///
/// # Panics
///
/// Panics if `starts` is empty.
pub fn multistart<P, F>(
    problem: &P,
    starts: &[Vec<f64>],
    opts: &SolveOptions,
    solve: F,
) -> Result<SolveResult, OptimError>
where
    P: NlpProblem + Sync,
    F: Fn(&P, &[f64], &SolveOptions) -> Result<SolveResult, OptimError> + Sync,
{
    assert!(!starts.is_empty(), "multistart needs at least one start");
    let _span = oftec_telemetry::span("multistart.run");
    oftec_telemetry::counter_add("multistart.starts", starts.len() as u64);
    let outcomes = oftec_parallel::par_map_indexed(starts, |_, start| solve(problem, start, opts));
    let mut best: Option<(bool, SolveResult)> = None;
    let mut last_err = None;
    for outcome in outcomes {
        match outcome {
            Ok(result) => {
                let feasible = problem.is_feasible(&result.x, 1e-6);
                let better = match &best {
                    None => true,
                    Some((best_feasible, best_result)) => {
                        (feasible && !best_feasible)
                            || (feasible == *best_feasible
                                && result.objective < best_result.objective)
                    }
                };
                if better {
                    best = Some((feasible, result));
                }
            }
            Err(e) => last_err = Some(e),
        }
    }
    match (best, last_err) {
        (Some((_, result)), _) => Ok(result),
        (None, Some(e)) => Err(e),
        // Unreachable in practice (`starts` is non-empty, so every start
        // produced either a result or an error), but degrade typed rather
        // than panic if the invariant is ever broken.
        (None, None) => Err(OptimError::Subproblem(
            "multistart produced neither results nor errors".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ActiveSetSqp, FnProblem};

    /// Double-well: minima near x = ±1.7, the right one deeper.
    fn double_well() -> impl NlpProblem {
        FnProblem::new(
            vec![-3.0],
            vec![3.0],
            |x| {
                let v = x[0];
                Some(v.powi(4) - 3.0 * v * v - 0.5 * v)
            },
            0,
            |_| Some(Vec::new()),
        )
    }

    #[test]
    fn grid_starts_cover_the_box_interior() {
        let p = double_well();
        let starts = grid_starts(&p, 4);
        assert_eq!(starts.len(), 4);
        for s in &starts {
            assert!(s[0] > -3.0 && s[0] < 3.0);
        }
        // 2-D: cartesian product.
        let p2 = FnProblem::new(
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            |_| Some(0.0),
            0,
            |_| Some(Vec::new()),
        );
        assert_eq!(grid_starts(&p2, 3).len(), 9);
    }

    #[test]
    fn multistart_escapes_the_shallow_basin() {
        let p = double_well();
        let opts = SolveOptions::default();
        let solver = ActiveSetSqp::default();
        // A start resting on the left (shallow) local minimum stays there
        // (zero gradient ⇒ no descent direction).
        let left_min = -1.18;
        let single = solver.solve(&p, &[left_min], &opts).unwrap();
        assert!(single.x[0] < 0.0, "expected the left basin: {:?}", single.x);
        // Multistart finds the deeper right minimum.
        let starts = grid_starts(&p, 5);
        let multi = multistart(&p, &starts, &opts, |p, x, o| solver.solve(p, x, o)).unwrap();
        assert!(multi.x[0] > 0.0, "multistart stuck: {:?}", multi.x);
        assert!(multi.objective < single.objective);
    }

    #[test]
    fn prefers_feasible_over_lower_objective() {
        // Feasible region x ≥ 1; objective pulls to 0.
        let p = FnProblem::new(
            vec![-2.0],
            vec![2.0],
            |x| Some(x[0] * x[0]),
            1,
            |x| Some(vec![x[0] - 1.0]),
        );
        let opts = SolveOptions::default();
        let solver = ActiveSetSqp::default();
        let starts = vec![vec![1.5], vec![-1.5]];
        let r = multistart(&p, &starts, &opts, |p, x, o| solver.solve(p, x, o)).unwrap();
        assert!(p.is_feasible(&r.x, 1e-6), "{:?}", r.x);
        assert!((r.x[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn tolerates_failing_starts() {
        // Objective undefined left of 0: a start there errors (BadStart),
        // but the good start still wins.
        let p = FnProblem::new(
            vec![-1.0],
            vec![1.0],
            |x| {
                if x[0] < 0.0 {
                    None
                } else {
                    Some((x[0] - 0.5).powi(2))
                }
            },
            0,
            |_| Some(Vec::new()),
        );
        let opts = SolveOptions::default();
        let solver = ActiveSetSqp::default();
        let starts = vec![vec![-0.9], vec![0.9]];
        let r = multistart(&p, &starts, &opts, |p, x, o| solver.solve(p, x, o)).unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-5);
    }
}
