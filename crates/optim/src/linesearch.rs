//! Backtracking (Armijo) line search on an arbitrary merit function.

/// Backtracks from step 1 along `direction` until the merit decreases
/// sufficiently (Armijo condition with parameter `c1`), halving each time.
///
/// Returns `(step, merit_at_step, evaluations)`; the step is `0.0` if even
/// the smallest trial failed to improve (callers treat that as a converged
/// or stalled iterate).
///
/// `merit` must already incorporate any penalty for evaluation failures.
/// A trial merit of NaN/inf is explicitly rejected (never accepted as a
/// step), so a model that suddenly produces garbage makes the search back
/// away exactly like a penalty wall.
///
/// # Panics
///
/// Panics if `x.len() != direction.len()`.
pub fn backtrack<M>(
    merit: M,
    x: &[f64],
    merit_x: f64,
    direction: &[f64],
    directional_derivative: f64,
    c1: f64,
    max_halvings: usize,
) -> (f64, f64, usize)
where
    M: Fn(&[f64]) -> f64,
{
    assert_eq!(x.len(), direction.len(), "direction length mismatch");
    let mut alpha = 1.0;
    let mut evals = 0;
    let mut trial = vec![0.0; x.len()];
    for _ in 0..=max_halvings {
        for i in 0..x.len() {
            trial[i] = x[i] + alpha * direction[i];
        }
        let m = merit(&trial);
        evals += 1;
        // A non-finite trial merit can never be accepted: NaN fails every
        // comparison below, but the explicit guard documents the contract
        // and keeps it robust to rewrites of the accept conditions.
        if m.is_finite() {
            // Armijo with a floor: for strongly nonlinear merits the
            // directional derivative may be unreliable, so also accept
            // plain decrease on the last few trials.
            let target = merit_x + c1 * alpha * directional_derivative.min(0.0);
            if m <= target || (alpha < 1e-3 && m < merit_x) {
                return (alpha, m, evals);
            }
        }
        alpha *= 0.5;
    }
    (0.0, merit_x, evals)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_step_accepted_on_quadratic() {
        // From x=1 along d=-1 on f=x²: full Newton step to 0 is accepted.
        let f = |x: &[f64]| x[0] * x[0];
        let (a, m, _) = backtrack(f, &[1.0], 1.0, &[-1.0], -2.0, 1e-4, 30);
        assert_eq!(a, 1.0);
        assert_eq!(m, 0.0);
    }

    #[test]
    fn backtracks_on_overshoot() {
        // Direction overshoots: step must shrink below 1.
        let f = |x: &[f64]| x[0] * x[0];
        let (a, m, _) = backtrack(f, &[1.0], 1.0, &[-10.0], -2.0, 1e-4, 40);
        assert!(a < 1.0);
        assert!(m < 1.0);
    }

    #[test]
    fn gives_up_on_ascent_direction() {
        let f = |x: &[f64]| x[0] * x[0];
        let (a, m, _) = backtrack(f, &[1.0], 1.0, &[1.0], 2.0, 1e-4, 30);
        assert_eq!(a, 0.0);
        assert_eq!(m, 1.0);
    }

    #[test]
    fn nan_merit_wall_rejected() {
        // Merit turns NaN past 0.5 (a runaway model): the search must back
        // off to the finite side rather than accept a NaN step.
        let f = |x: &[f64]| if x[0] > 0.5 { f64::NAN } else { -x[0] };
        let (a, m, _) = backtrack(f, &[0.0], 0.0, &[1.0], -1.0, 1e-4, 50);
        assert!(a > 0.0 && a <= 0.5);
        assert!(m.is_finite() && m <= 0.0);
    }

    #[test]
    fn all_nan_merit_gives_zero_step() {
        let f = |_: &[f64]| f64::NAN;
        let (a, m, _) = backtrack(f, &[0.0], 0.0, &[1.0], -1.0, 1e-4, 50);
        assert_eq!(a, 0.0);
        assert_eq!(m, 0.0); // the caller's merit_x, untouched
    }

    #[test]
    fn penalty_wall_rejected() {
        // Merit jumps to 1e9 past 0.5: the search must settle on a step
        // that stays on the good side.
        let f = |x: &[f64]| if x[0] > 0.5 { 1e9 } else { -x[0] };
        let (a, m, _) = backtrack(f, &[0.0], 0.0, &[1.0], -1.0, 1e-4, 50);
        assert!(a > 0.0);
        assert!(m <= 0.0);
        assert!(a <= 0.5);
    }
}
