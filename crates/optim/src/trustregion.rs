//! Quadratic-penalty trust-region method — the paper's other benchmarked
//! alternative (§5.2).

use crate::problem::PENALTY_OBJECTIVE;
use crate::{
    central_gradient, damped_bfgs_update, NlpProblem, OptimError, SolveOptions, SolveResult,
};
use oftec_linalg::{solve_dense_chain, vector, Matrix};

/// Trust-region solver on the quadratic-penalty function
/// `F_ρ(x) = f(x) + ρ·Σ max(0, −c_i(x))²`, with a dogleg step inside a
/// spherical trust region, clipped to the box bounds.
#[derive(Debug, Clone, Copy)]
pub struct TrustRegion {
    /// Constraint penalty weight.
    pub rho: f64,
    /// Initial trust radius, as a fraction of the box diagonal.
    pub initial_radius_fraction: f64,
    /// Acceptance threshold on the predicted/actual reduction ratio.
    pub eta: f64,
}

impl Default for TrustRegion {
    fn default() -> Self {
        Self {
            rho: 1e4,
            initial_radius_fraction: 0.1,
            eta: 0.1,
        }
    }
}

impl TrustRegion {
    /// Solves the problem from `x0`.
    ///
    /// # Errors
    ///
    /// - [`OptimError::DimensionMismatch`] on a wrong-length start.
    /// - [`OptimError::BadStart`] if the penalty function cannot be
    ///   evaluated at the (projected) start.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve<P: NlpProblem>(
        &self,
        problem: &P,
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<SolveResult, OptimError> {
        let n = problem.dim();
        if x0.len() != n {
            return Err(OptimError::DimensionMismatch(n, x0.len()));
        }
        let (lo, hi) = problem.bounds();
        let diag = vector::norm2(&vector::sub(&hi, &lo));
        let mut radius = self.initial_radius_fraction * diag;
        let radius_max = diag;

        let penalty = |p: &[f64]| -> f64 {
            let f = match problem.objective(p) {
                Some(v) => v,
                None => return PENALTY_OBJECTIVE,
            };
            let Some(c) = problem.constraints(p) else {
                return PENALTY_OBJECTIVE;
            };
            f + self.rho
                * c.iter()
                    .map(|&ci| {
                        let v = (-ci).max(0.0);
                        v * v
                    })
                    .sum::<f64>()
        };

        let mut evals = 0usize;
        let mut x = x0.to_vec();
        problem.project(&mut x);
        let mut fx = penalty(&x);
        evals += 1;
        if fx >= PENALTY_OBJECTIVE {
            return Err(OptimError::BadStart(
                "penalty function fails at the starting point".into(),
            ));
        }
        let mut g = central_gradient(
            |p| Some(penalty(p)),
            &x,
            &lo,
            &hi,
            PENALTY_OBJECTIVE,
            &mut evals,
        );
        let mut b = Matrix::identity(n);
        let mut converged = false;
        let mut iterations = 0;

        for iter in 1..=opts.max_iterations {
            iterations = iter;
            if vector::norm2(&g) < opts.tolerance {
                converged = true;
                break;
            }

            // Dogleg step inside the trust region.
            let p_u = {
                // Cauchy point: −(gᵀg / gᵀBg)·g.
                let bg = b.matvec(&g);
                let gbg = vector::dot(&g, &bg);
                let gg = vector::dot(&g, &g);
                let tau = if gbg > 0.0 {
                    gg / gbg
                } else {
                    radius / gg.sqrt()
                };
                vector::scaled(-tau, &g)
            };
            // The damped-BFGS matrix is SPD, so the degradation chain's
            // Cholesky rung normally wins; LU/iterative cover rounding
            // pathologies, and the steepest-descent point is the last
            // resort.
            let p_b = solve_dense_chain(&b, &g)
                .map(|s| vector::scaled(-1.0, &s.x))
                .unwrap_or_else(|_| p_u.clone());

            let step = dogleg(&p_u, &p_b, radius);
            // Clip into the box.
            let mut trial: Vec<f64> = x.iter().zip(&step).map(|(a, s)| a + s).collect();
            problem.project(&mut trial);
            let actual_step = vector::sub(&trial, &x);

            let f_trial = penalty(&trial);
            evals += 1;
            // Predicted reduction from the quadratic model.
            let bs = b.matvec(&actual_step);
            let predicted = -(vector::dot(&g, &actual_step) + 0.5 * vector::dot(&actual_step, &bs));
            let actual = fx - f_trial;
            let ratio = if predicted.abs() > 1e-16 {
                actual / predicted
            } else {
                0.0
            };

            if ratio < 0.25 {
                radius *= 0.25;
            } else if ratio > 0.75 && vector::norm2(&actual_step) > 0.9 * radius {
                radius = (2.0 * radius).min(radius_max);
            }

            if ratio > self.eta && actual > 0.0 {
                let g_new = central_gradient(
                    |p| Some(penalty(p)),
                    &trial,
                    &lo,
                    &hi,
                    PENALTY_OBJECTIVE,
                    &mut evals,
                );
                let y = vector::sub(&g_new, &g);
                damped_bfgs_update(&mut b, &actual_step, &y);
                x = trial;
                fx = f_trial;
                g = g_new;
            }
            if radius < 1e-14 {
                converged = true;
                break;
            }
        }

        let objective = problem.objective_or_penalty(&x);
        evals += 1;
        Ok(SolveResult {
            x,
            objective,
            iterations,
            evaluations: evals,
            converged,
            trace: Vec::new(),
        })
    }
}

/// Classic dogleg: follow the steepest-descent leg to the Cauchy point,
/// then bend toward the Newton point, truncated at the trust radius.
fn dogleg(p_u: &[f64], p_b: &[f64], radius: f64) -> Vec<f64> {
    let nb = vector::norm2(p_b);
    if nb <= radius {
        return p_b.to_vec();
    }
    let nu = vector::norm2(p_u);
    if nu >= radius {
        return vector::scaled(radius / nu, p_u);
    }
    // Find τ ∈ [0,1] with ‖p_u + τ(p_b − p_u)‖ = radius.
    let d = vector::sub(p_b, p_u);
    let a = vector::dot(&d, &d);
    let b = 2.0 * vector::dot(p_u, &d);
    let c = vector::dot(p_u, p_u) - radius * radius;
    let disc = (b * b - 4.0 * a * c).max(0.0).sqrt();
    let tau = ((-b + disc) / (2.0 * a)).clamp(0.0, 1.0);
    p_u.iter().zip(&d).map(|(u, di)| u + tau * di).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnProblem;

    fn opts() -> SolveOptions {
        SolveOptions {
            max_iterations: 500,
            tolerance: 1e-6,
        }
    }

    #[test]
    fn dogleg_geometry() {
        // Newton inside radius → take it.
        assert_eq!(dogleg(&[0.5, 0.0], &[1.0, 0.0], 2.0), vec![1.0, 0.0]);
        // Cauchy outside radius → scaled steepest descent.
        let d = dogleg(&[3.0, 0.0], &[5.0, 0.0], 1.0);
        assert!((d[0] - 1.0).abs() < 1e-12);
        // Between: on the boundary.
        let d = dogleg(&[0.5, 0.0], &[0.5, 3.0], 1.0);
        assert!((vector::norm2(&d) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bounded_quadratic() {
        let p = FnProblem::new(
            vec![0.0],
            vec![2.0],
            |x| Some((x[0] - 3.0).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = TrustRegion::default().solve(&p, &[0.5], &opts()).unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock() {
        let p = FnProblem::new(
            vec![-2.0, -2.0],
            vec![2.0, 2.0],
            |x| Some((1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = TrustRegion::default()
            .solve(&p, &[-1.2, 1.0], &opts())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn constrained_by_penalty() {
        // min (x−1)² + (y−2)² s.t. x + y ≤ 2 → near (0.5, 1.5) (penalty
        // methods land slightly outside; tolerance reflects that).
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2)),
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let r = TrustRegion::default()
            .solve(&p, &[0.5, 0.5], &opts())
            .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.5).abs() < 1e-2, "{:?}", r.x);
        // Penalty violation is bounded by ∇f/(2ρ).
        assert!(p.is_feasible(&r.x, 1e-3));
    }

    #[test]
    fn avoids_failure_region() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| {
                if x[0] < 0.3 {
                    None
                } else {
                    Some((x[0] - 0.1).powi(2))
                }
            },
            0,
            |_| Some(Vec::new()),
        );
        let r = TrustRegion::default().solve(&p, &[0.8], &opts()).unwrap();
        assert!(r.x[0] >= 0.3 - 1e-9);
        assert!(r.x[0] < 0.45, "{:?}", r.x);
    }
}
