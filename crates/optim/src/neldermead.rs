//! Nelder-Mead simplex search — a derivative-free companion to the
//! gradient-based solvers.
//!
//! The OFTEC objective is only available numerically (one thermal solve
//! per evaluation); finite-difference gradients are accurate here, but a
//! derivative-free method is a useful robustness baseline and handles
//! objectives with mild noise (e.g. iterative-solver jitter) gracefully.

use crate::problem::PENALTY_OBJECTIVE;
use crate::{NlpProblem, OptimError, SolveOptions, SolveResult};

/// The Nelder-Mead downhill-simplex solver.
///
/// Box bounds are enforced by projection; inequality constraints through
/// a quadratic penalty (like [`crate::TrustRegion`]). Evaluation failures
/// (thermal runaway) count as [`PENALTY_OBJECTIVE`] and repel the simplex.
#[derive(Debug, Clone, Copy)]
pub struct NelderMead {
    /// Reflection coefficient (standard: 1).
    pub alpha: f64,
    /// Expansion coefficient (standard: 2).
    pub gamma: f64,
    /// Contraction coefficient (standard: 0.5).
    pub rho: f64,
    /// Shrink coefficient (standard: 0.5).
    pub sigma: f64,
    /// Constraint penalty weight.
    pub penalty_weight: f64,
    /// Initial simplex edge, as a fraction of each coordinate's range.
    pub initial_step_fraction: f64,
}

impl Default for NelderMead {
    fn default() -> Self {
        Self {
            alpha: 1.0,
            gamma: 2.0,
            rho: 0.5,
            sigma: 0.5,
            penalty_weight: 1e4,
            initial_step_fraction: 0.1,
        }
    }
}

impl NelderMead {
    /// Solves the problem from `x0`.
    ///
    /// # Errors
    ///
    /// - [`OptimError::DimensionMismatch`] if `x0` has the wrong length.
    /// - [`OptimError::BadStart`] if the merit cannot be evaluated at the
    ///   (projected) start.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve<P: NlpProblem>(
        &self,
        problem: &P,
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<SolveResult, OptimError> {
        let n = problem.dim();
        if x0.len() != n {
            return Err(OptimError::DimensionMismatch(n, x0.len()));
        }
        let (lo, hi) = problem.bounds();
        let mut evals = 0usize;

        let merit = |p: &[f64]| -> f64 {
            let f = match problem.objective(p) {
                Some(v) => v,
                None => return PENALTY_OBJECTIVE,
            };
            let Some(c) = problem.constraints(p) else {
                return PENALTY_OBJECTIVE;
            };
            f + self.penalty_weight
                * c.iter()
                    .map(|&ci| {
                        let v = (-ci).max(0.0);
                        v * v
                    })
                    .sum::<f64>()
        };
        let project = |p: &mut Vec<f64>| {
            for ((xi, &l), &h) in p.iter_mut().zip(&lo).zip(&hi) {
                *xi = xi.clamp(l, h);
            }
        };

        // Initial simplex: x0 plus one vertex per coordinate.
        let mut start = x0.to_vec();
        project(&mut start);
        let f_start = merit(&start);
        evals += 1;
        if f_start >= PENALTY_OBJECTIVE {
            return Err(OptimError::BadStart(
                "merit cannot be evaluated at the starting point".into(),
            ));
        }
        let mut simplex: Vec<(Vec<f64>, f64)> = vec![(start.clone(), f_start)];
        for i in 0..n {
            let mut v = start.clone();
            let span = (hi[i] - lo[i]).max(1e-12);
            let step = self.initial_step_fraction * span;
            v[i] = if v[i] + step <= hi[i] {
                v[i] + step
            } else {
                v[i] - step
            };
            let f = merit(&v);
            evals += 1;
            simplex.push((v, f));
        }

        let mut iterations = 0;
        let mut converged = false;
        for iter in 1..=opts.max_iterations * 4 {
            iterations = iter;
            simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
            let best = simplex[0].1;
            let worst = simplex[n].1;
            // Convergence: simplex small in value and in space.
            let spatial: f64 = (0..n)
                .map(|i| {
                    let (mn, mx) = simplex.iter().fold((f64::MAX, f64::MIN), |(a, b), v| {
                        (a.min(v.0[i]), b.max(v.0[i]))
                    });
                    (mx - mn) / (hi[i] - lo[i]).max(1e-12)
                })
                .fold(0.0_f64, f64::max);
            if (worst - best).abs() <= opts.tolerance * best.abs().max(1.0)
                && spatial <= opts.tolerance.sqrt()
            {
                converged = true;
                break;
            }

            // Centroid of all but the worst.
            let mut centroid = vec![0.0; n];
            for (v, _) in &simplex[..n] {
                for (ci, &vi) in centroid.iter_mut().zip(v) {
                    *ci += vi / n as f64;
                }
            }
            let worst_x = simplex[n].0.clone();
            let second_worst = simplex[n - 1].1;

            let mut reflect: Vec<f64> = centroid
                .iter()
                .zip(&worst_x)
                .map(|(c, w)| c + self.alpha * (c - w))
                .collect();
            project(&mut reflect);
            let f_reflect = merit(&reflect);
            evals += 1;

            if f_reflect < best {
                // Try expansion.
                let mut expand: Vec<f64> = centroid
                    .iter()
                    .zip(&worst_x)
                    .map(|(c, w)| c + self.gamma * (c - w))
                    .collect();
                project(&mut expand);
                let f_expand = merit(&expand);
                evals += 1;
                simplex[n] = if f_expand < f_reflect {
                    (expand, f_expand)
                } else {
                    (reflect, f_reflect)
                };
            } else if f_reflect < second_worst {
                simplex[n] = (reflect, f_reflect);
            } else {
                // Contraction toward the better of worst/reflected.
                let (toward, f_toward) = if f_reflect < worst {
                    (&reflect, f_reflect)
                } else {
                    (&worst_x, worst)
                };
                let mut contract: Vec<f64> = centroid
                    .iter()
                    .zip(toward)
                    .map(|(c, t)| c + self.rho * (t - c))
                    .collect();
                project(&mut contract);
                let f_contract = merit(&contract);
                evals += 1;
                if f_contract < f_toward {
                    simplex[n] = (contract, f_contract);
                } else {
                    // Shrink everything toward the best vertex.
                    let best_x = simplex[0].0.clone();
                    for entry in simplex.iter_mut().skip(1) {
                        for (vi, &bi) in entry.0.iter_mut().zip(&best_x) {
                            *vi = bi + self.sigma * (*vi - bi);
                        }
                        entry.1 = merit(&entry.0);
                        evals += 1;
                    }
                }
            }
        }

        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let x = simplex.remove(0).0;
        let objective = problem.objective_or_penalty(&x);
        evals += 1;
        Ok(SolveResult {
            x,
            objective,
            iterations,
            evaluations: evals,
            converged,
            trace: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnProblem;

    fn opts() -> SolveOptions {
        SolveOptions {
            max_iterations: 500,
            tolerance: 1e-8,
        }
    }

    #[test]
    fn bounded_quadratic() {
        let p = FnProblem::new(
            vec![0.0],
            vec![2.0],
            |x| Some((x[0] - 3.0).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = NelderMead::default().solve(&p, &[0.5], &opts()).unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock() {
        let p = FnProblem::new(
            vec![-2.0, -2.0],
            vec![2.0, 2.0],
            |x| Some((1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = NelderMead::default()
            .solve(&p, &[-1.2, 1.0], &opts())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn constrained_by_penalty() {
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2)),
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let r = NelderMead::default()
            .solve(&p, &[0.5, 0.5], &opts())
            .unwrap();
        assert!((r.x[0] - 0.5).abs() < 2e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.5).abs() < 2e-2, "{:?}", r.x);
    }

    #[test]
    fn tolerates_noisy_objective() {
        // Deterministic high-frequency ripple on a quadratic: gradient
        // methods see garbage derivatives, simplex search shrugs.
        let p = FnProblem::new(
            vec![-5.0],
            vec![5.0],
            |x| Some((x[0] - 1.5).powi(2) + 0.001 * (1e4 * x[0]).sin()),
            0,
            |_| Some(Vec::new()),
        );
        let r = NelderMead::default().solve(&p, &[-4.0], &opts()).unwrap();
        assert!((r.x[0] - 1.5).abs() < 0.05, "{:?}", r.x);
    }

    #[test]
    fn avoids_failure_region() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| {
                if x[0] < 0.3 {
                    None
                } else {
                    Some((x[0] - 0.1).powi(2))
                }
            },
            0,
            |_| Some(Vec::new()),
        );
        let r = NelderMead::default().solve(&p, &[0.8], &opts()).unwrap();
        assert!(r.x[0] >= 0.3 - 1e-9);
        assert!(r.x[0] < 0.4, "{:?}", r.x);
    }

    #[test]
    fn dimension_mismatch() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| Some(x[0]),
            0,
            |_| Some(Vec::new()),
        );
        assert!(matches!(
            NelderMead::default().solve(&p, &[0.1, 0.2], &opts()),
            Err(OptimError::DimensionMismatch(1, 2))
        ));
    }
}
