//! Constrained nonlinear programming for OFTEC — the reproduction's
//! substitute for MATLAB's `fmincon`.
//!
//! The paper (§5.2) classifies its cooling-power minimization as a
//! constrained nonlinear program, tries three state-of-the-art methods —
//! interior point, trust region, and **active-set SQP** — and picks the
//! last for quality and speed. All three are implemented here from
//! scratch, plus an exhaustive [`GridSearch`] used as ground truth in the
//! experiments:
//!
//! - [`ActiveSetSqp`] — sequential quadratic programming with a primal
//!   active-set QP subproblem solver ([`solve_qp`]), damped-BFGS Hessian
//!   of the Lagrangian, and an ℓ₁-merit backtracking line search;
//! - [`InteriorPoint`] — logarithmic barrier with a BFGS inner solver and
//!   a decreasing barrier schedule;
//! - [`TrustRegion`] — quadratic-penalty formulation minimized by a
//!   dogleg trust-region method;
//! - [`GridSearch`] — dense sampling of the (low-dimensional) box.
//!
//! Problems expose their objective and constraints through [`NlpProblem`].
//! Objective evaluations are allowed to *fail* (return `None`): OFTEC's
//! thermal simulator cannot produce a value inside the thermal-runaway
//! region, and the solvers treat such points as prohibitively bad, which
//! makes line searches and barrier steps back away from the region —
//! matching the paper's "objective tends to infinity" reading of
//! Figure 6(a)(b).
//!
//! # Examples
//!
//! ```
//! use oftec_optim::{ActiveSetSqp, FnProblem, SolveOptions};
//!
//! // min (x-1)² + (y-2)²  s.t.  x + y ≤ 2  (i.e. 2 − x − y ≥ 0), 0 ≤ x,y ≤ 4.
//! let problem = FnProblem::new(
//!     vec![0.0, 0.0],
//!     vec![4.0, 4.0],
//!     |x| Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2)),
//!     1,
//!     |x| Some(vec![2.0 - x[0] - x[1]]),
//! );
//! let result = ActiveSetSqp::default()
//!     .solve(&problem, &[0.5, 0.5], &SolveOptions::default())?;
//! assert!((result.x[0] - 0.5).abs() < 1e-4);
//! assert!((result.x[1] - 1.5).abs() < 1e-4);
//! # Ok::<(), oftec_optim::OptimError>(())
//! ```

mod bfgs;
mod gridsearch;
mod interior;
mod linesearch;
mod multistart;
mod neldermead;
mod numdiff;
mod problem;
mod qp;
mod sqp;
mod trustregion;

pub use bfgs::damped_bfgs_update;
pub use gridsearch::GridSearch;
pub use interior::InteriorPoint;
pub use linesearch::backtrack;
pub use multistart::{grid_starts, multistart};
pub use neldermead::NelderMead;
pub use numdiff::{central_gradient, forward_gradient};
pub use problem::{unconstrained, FnProblem, NlpProblem, PENALTY_OBJECTIVE};
pub use qp::{solve_qp, QpError};
pub use sqp::ActiveSetSqp;
pub use trustregion::TrustRegion;

/// Common solver controls.
#[derive(Debug, Clone, Copy)]
pub struct SolveOptions {
    /// Outer-iteration cap.
    pub max_iterations: usize,
    /// First-order/step tolerance.
    pub tolerance: f64,
}

impl Default for SolveOptions {
    fn default() -> Self {
        Self {
            max_iterations: 200,
            tolerance: 1e-7,
        }
    }
}

/// One outer-iteration sample of a convergence trace.
///
/// Captured by the solvers (currently [`ActiveSetSqp`]) only while
/// telemetry is collecting ([`oftec_telemetry::collecting`]); callers that
/// know the problem's scaling decode domain quantities (e.g. max die
/// temperature) from `objective`/`constraints`.
#[derive(Debug, Clone, PartialEq)]
pub struct IterSample {
    /// Outer iteration number (0 = the starting point).
    pub iter: usize,
    /// Objective value at the iterate.
    pub objective: f64,
    /// Largest constraint violation `max_j(-c_j)⁺` (0 when feasible).
    pub max_violation: f64,
    /// Constraint values at the iterate.
    pub constraints: Vec<f64>,
    /// The iterate itself.
    pub x: Vec<f64>,
    /// ∞-norm of the accepted step into this iterate (0 at `iter` 0).
    pub step_norm: f64,
    /// Active rows in the QP subproblem (nonlinear + box rows with a
    /// nonzero multiplier); 0 at `iter` 0 and after restoration steps.
    pub active_set: usize,
}

/// Outcome of a solve.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResult {
    /// The final iterate.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub objective: f64,
    /// Outer iterations performed.
    pub iterations: usize,
    /// Objective/constraint evaluations consumed (including those spent on
    /// finite-difference gradients).
    pub evaluations: usize,
    /// `true` if a convergence test was met (as opposed to hitting the
    /// iteration cap or an early-stop predicate).
    pub converged: bool,
    /// Per-iteration convergence trace. Empty unless telemetry is
    /// collecting at solve time (see [`IterSample`]).
    pub trace: Vec<IterSample>,
}

/// Errors from the solvers.
#[derive(Debug, Clone, PartialEq)]
pub enum OptimError {
    /// The starting point violates bounds or evaluates to a failure.
    BadStart(String),
    /// Dimensions of the problem and the starting point disagree.
    DimensionMismatch(usize, usize),
    /// An internal subproblem failed irrecoverably.
    Subproblem(String),
    /// The model produced NaN/inf where a finite value was required; holds
    /// what was being evaluated and the outer iteration at which it
    /// happened (0 = the starting point).
    NonFinite {
        /// What evaluated to NaN/inf ("objective", "constraints", …).
        what: &'static str,
        /// Outer iteration at which the non-finite value appeared.
        iteration: usize,
    },
}

impl core::fmt::Display for OptimError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::BadStart(what) => write!(f, "bad starting point: {what}"),
            Self::DimensionMismatch(e, a) => {
                write!(f, "dimension mismatch: expected {e}, got {a}")
            }
            Self::Subproblem(what) => write!(f, "subproblem failure: {what}"),
            Self::NonFinite { what, iteration } => {
                write!(f, "non-finite {what} at iteration {iteration}")
            }
        }
    }
}

impl std::error::Error for OptimError {}

/// Builds an [`OptimError::NonFinite`], counting the rejection and emitting
/// a WARN event so garbage model output is visible in telemetry.
pub(crate) fn non_finite_error(what: &'static str, iteration: usize) -> OptimError {
    oftec_telemetry::counter_add("optim.non_finite", 1);
    oftec_telemetry::event(
        oftec_telemetry::Severity::Warn,
        "optim.non_finite",
        &[
            ("what", oftec_telemetry::Field::Str(what)),
            ("iteration", oftec_telemetry::Field::U64(iteration as u64)),
        ],
    );
    OptimError::NonFinite { what, iteration }
}
