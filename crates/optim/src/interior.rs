//! Logarithmic-barrier interior-point method — one of the two
//! alternatives the paper benchmarked against active-set SQP (§5.2).

use crate::problem::PENALTY_OBJECTIVE;
use crate::{
    backtrack, central_gradient, damped_bfgs_update, NlpProblem, OptimError, SolveOptions,
    SolveResult,
};
use oftec_linalg::{solve_dense_chain, vector, Matrix};

/// Barrier interior-point solver: minimizes
/// `f(x) − μ·Σ ln c_i(x) − μ·Σ ln(x−lo) − μ·Σ ln(hi−x)` for a decreasing
/// barrier schedule, using BFGS-Newton steps with a backtracking line
/// search inside each barrier subproblem.
#[derive(Debug, Clone, Copy)]
pub struct InteriorPoint {
    /// Initial barrier weight.
    pub mu0: f64,
    /// Barrier reduction factor per outer iteration (0 < σ < 1).
    pub sigma: f64,
    /// Final barrier weight (outer loop stops below this).
    pub mu_min: f64,
    /// Inner BFGS iterations per barrier subproblem.
    pub inner_iterations: usize,
}

impl Default for InteriorPoint {
    fn default() -> Self {
        Self {
            mu0: 1.0,
            sigma: 0.2,
            mu_min: 1e-8,
            inner_iterations: 60,
        }
    }
}

impl InteriorPoint {
    /// Solves the problem from a strictly feasible `x0` (interior of the
    /// box and of every constraint).
    ///
    /// # Errors
    ///
    /// - [`OptimError::DimensionMismatch`] on a wrong-length start.
    /// - [`OptimError::BadStart`] if `x0` is not strictly feasible or the
    ///   objective fails there.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve<P: NlpProblem>(
        &self,
        problem: &P,
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<SolveResult, OptimError> {
        let n = problem.dim();
        if x0.len() != n {
            return Err(OptimError::DimensionMismatch(n, x0.len()));
        }
        let (lo, hi) = problem.bounds();
        let mut x = x0.to_vec();
        // Nudge strictly inside the box.
        for i in 0..n {
            let pad = 1e-6 * (hi[i] - lo[i]).max(1e-6);
            x[i] = x[i].clamp(lo[i] + pad, hi[i] - pad);
        }
        let mut evals = 0usize;
        if problem.objective(&x).is_none() {
            return Err(OptimError::BadStart(
                "objective fails at the starting point".into(),
            ));
        }
        if !problem.constraints_or_penalty(&x).iter().all(|&c| c > 0.0) {
            return Err(OptimError::BadStart(
                "interior point requires a strictly feasible start".into(),
            ));
        }
        evals += 2;

        let barrier = |p: &[f64], mu: f64| -> f64 {
            // Check the barrier domain *before* touching the model, so the
            // objective is never evaluated outside its box (OFTEC's
            // simulator rejects out-of-bound operating points).
            let mut slack_terms = 0.0;
            for i in 0..p.len() {
                let s_lo = p[i] - lo[i];
                let s_hi = hi[i] - p[i];
                if s_lo <= 0.0 || s_hi <= 0.0 {
                    return PENALTY_OBJECTIVE;
                }
                slack_terms -= mu * (s_lo.ln() + s_hi.ln());
            }
            let Some(c) = problem.constraints(p) else {
                return PENALTY_OBJECTIVE;
            };
            let mut total = slack_terms;
            for ci in c {
                if ci <= 0.0 {
                    return PENALTY_OBJECTIVE;
                }
                total -= mu * ci.ln();
            }
            match problem.objective(p) {
                Some(f) => total + f,
                None => PENALTY_OBJECTIVE,
            }
        };

        let mut mu = self.mu0;
        let mut total_iters = 0usize;
        let mut converged = false;
        while mu > self.mu_min {
            // BFGS on the barrier subproblem.
            let mut b = Matrix::identity(n);
            let mut fx = barrier(&x, mu);
            let mut g = central_gradient(
                |p| Some(barrier(p, mu)),
                &x,
                &lo,
                &hi,
                PENALTY_OBJECTIVE,
                &mut evals,
            );
            for _ in 0..self.inner_iterations {
                total_iters += 1;
                // Newton-like direction d = −B⁻¹ g.
                let d = match solve_dense_chain(&b, &g) {
                    Ok(s) => vector::scaled(-1.0, &s.x),
                    Err(_) => vector::scaled(-1.0, &g),
                };
                let slope = vector::dot(&g, &d);
                let dir = if slope < 0.0 {
                    d
                } else {
                    vector::scaled(-1.0, &g)
                };
                let slope = vector::dot(&g, &dir);
                let (alpha, f_new, ls) =
                    backtrack(|p| barrier(p, mu), &x, fx, &dir, slope, 1e-4, 50);
                evals += ls;
                // oftec-lint: allow(L004, the line search reports exactly 0.0 when no step is taken)
                if alpha == 0.0 {
                    break;
                }
                let step: Vec<f64> = dir.iter().map(|&v| alpha * v).collect();
                let x_new: Vec<f64> = x.iter().zip(&step).map(|(a, s)| a + s).collect();
                let g_new = central_gradient(
                    |p| Some(barrier(p, mu)),
                    &x_new,
                    &lo,
                    &hi,
                    PENALTY_OBJECTIVE,
                    &mut evals,
                );
                let y = vector::sub(&g_new, &g);
                damped_bfgs_update(&mut b, &step, &y);
                x = x_new;
                fx = f_new;
                g = g_new;
                if vector::norm2(&g) < opts.tolerance.max(mu) {
                    break;
                }
                if total_iters >= opts.max_iterations * 10 {
                    break;
                }
            }
            converged = mu <= self.mu_min * (1.0 / self.sigma);
            mu *= self.sigma;
        }

        let f = problem.objective_or_penalty(&x);
        evals += 1;
        Ok(SolveResult {
            x,
            objective: f,
            iterations: total_iters,
            evaluations: evals,
            converged,
            trace: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnProblem;

    fn opts() -> SolveOptions {
        SolveOptions::default()
    }

    #[test]
    fn bounded_quadratic() {
        let p = FnProblem::new(
            vec![0.0],
            vec![2.0],
            |x| Some((x[0] - 3.0).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = InteriorPoint::default().solve(&p, &[0.5], &opts()).unwrap();
        assert!((r.x[0] - 2.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn circle_constraint() {
        let p = FnProblem::new(
            vec![-2.0, -2.0],
            vec![2.0, 2.0],
            |x| Some(x[0] + x[1]),
            1,
            |x| Some(vec![1.0 - x[0] * x[0] - x[1] * x[1]]),
        );
        let r = InteriorPoint::default()
            .solve(&p, &[0.0, 0.0], &opts())
            .unwrap();
        let s = (0.5_f64).sqrt();
        assert!((r.x[0] + s).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] + s).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn iterates_stay_strictly_feasible() {
        // Track feasibility through the objective closure.
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| {
                assert!(
                    x[0] >= 0.0 && x[1] >= 0.0 && x[0] <= 4.0 && x[1] <= 4.0,
                    "left the box: {x:?}"
                );
                Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2))
            },
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let r = InteriorPoint::default()
            .solve(&p, &[0.5, 0.5], &opts())
            .unwrap();
        assert!(p.is_feasible(&r.x, 1e-9));
        assert!((r.x[0] - 0.5).abs() < 1e-2, "{:?}", r.x);
        assert!((r.x[1] - 1.5).abs() < 1e-2, "{:?}", r.x);
    }

    #[test]
    fn infeasible_start_rejected() {
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| Some(x[0] + x[1]),
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let err = InteriorPoint::default()
            .solve(&p, &[3.0, 3.0], &opts())
            .unwrap_err();
        assert!(matches!(err, OptimError::BadStart(_)));
    }
}
