//! Damped BFGS updates for the Lagrangian Hessian approximation.

use oftec_linalg::{vector, Matrix};

/// Applies Powell's damped BFGS update to `b` in place, given the step
/// `s = x⁺ − x` and the gradient difference `y = ∇L⁺ − ∇L`.
///
/// Damping replaces `y` by a convex combination with `B·s` whenever the
/// curvature `sᵀy` is too small, keeping `B` positive definite — essential
/// inside SQP where the true Lagrangian Hessian can be indefinite
/// (Nocedal & Wright, Procedure 18.2).
///
/// Steps that are effectively zero are skipped.
///
/// # Panics
///
/// Panics if dimensions disagree.
pub fn damped_bfgs_update(b: &mut Matrix, s: &[f64], y: &[f64]) {
    let n = s.len();
    assert_eq!(b.rows(), n, "Hessian dimension mismatch");
    assert_eq!(y.len(), n, "y length mismatch");
    let s_norm = vector::norm2(s);
    if s_norm < 1e-14 {
        return;
    }

    let bs = b.matvec(s);
    let sbs = vector::dot(s, &bs);
    let sy = vector::dot(s, y);

    // Powell damping.
    let theta = if sy >= 0.2 * sbs {
        1.0
    } else {
        0.8 * sbs / (sbs - sy)
    };
    let mut r = vec![0.0; n];
    for i in 0..n {
        r[i] = theta * y[i] + (1.0 - theta) * bs[i];
    }
    let sr = vector::dot(s, &r);
    if sr <= 1e-14 || sbs <= 1e-14 {
        return; // nothing safe to learn from this step
    }

    // B ← B − (B s sᵀ B)/(sᵀBs) + (r rᵀ)/(sᵀr).
    for i in 0..n {
        for j in 0..n {
            let upd = -bs[i] * bs[j] / sbs + r[i] * r[j] / sr;
            b[(i, j)] += upd;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use oftec_linalg::CholeskyFactor;

    #[test]
    fn recovers_quadratic_hessian_direction() {
        // For f = ½xᵀAx the secant pairs satisfy y = A s; BFGS must map
        // s ↦ y after an update along s.
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let mut b = Matrix::identity(2);
        let s = [1.0, 0.5];
        let y = a.matvec(&s);
        damped_bfgs_update(&mut b, &s, &y);
        let bs = b.matvec(&s);
        for (bi, yi) in bs.iter().zip(&y) {
            assert!((bi - yi).abs() < 1e-10, "secant equation violated");
        }
    }

    #[test]
    fn stays_positive_definite_under_negative_curvature() {
        let mut b = Matrix::identity(2);
        // Hostile pair: sᵀy < 0 (indefinite Lagrangian curvature).
        let s = [1.0, 0.0];
        let y = [-0.5, 0.2];
        damped_bfgs_update(&mut b, &s, &y);
        assert!(
            CholeskyFactor::new(&b).is_ok(),
            "damping failed to preserve positive definiteness"
        );
    }

    #[test]
    fn zero_step_is_ignored() {
        let mut b = Matrix::identity(3);
        let before = b.clone();
        damped_bfgs_update(&mut b, &[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]);
        assert_eq!(b, before);
    }

    #[test]
    fn repeated_updates_satisfy_latest_secant_and_stay_spd() {
        // BFGS guarantees the *latest* secant equation and positive
        // definiteness — not entrywise convergence for arbitrary
        // (non-conjugate) direction sequences.
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let mut b = Matrix::identity(2);
        let dirs: [[f64; 2]; 6] = [
            [1.0, 0.0],
            [0.0, 1.0],
            [1.0, 1.0],
            [1.0, -1.0],
            [0.3, 0.7],
            [0.9, 0.1],
        ];
        for s in dirs {
            let y = a.matvec(&s);
            damped_bfgs_update(&mut b, &s, &y);
            let bs = b.matvec(&s);
            for (bi, yi) in bs.iter().zip(&y) {
                assert!((bi - yi).abs() < 1e-8, "secant violated");
            }
            assert!(
                CholeskyFactor::new(&b).is_ok(),
                "lost positive definiteness"
            );
        }
        // And the quadratic form along the last direction matches A's.
        let s = [0.9, 0.1];
        let sbs = vector::dot(&s, &b.matvec(&s));
        let sas = vector::dot(&s, &a.matvec(&s));
        assert!((sbs - sas).abs() < 1e-8);
    }
}
