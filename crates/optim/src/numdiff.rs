//! Finite-difference gradients.
//!
//! The paper's objective "can only be determined numerically for a given
//! ω and I_TEC" (§5.2) — its SQP runs on numerical gradients, and so does
//! this one. Steps are relative and respect box bounds (one-sided at the
//! boundary).

/// Central-difference gradient of `f`, with per-coordinate steps that stay
/// inside `[lo, hi]`. Increments `evals` by the number of `f` calls.
///
/// `f` failures (None) are substituted by `penalty`, which makes the
/// gradient point away from failure regions.
///
/// # Panics
///
/// Panics if slice lengths disagree.
pub fn central_gradient<F>(
    f: F,
    x: &[f64],
    lo: &[f64],
    hi: &[f64],
    penalty: f64,
    evals: &mut usize,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> Option<f64>,
{
    assert_eq!(x.len(), lo.len(), "bound length mismatch");
    assert_eq!(x.len(), hi.len(), "bound length mismatch");
    let n = x.len();
    let mut g = vec![0.0; n];
    let mut xp = x.to_vec();
    for i in 0..n {
        let h = step_size(x[i], hi[i] - lo[i]);
        let up = (x[i] + h).min(hi[i]);
        let dn = (x[i] - h).max(lo[i]);
        let denom = up - dn;
        if denom <= 0.0 {
            g[i] = 0.0;
            continue;
        }
        xp[i] = up;
        let fu = f(&xp).unwrap_or(penalty);
        xp[i] = dn;
        let fd = f(&xp).unwrap_or(penalty);
        xp[i] = x[i];
        *evals += 2;
        g[i] = (fu - fd) / denom;
    }
    g
}

/// Forward-difference gradient given the already-known value `f0 = f(x)`;
/// cheaper than [`central_gradient`] (n evaluations instead of 2n).
///
/// # Panics
///
/// Panics if slice lengths disagree.
pub fn forward_gradient<F>(
    f: F,
    x: &[f64],
    f0: f64,
    lo: &[f64],
    hi: &[f64],
    penalty: f64,
    evals: &mut usize,
) -> Vec<f64>
where
    F: Fn(&[f64]) -> Option<f64>,
{
    assert_eq!(x.len(), lo.len(), "bound length mismatch");
    assert_eq!(x.len(), hi.len(), "bound length mismatch");
    let n = x.len();
    let mut g = vec![0.0; n];
    let mut xp = x.to_vec();
    for i in 0..n {
        let h = step_size(x[i], hi[i] - lo[i]);
        // Step backward when forward would leave the box.
        let (xi, sign) = if x[i] + h <= hi[i] {
            (x[i] + h, 1.0)
        } else {
            (x[i] - h, -1.0)
        };
        xp[i] = xi;
        let fi = f(&xp).unwrap_or(penalty);
        xp[i] = x[i];
        *evals += 1;
        g[i] = sign * (fi - f0) / h;
    }
    g
}

/// Relative step: `∛ε · max(|x|, 1% of range, tiny)`.
fn step_size(x: f64, range: f64) -> f64 {
    let scale = x.abs().max(0.01 * range.abs()).max(1e-6);
    f64::EPSILON.cbrt() * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_gradient_is_exact_enough() {
        let f = |x: &[f64]| Some(3.0 * x[0] * x[0] + 2.0 * x[0] * x[1] + x[1] * x[1]);
        let x = [1.0, -2.0];
        let mut evals = 0;
        let g = central_gradient(f, &x, &[-10.0, -10.0], &[10.0, 10.0], 1e9, &mut evals);
        // ∇f = (6x + 2y, 2x + 2y) = (2, -2).
        assert!((g[0] - 2.0).abs() < 1e-6);
        assert!((g[1] + 2.0).abs() < 1e-6);
        assert_eq!(evals, 4);
    }

    #[test]
    fn forward_gradient_close_to_central() {
        let f = |x: &[f64]| Some((x[0] - 0.3).powi(2) + (x[1] + 0.7).powi(2));
        let x = [0.5, 0.5];
        let f0 = f(&x).unwrap();
        let mut e1 = 0;
        let mut e2 = 0;
        let gc = central_gradient(f, &x, &[-1.0, -1.0], &[1.0, 1.0], 1e9, &mut e1);
        let gf = forward_gradient(f, &x, f0, &[-1.0, -1.0], &[1.0, 1.0], 1e9, &mut e2);
        for (a, b) in gc.iter().zip(&gf) {
            assert!((a - b).abs() < 1e-4);
        }
        assert!(e2 < e1);
    }

    #[test]
    fn respects_bounds_at_the_edge() {
        // x at the upper bound: central must use a one-sided interval and
        // still produce the right sign.
        let f = |x: &[f64]| Some(x[0] * x[0]);
        let mut evals = 0;
        let g = central_gradient(f, &[1.0], &[0.0], &[1.0], 1e9, &mut evals);
        assert!(g[0] > 1.9 && g[0] < 2.1);
    }

    #[test]
    fn failure_regions_repel() {
        // f fails for x > 0.5: the gradient at 0.49 must point strongly
        // upward (toward the penalty), so minimizers walk away.
        let f = |x: &[f64]| if x[0] > 0.5 { None } else { Some(x[0]) };
        let mut evals = 0;
        let g = central_gradient(f, &[0.4999999], &[0.0], &[1.0], 1e9, &mut evals);
        assert!(g[0] > 1e6);
    }
}
