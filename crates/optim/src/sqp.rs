//! Active-set sequential quadratic programming — the method the paper
//! selects for OFTEC (§5.2).

use crate::problem::PENALTY_OBJECTIVE;
use crate::{
    backtrack, central_gradient, damped_bfgs_update, non_finite_error, solve_qp, IterSample,
    NlpProblem, OptimError, QpError, SolveOptions, SolveResult,
};
use oftec_linalg::{vector, Matrix};
use oftec_telemetry as telemetry;

/// Largest constraint violation `max_j(-c_j)⁺`.
fn max_violation(c: &[f64]) -> f64 {
    c.iter().fold(0.0_f64, |a, &ci| a.max(-ci))
}

/// The active-set SQP solver.
///
/// Each iteration linearizes the constraints, models the Lagrangian with a
/// damped-BFGS quadratic, solves the resulting inequality-constrained QP
/// with a primal active-set method, and globalizes with a backtracking
/// line search on the ℓ₁ merit function. Gradients are finite differences
/// (the paper's objective is only available numerically).
#[derive(Debug, Clone, Copy)]
pub struct ActiveSetSqp {
    /// Armijo sufficient-decrease parameter.
    pub armijo_c1: f64,
    /// Initial ℓ₁ merit penalty; grows with the largest multiplier seen.
    pub initial_merit_mu: f64,
    /// Maximum step halvings per line search.
    pub max_halvings: usize,
}

impl Default for ActiveSetSqp {
    fn default() -> Self {
        Self {
            armijo_c1: 1e-4,
            initial_merit_mu: 10.0,
            max_halvings: 40,
        }
    }
}

impl ActiveSetSqp {
    /// Solves the problem from `x0`.
    ///
    /// # Errors
    ///
    /// - [`OptimError::DimensionMismatch`] if `x0` has the wrong length.
    /// - [`OptimError::BadStart`] if the objective cannot be evaluated at
    ///   (the box projection of) `x0`.
    /// - [`OptimError::Subproblem`] if the QP solver fails irrecoverably.
    /// - [`OptimError::NonFinite`] if the objective, a constraint, or a
    ///   finite-difference gradient evaluates to NaN/inf — the solver
    ///   refuses to iterate on garbage.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve<P: NlpProblem>(
        &self,
        problem: &P,
        x0: &[f64],
        opts: &SolveOptions,
    ) -> Result<SolveResult, OptimError> {
        self.solve_until(problem, x0, opts, |_, _| false)
    }

    /// Like [`ActiveSetSqp::solve`], but stops as soon as
    /// `stop(x, objective)` returns `true` after an accepted step — the
    /// paper's Algorithm 1 uses this to halt Optimization 2 the moment the
    /// maximum temperature drops below `T_max`.
    ///
    /// # Errors
    ///
    /// Same as [`ActiveSetSqp::solve`].
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve_until<P, S>(
        &self,
        problem: &P,
        x0: &[f64],
        opts: &SolveOptions,
        mut stop: S,
    ) -> Result<SolveResult, OptimError>
    where
        P: NlpProblem,
        S: FnMut(&[f64], f64) -> bool,
    {
        let n = problem.dim();
        if x0.len() != n {
            return Err(OptimError::DimensionMismatch(n, x0.len()));
        }
        let (lo, hi) = problem.bounds();
        let m = problem.n_constraints();
        let mut evals = 0usize;

        let mut x = x0.to_vec();
        problem.project(&mut x);
        let mut f = problem.objective_or_penalty(&x);
        evals += 1;
        if !f.is_finite() {
            return Err(non_finite_error("objective", 0));
        }
        if f >= PENALTY_OBJECTIVE {
            return Err(OptimError::BadStart(
                "objective cannot be evaluated at the starting point".into(),
            ));
        }
        let mut c = problem.constraints_or_penalty(&x);
        evals += 1;
        if !c.iter().all(|ci| ci.is_finite()) {
            return Err(non_finite_error("constraints", 0));
        }

        let collecting = telemetry::collecting();
        let _span = telemetry::span("sqp.solve");
        telemetry::counter_add("sqp.runs", 1);
        let mut trace: Vec<IterSample> = Vec::new();
        if collecting {
            trace.push(IterSample {
                iter: 0,
                objective: f,
                max_violation: max_violation(&c),
                constraints: c.clone(),
                x: x.clone(),
                step_norm: 0.0,
                active_set: 0,
            });
        }

        let mut b = Matrix::identity(n);
        let mut mu = self.initial_merit_mu;
        let mut prev_grad: Option<(Vec<f64>, Matrix)> = None; // (∇f, Jc) at previous x
        let mut prev_step: Option<Vec<f64>> = None;
        let mut converged = false;
        let mut iterations = 0;
        let mut restorations = 0usize;

        if stop(&x, f) {
            return Ok(SolveResult {
                x,
                objective: f,
                iterations,
                evaluations: evals,
                converged: false,
                trace,
            });
        }

        for iter in 1..=opts.max_iterations {
            iterations = iter;
            let _iter_span = telemetry::span("sqp.iter");
            telemetry::counter_add("sqp.iterations", 1);

            // Gradients at the current iterate.
            let grad_f = central_gradient(
                |p| problem.objective(p),
                &x,
                &lo,
                &hi,
                PENALTY_OBJECTIVE,
                &mut evals,
            );
            let mut jac = Matrix::zeros(m, n);
            for j in 0..m {
                let gj = central_gradient(
                    |p| problem.constraints(p).map(|cv| cv[j]),
                    &x,
                    &lo,
                    &hi,
                    -PENALTY_OBJECTIVE,
                    &mut evals,
                );
                for (col, &v) in gj.iter().enumerate() {
                    jac[(j, col)] = v;
                }
            }
            if !grad_f.iter().all(|g| g.is_finite()) {
                return Err(non_finite_error("objective gradient", iter));
            }
            if !jac.as_slice().iter().all(|g| g.is_finite()) {
                return Err(non_finite_error("constraint jacobian", iter));
            }

            // Deferred BFGS update with the previous step.
            if let (Some((g_prev, jac_prev)), Some(s)) = (&prev_grad, &prev_step) {
                // y = ∇L(x, λ) − ∇L(x_prev, λ); multipliers cancel for the
                // constant bound rows. Use the most recent multipliers via
                // the merit weight heuristic: plain ∇f difference plus
                // constraint curvature captured through the Jacobian
                // change weighted by the current violation pressure.
                let mut y = vector::sub(&grad_f, g_prev);
                for j in 0..m {
                    let w = -last_lambda_weight(&c, j);
                    // oftec-lint: allow(L004, exact zero means the multiplier is inactive, not small)
                    if w != 0.0 {
                        for k in 0..n {
                            y[k] += w * (jac[(j, k)] - jac_prev[(j, k)]);
                        }
                    }
                }
                damped_bfgs_update(&mut b, s, &y);
            }

            // QP rows: linearized constraints + box bounds.
            let mut rows: Vec<(Vec<f64>, f64)> = Vec::with_capacity(m + 2 * n);
            for j in 0..m {
                let a: Vec<f64> = (0..n).map(|k| jac[(j, k)]).collect();
                rows.push((a, -c[j]));
            }
            for k in 0..n {
                let mut e = vec![0.0; n];
                e[k] = 1.0;
                rows.push((e.clone(), lo[k] - x[k]));
                let mut me = vec![0.0; n];
                me[k] = -1.0;
                rows.push((me, x[k] - hi[k]));
            }

            let d0 = vec![0.0; n];
            let qp = match solve_qp(&b, &grad_f, &rows, &d0) {
                Ok(sol) => sol,
                Err(QpError::InfeasibleStart(_)) => {
                    // Elastic relaxation: ask only for no worsening of the
                    // violated constraints this iteration.
                    for row in rows.iter_mut().take(m) {
                        row.1 = row.1.min(0.0);
                    }
                    solve_qp(&b, &grad_f, &rows, &d0)
                        .map_err(|e| OptimError::Subproblem(e.to_string()))?
                }
                Err(e) => return Err(OptimError::Subproblem(e.to_string())),
            };
            let (d, lambda) = qp;

            if vector::norm_inf(&d) < opts.tolerance {
                // Stationary in the QP model. If still (slightly)
                // infeasible — possible after elastic relaxation — take a
                // Newton feasibility-restoration step along the most
                // violated constraint's gradient and keep iterating.
                let worst = c
                    .iter()
                    .enumerate()
                    .filter(|(_, &ci)| ci.is_finite() && ci < -1e-8)
                    .min_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(j, _)| j);
                match worst {
                    None => {
                        converged = true;
                        break;
                    }
                    Some(j) if restorations < 25 => {
                        restorations += 1;
                        let a: Vec<f64> = (0..n).map(|k| jac[(j, k)]).collect();
                        let aa = vector::dot(&a, &a);
                        if aa <= 1e-16 {
                            break;
                        }
                        let scale = -c[j] / aa;
                        for (xi, &ai) in x.iter_mut().zip(&a) {
                            *xi += scale * ai;
                        }
                        problem.project(&mut x);
                        f = problem.objective_or_penalty(&x);
                        c = problem.constraints_or_penalty(&x);
                        evals += 2;
                        if !f.is_finite() {
                            return Err(non_finite_error("objective", iter));
                        }
                        if !c.iter().all(|ci| ci.is_finite()) {
                            return Err(non_finite_error("constraints", iter));
                        }
                        prev_grad = None;
                        prev_step = None;
                        if collecting {
                            trace.push(IterSample {
                                iter,
                                objective: f,
                                max_violation: max_violation(&c),
                                constraints: c.clone(),
                                x: x.clone(),
                                step_norm: 0.0,
                                active_set: 0,
                            });
                        }
                        continue;
                    }
                    Some(_) => break,
                }
            }

            // Merit parameter keeps pace with the multipliers.
            let lambda_max = lambda.iter().fold(0.0_f64, |a, &l| a.max(l.abs()));
            mu = mu.max(2.0 * lambda_max + 1.0);

            let merit = |p: &[f64]| -> f64 {
                let fv = problem.objective_or_penalty(p);
                let cv = problem.constraints_or_penalty(p);
                fv + mu * cv.iter().map(|&ci| (-ci).max(0.0)).sum::<f64>()
            };
            let merit_x = f + mu * c.iter().map(|&ci| (-ci).max(0.0)).sum::<f64>();
            // Slope estimate: objective descent plus violation reduction.
            let mut slope = vector::dot(&grad_f, &d);
            for j in 0..m {
                if c[j] < 0.0 {
                    let aj: Vec<f64> = (0..n).map(|k| jac[(j, k)]).collect();
                    slope -= mu * vector::dot(&aj, &d);
                }
            }
            if slope >= 0.0 {
                slope = -vector::dot(&d, &d);
            }

            let (alpha, _, ls_evals) = backtrack(
                merit,
                &x,
                merit_x,
                &d,
                slope,
                self.armijo_c1,
                self.max_halvings,
            );
            evals += 2 * ls_evals;
            // oftec-lint: allow(L004, the line search reports exactly 0.0 when no step is taken)
            if alpha == 0.0 {
                // No merit progress possible along the QP direction:
                // declare convergence if the step was already small.
                converged = vector::norm_inf(&d) < opts.tolerance.sqrt();
                break;
            }

            let step: Vec<f64> = d.iter().map(|&di| alpha * di).collect();
            for (xi, si) in x.iter_mut().zip(&step) {
                *xi += si;
            }
            problem.project(&mut x);
            f = problem.objective_or_penalty(&x);
            c = problem.constraints_or_penalty(&x);
            evals += 2;
            if !f.is_finite() {
                return Err(non_finite_error("objective", iter));
            }
            if !c.iter().all(|ci| ci.is_finite()) {
                return Err(non_finite_error("constraints", iter));
            }

            if collecting {
                let violation = max_violation(&c);
                let active = lambda.iter().filter(|&&l| l.abs() > 1e-12).count();
                let step_norm = vector::norm_inf(&step);
                telemetry::event(
                    telemetry::Severity::Debug,
                    "sqp.iter",
                    &[
                        ("iter", telemetry::Field::U64(iter as u64)),
                        ("objective", telemetry::Field::F64(f)),
                        ("violation", telemetry::Field::F64(violation)),
                        ("step_norm", telemetry::Field::F64(step_norm)),
                        ("active_set", telemetry::Field::U64(active as u64)),
                    ],
                );
                trace.push(IterSample {
                    iter,
                    objective: f,
                    max_violation: violation,
                    constraints: c.clone(),
                    x: x.clone(),
                    step_norm,
                    active_set: active,
                });
            }

            prev_grad = Some((grad_f, jac));
            prev_step = Some(step);

            if stop(&x, f) {
                break;
            }
        }

        Ok(SolveResult {
            x,
            objective: f,
            iterations,
            evaluations: evals,
            converged,
            trace,
        })
    }
}

/// Pressure weight for the BFGS `y` correction: only violated or active
/// constraints contribute curvature (a cheap stand-in for the exact
/// multipliers, which change between iterations).
fn last_lambda_weight(c: &[f64], j: usize) -> f64 {
    if c[j] < 1e-6 {
        1.0
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnProblem;

    fn opts() -> SolveOptions {
        SolveOptions {
            max_iterations: 300,
            tolerance: 1e-8,
        }
    }

    #[test]
    fn bounded_quadratic() {
        // min (x−3)² with x ∈ [0, 2] → x* = 2.
        let p = FnProblem::new(
            vec![0.0],
            vec![2.0],
            |x| Some((x[0] - 3.0).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = ActiveSetSqp::default().solve(&p, &[0.5], &opts()).unwrap();
        assert!(r.converged);
        assert!((r.x[0] - 2.0).abs() < 1e-6, "{:?}", r.x);
    }

    #[test]
    fn rosenbrock_in_a_box() {
        let p = FnProblem::new(
            vec![-2.0, -2.0],
            vec![2.0, 2.0],
            |x| Some((1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2)),
            0,
            |_| Some(Vec::new()),
        );
        let r = ActiveSetSqp::default()
            .solve(&p, &[-1.2, 1.0], &opts())
            .unwrap();
        assert!((r.x[0] - 1.0).abs() < 1e-3, "{:?}", r.x);
        assert!((r.x[1] - 1.0).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn linear_objective_circle_constraint() {
        // min x + y s.t. x² + y² ≤ 1 → (−√½, −√½).
        let p = FnProblem::new(
            vec![-2.0, -2.0],
            vec![2.0, 2.0],
            |x| Some(x[0] + x[1]),
            1,
            |x| Some(vec![1.0 - x[0] * x[0] - x[1] * x[1]]),
        );
        let r = ActiveSetSqp::default()
            .solve(&p, &[0.0, 0.0], &opts())
            .unwrap();
        let s = (0.5_f64).sqrt();
        assert!((r.x[0] + s).abs() < 1e-4, "{:?}", r.x);
        assert!((r.x[1] + s).abs() < 1e-4, "{:?}", r.x);
    }

    #[test]
    fn active_linear_constraint() {
        // min (x−1)² + (y−2)² s.t. x + y ≤ 2 → (0.5, 1.5).
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2)),
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let r = ActiveSetSqp::default()
            .solve(&p, &[0.5, 0.5], &opts())
            .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-5, "{:?}", r.x);
        assert!((r.x[1] - 1.5).abs() < 1e-5, "{:?}", r.x);
    }

    #[test]
    fn recovers_from_infeasible_start() {
        // Start violating the constraint; SQP must walk back to the
        // feasible optimum.
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![4.0, 4.0],
            |x| Some((x[0] - 1.0).powi(2) + (x[1] - 2.0).powi(2)),
            1,
            |x| Some(vec![2.0 - x[0] - x[1]]),
        );
        let r = ActiveSetSqp::default()
            .solve(&p, &[3.0, 3.0], &opts())
            .unwrap();
        assert!(p.is_feasible(&r.x, 1e-5), "{:?}", r.x);
        assert!((r.x[0] - 0.5).abs() < 1e-3, "{:?}", r.x);
    }

    #[test]
    fn avoids_failure_region() {
        // Objective undefined for x < 0.3 (simulated runaway): minimum of
        // (x−0.1)² over the evaluable region is at the failure edge; the
        // solver must stay on the evaluable side.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| {
                if x[0] < 0.3 {
                    None
                } else {
                    Some((x[0] - 0.1).powi(2))
                }
            },
            0,
            |_| Some(Vec::new()),
        );
        let r = ActiveSetSqp::default().solve(&p, &[0.8], &opts()).unwrap();
        assert!(r.x[0] >= 0.3 - 1e-9);
        assert!(r.x[0] < 0.4, "{:?}", r.x);
    }

    #[test]
    fn early_stop_predicate() {
        // A slow quartic: the predicate fires long before convergence.
        let p = FnProblem::new(
            vec![-20.0],
            vec![20.0],
            |x| Some((x[0] - 5.0).powi(4)),
            0,
            |_| Some(Vec::new()),
        );
        let r = ActiveSetSqp::default()
            .solve_until(&p, &[-15.0], &opts(), |_x, f| f < 100.0)
            .unwrap();
        assert!(r.objective < 100.0);
        assert!(!r.converged, "predicate should stop before convergence");
        let full = ActiveSetSqp::default()
            .solve(&p, &[-15.0], &opts())
            .unwrap();
        assert!(full.iterations >= r.iterations);
    }

    #[test]
    fn bad_start_rejected() {
        let p = FnProblem::new(vec![0.0], vec![1.0], |_| None, 0, |_| Some(Vec::new()));
        let err = ActiveSetSqp::default()
            .solve(&p, &[0.5], &opts())
            .unwrap_err();
        assert!(matches!(err, OptimError::BadStart(_)));
    }

    #[test]
    fn nan_objective_rejected_not_panicking() {
        // Regression: a NaN-producing model used to flow NaN into the
        // line-search merit comparisons (and the restoration-step
        // `partial_cmp().unwrap()`); it must surface as NonFinite instead.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |_| Some(f64::NAN),
            0,
            |_| Some(Vec::new()),
        );
        let err = ActiveSetSqp::default()
            .solve(&p, &[0.5], &opts())
            .unwrap_err();
        assert!(
            matches!(
                err,
                OptimError::NonFinite {
                    what: "objective",
                    iteration: 0
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn nan_mid_run_rejected_with_iteration() {
        // Objective turns to NaN once the iterate moves left of 0.5: the
        // failure must carry the iteration at which NaN appeared.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| {
                if x[0] < 0.5 {
                    Some(f64::NAN)
                } else {
                    Some((x[0] - 0.1).powi(2))
                }
            },
            0,
            |_| Some(Vec::new()),
        );
        let err = ActiveSetSqp::default()
            .solve(&p, &[0.9], &opts())
            .unwrap_err();
        match err {
            OptimError::NonFinite { iteration, .. } => assert!(iteration >= 1, "{iteration}"),
            other => panic!("expected NonFinite, got {other:?}"),
        }
    }

    #[test]
    fn nan_constraint_rejected() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| Some(x[0]),
            1,
            |_| Some(vec![f64::NAN]),
        );
        let err = ActiveSetSqp::default()
            .solve(&p, &[0.5], &opts())
            .unwrap_err();
        assert!(
            matches!(
                err,
                OptimError::NonFinite {
                    what: "constraints",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| Some(x[0]),
            0,
            |_| Some(Vec::new()),
        );
        let err = ActiveSetSqp::default()
            .solve(&p, &[0.5, 0.5], &opts())
            .unwrap_err();
        assert_eq!(err, OptimError::DimensionMismatch(1, 2));
    }
}
