//! The problem abstraction shared by every solver.

/// Objective value substituted for failed evaluations (thermal runaway in
/// OFTEC's case). Large enough that any merit/penalty comparison rejects
/// the point, small enough to keep arithmetic finite.
pub const PENALTY_OBJECTIVE: f64 = 1e9;

/// A box-bounded nonlinear program with inequality constraints
/// `c_i(x) ≥ 0`.
///
/// Evaluations may *fail* (return `None`) on points where the underlying
/// model has no solution — solvers treat those as prohibitively bad
/// points, never as errors.
pub trait NlpProblem {
    /// Number of decision variables.
    fn dim(&self) -> usize;

    /// Lower and upper box bounds, each of length [`NlpProblem::dim`].
    fn bounds(&self) -> (Vec<f64>, Vec<f64>);

    /// Objective value, or `None` if the model cannot be evaluated here.
    fn objective(&self, x: &[f64]) -> Option<f64>;

    /// Number of inequality constraints (not counting bounds).
    fn n_constraints(&self) -> usize {
        0
    }

    /// Constraint values `c(x)` (feasible ⟺ all ≥ 0), or `None` on
    /// evaluation failure. Must have length [`NlpProblem::n_constraints`].
    fn constraints(&self, _x: &[f64]) -> Option<Vec<f64>> {
        Some(Vec::new())
    }

    /// Objective with the failure penalty substituted.
    fn objective_or_penalty(&self, x: &[f64]) -> f64 {
        self.objective(x).unwrap_or(PENALTY_OBJECTIVE)
    }

    /// Constraints with failures mapped to a deeply infeasible vector.
    fn constraints_or_penalty(&self, x: &[f64]) -> Vec<f64> {
        self.constraints(x)
            .unwrap_or_else(|| vec![-PENALTY_OBJECTIVE; self.n_constraints()])
    }

    /// Clamps a point into the box.
    fn project(&self, x: &mut [f64]) {
        let (lo, hi) = self.bounds();
        for ((xi, &l), &h) in x.iter_mut().zip(&lo).zip(&hi) {
            *xi = xi.clamp(l, h);
        }
    }

    /// Returns `true` if `x` lies inside the box (with tolerance) and all
    /// constraints evaluate ≥ `-tol`.
    fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        let (lo, hi) = self.bounds();
        let in_box = x
            .iter()
            .zip(&lo)
            .zip(&hi)
            .all(|((&xi, &l), &h)| xi >= l - tol && xi <= h + tol);
        in_box
            && self
                .constraints(x)
                .is_some_and(|c| c.iter().all(|&ci| ci >= -tol))
    }
}

/// A closure-backed [`NlpProblem`], convenient for tests and ad-hoc
/// problems.
pub struct FnProblem<F, C> {
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: F,
    n_constraints: usize,
    constraints: C,
}

impl<F, C> FnProblem<F, C>
where
    F: Fn(&[f64]) -> Option<f64>,
    C: Fn(&[f64]) -> Option<Vec<f64>>,
{
    /// Builds a problem from bounds and closures.
    ///
    /// # Panics
    ///
    /// Panics if the bound vectors differ in length or cross.
    pub fn new(
        lower: Vec<f64>,
        upper: Vec<f64>,
        objective: F,
        n_constraints: usize,
        constraints: C,
    ) -> Self {
        assert_eq!(lower.len(), upper.len(), "bound vectors must match");
        assert!(
            lower.iter().zip(&upper).all(|(l, u)| l <= u),
            "lower bounds must not exceed upper bounds"
        );
        Self {
            lower,
            upper,
            objective,
            n_constraints,
            constraints,
        }
    }
}

impl<F, C> NlpProblem for FnProblem<F, C>
where
    F: Fn(&[f64]) -> Option<f64>,
    C: Fn(&[f64]) -> Option<Vec<f64>>,
{
    fn dim(&self) -> usize {
        self.lower.len()
    }

    fn bounds(&self) -> (Vec<f64>, Vec<f64>) {
        (self.lower.clone(), self.upper.clone())
    }

    fn objective(&self, x: &[f64]) -> Option<f64> {
        (self.objective)(x)
    }

    fn n_constraints(&self) -> usize {
        self.n_constraints
    }

    fn constraints(&self, x: &[f64]) -> Option<Vec<f64>> {
        (self.constraints)(x)
    }
}

/// An unconstrained `FnProblem` helper (bounds only).
#[allow(clippy::type_complexity)] // the fn-pointer type IS the signature
pub fn unconstrained<F>(
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: F,
) -> FnProblem<F, fn(&[f64]) -> Option<Vec<f64>>>
where
    F: Fn(&[f64]) -> Option<f64>,
{
    FnProblem::new(lower, upper, objective, 0, |_| Some(Vec::new()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> impl NlpProblem {
        FnProblem::new(
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            |x| {
                if x[0] > 0.9 {
                    None // simulated runaway region
                } else {
                    Some(x[0] + x[1])
                }
            },
            1,
            |x| Some(vec![0.5 - x[1]]),
        )
    }

    #[test]
    fn penalty_substitution() {
        let p = sample();
        assert_eq!(p.objective_or_penalty(&[0.95, 0.0]), PENALTY_OBJECTIVE);
        assert_eq!(p.objective_or_penalty(&[0.5, 0.1]), 0.6);
    }

    #[test]
    fn feasibility() {
        let p = sample();
        assert!(p.is_feasible(&[0.2, 0.2], 1e-9));
        assert!(!p.is_feasible(&[0.2, 0.8], 1e-9)); // violates c
        assert!(!p.is_feasible(&[1.2, 0.2], 1e-9)); // outside box
    }

    #[test]
    fn projection() {
        let p = sample();
        let mut x = vec![-0.5, 2.0];
        p.project(&mut x);
        assert_eq!(x, vec![0.0, 1.0]);
    }

    #[test]
    fn unconstrained_helper() {
        let p = unconstrained(vec![-1.0], vec![1.0], |x| Some(x[0] * x[0]));
        assert_eq!(p.n_constraints(), 0);
        assert!(p.is_feasible(&[0.3], 0.0));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn crossed_bounds_panic() {
        let _ = FnProblem::new(vec![1.0], vec![0.0], |_| Some(0.0), 0, |_| Some(Vec::new()));
    }
}
