//! Primal active-set solver for convex quadratic programs.
//!
//! Solves `min ½dᵀHd + gᵀd  s.t.  a_iᵀd ≥ b_i` for symmetric positive
//! definite `H` — the subproblem at the core of the paper's chosen
//! "active-set SQP" method (§5.2). The implementation follows Nocedal &
//! Wright, Algorithm 16.3: equality-constrained KKT solves on a working
//! set, step blocking, and multiplier-driven constraint release.

use oftec_linalg::{solve_dense_chain, vector, Matrix};

/// Errors from [`solve_qp`].
#[derive(Debug, Clone, PartialEq)]
pub enum QpError {
    /// The starting point violates a constraint by more than the
    /// tolerance.
    InfeasibleStart(usize),
    /// Dimension disagreement between `h`, `g`, `rows`, or `d0`.
    Dimension(String),
    /// The KKT system was singular even after dropping dependent rows.
    Singular,
    /// The iteration cap was exceeded (degenerate cycling).
    IterationCap,
    /// `H`, `g`, or a constraint row contains NaN/inf.
    NonFinite,
}

impl core::fmt::Display for QpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InfeasibleStart(i) => write!(f, "QP start violates constraint {i}"),
            Self::Dimension(what) => write!(f, "QP dimension mismatch: {what}"),
            Self::Singular => write!(f, "QP KKT system is singular"),
            Self::IterationCap => write!(f, "QP iteration cap exceeded"),
            Self::NonFinite => write!(f, "QP data contains NaN/inf"),
        }
    }
}

impl std::error::Error for QpError {}

const FEAS_TOL: f64 = 1e-8;

/// Solves the convex QP from the feasible start `d0`.
///
/// `rows` holds the inequality constraints as `(a_i, b_i)` meaning
/// `a_iᵀd ≥ b_i`. Returns the minimizer and one Lagrange multiplier per
/// row (zero for constraints inactive at the solution).
///
/// # Errors
///
/// See [`QpError`]. `H` is trusted to be positive definite (the SQP layer
/// guarantees this via damped BFGS); a singular KKT system from dependent
/// active rows is handled by dropping rows, and only reported if
/// unresolvable.
#[must_use = "the solve outcome (including failure) is in the Result"]
pub fn solve_qp(
    h: &Matrix,
    g: &[f64],
    rows: &[(Vec<f64>, f64)],
    d0: &[f64],
) -> Result<(Vec<f64>, Vec<f64>), QpError> {
    let _span = oftec_telemetry::span("qp.solve");
    oftec_telemetry::counter_add("qp.solves", 1);
    let n = g.len();
    if h.rows() != n || h.cols() != n {
        return Err(QpError::Dimension(format!(
            "H is {}×{}, g has length {n}",
            h.rows(),
            h.cols()
        )));
    }
    if d0.len() != n {
        return Err(QpError::Dimension(format!(
            "start has length {}, expected {n}",
            d0.len()
        )));
    }
    for (i, (a, b)) in rows.iter().enumerate() {
        if a.len() != n {
            return Err(QpError::Dimension(format!("row {i} has wrong length")));
        }
        if !b.is_finite() || !a.iter().all(|v| v.is_finite()) {
            return Err(QpError::NonFinite);
        }
    }
    if !g.iter().all(|v| v.is_finite()) || !h.as_slice().iter().all(|v| v.is_finite()) {
        return Err(QpError::NonFinite);
    }
    let m = rows.len();
    let residual = |d: &[f64], i: usize| vector::dot(&rows[i].0, d) - rows[i].1;
    if let Some(violated) = (0..m).find(|&i| residual(d0, i) < -FEAS_TOL) {
        return Err(QpError::InfeasibleStart(violated));
    }

    let mut d = d0.to_vec();
    // Working set: constraints treated as equalities.
    let mut working: Vec<usize> = Vec::new();
    for i in 0..m {
        if residual(&d, i).abs() <= FEAS_TOL && working.len() < n {
            working.push(i);
        }
    }

    let max_iters = 50 * (m + 1).max(4);
    for _ in 0..max_iters {
        // Solve the equality-constrained subproblem on the working set:
        //   [H  −Awᵀ][p]   [−(g + H d)]
        //   [Aw   0 ][λ] = [ rw        ]
        let k = working.len();
        let dim = n + k;
        let mut kkt = Matrix::zeros(dim, dim);
        let mut rhs = vec![0.0; dim];
        let hd = h.matvec(&d);
        for i in 0..n {
            for j in 0..n {
                kkt[(i, j)] = h[(i, j)];
            }
            rhs[i] = -(g[i] + hd[i]);
        }
        for (wi, &ci) in working.iter().enumerate() {
            for j in 0..n {
                kkt[(j, n + wi)] = -rows[ci].0[j];
                kkt[(n + wi, j)] = rows[ci].0[j];
            }
            rhs[n + wi] = -residual(&d, ci);
        }

        // The KKT block matrix is assembled non-symmetrically, so the
        // degradation chain skips its Cholesky rung and runs LU →
        // preconditioned iterative, residual-verifying each candidate.
        let solved = solve_dense_chain(&kkt, &rhs);
        let sol = match solved {
            Ok(sol) => sol.x,
            Err(_) => {
                // Dependent active rows: drop the most recently added and
                // retry next iteration.
                if working.pop().is_none() {
                    return Err(QpError::Singular);
                }
                continue;
            }
        };
        let p = &sol[..n];
        let lambda_w = &sol[n..];

        if vector::norm_inf(p) <= 1e-11 {
            // Stationary on the working set: check multipliers.
            let (mut worst, mut worst_idx) = (0.0_f64, usize::MAX);
            for (wi, &l) in lambda_w.iter().enumerate() {
                if l < worst {
                    worst = l;
                    worst_idx = wi;
                }
            }
            if worst_idx == usize::MAX || worst >= -1e-9 {
                let mut lambda = vec![0.0; m];
                for (wi, &ci) in working.iter().enumerate() {
                    lambda[ci] = lambda_w[wi].max(0.0);
                }
                return Ok((d, lambda));
            }
            working.remove(worst_idx);
            continue;
        }

        // Step toward p, blocked by inactive constraints.
        let mut alpha = 1.0;
        let mut blocker = usize::MAX;
        for (i, row) in rows.iter().enumerate() {
            if working.contains(&i) {
                continue;
            }
            let ap = vector::dot(&row.0, p);
            if ap < -1e-12 {
                let a_i = -residual(&d, i) / ap;
                if a_i < alpha {
                    alpha = a_i.max(0.0);
                    blocker = i;
                }
            }
        }
        for (di, &pi) in d.iter_mut().zip(p) {
            *di += alpha * pi;
        }
        if blocker != usize::MAX && working.len() < n + 1 {
            working.push(blocker);
        }
    }
    Err(QpError::IterationCap)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity2() -> Matrix {
        Matrix::identity(2)
    }

    #[test]
    fn unconstrained_newton_step() {
        // min ½‖d‖² + gᵀd → d = −g.
        let (d, lambda) = solve_qp(&identity2(), &[1.0, -2.0], &[], &[0.0, 0.0]).unwrap();
        assert!((d[0] + 1.0).abs() < 1e-10);
        assert!((d[1] - 2.0).abs() < 1e-10);
        assert!(lambda.is_empty());
    }

    #[test]
    fn single_active_inequality() {
        // min ½‖d‖² − d₁ s.t. d₁ ≤ 0.5 (−d₁ ≥ −0.5): optimum at d₁ = 0.5.
        let rows = vec![(vec![-1.0, 0.0], -0.5)];
        let (d, lambda) = solve_qp(&identity2(), &[-1.0, 0.0], &rows, &[0.0, 0.0]).unwrap();
        assert!((d[0] - 0.5).abs() < 1e-9, "{d:?}");
        assert!(d[1].abs() < 1e-9);
        assert!(lambda[0] > 0.0, "active constraint must have λ > 0");
    }

    #[test]
    fn inactive_constraint_has_zero_multiplier() {
        // Same objective, loose constraint d₁ ≤ 10: unconstrained optimum.
        let rows = vec![(vec![-1.0, 0.0], -10.0)];
        let (d, lambda) = solve_qp(&identity2(), &[-1.0, 0.0], &rows, &[0.0, 0.0]).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-9);
        assert_eq!(lambda[0], 0.0);
    }

    #[test]
    fn corner_solution_with_two_active() {
        // min ½‖d − (2,2)‖² s.t. d₁ ≤ 1, d₂ ≤ 1: optimum at (1,1).
        // Expand: ½dᵀd − (2,2)ᵀd + const.
        let rows = vec![(vec![-1.0, 0.0], -1.0), (vec![0.0, -1.0], -1.0)];
        let (d, lambda) = solve_qp(&identity2(), &[-2.0, -2.0], &rows, &[0.0, 0.0]).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-9);
        assert!((d[1] - 1.0).abs() < 1e-9);
        assert!(lambda[0] > 0.0 && lambda[1] > 0.0);
    }

    #[test]
    fn release_of_wrongly_active_constraint() {
        // Start ON a constraint that is not active at the optimum:
        // min ½‖d − (−1, 0)‖² s.t. d₁ ≥ 0 starting at d₁ = 0 — stays at 0;
        // but with objective pulling to (+1, 0), the start at the bound
        // must release and move inward.
        let rows = vec![(vec![1.0, 0.0], 0.0)];
        let (d, _) = solve_qp(&identity2(), &[-1.0, 0.0], &rows, &[0.0, 0.0]).unwrap();
        assert!((d[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nonidentity_hessian() {
        // min ½dᵀHd + gᵀd with H = [[2,0],[0,4]], g = (−2,−4) →
        // unconstrained d = (1,1); constrain d₁ + d₂ ≥ 3 → on the line,
        // solution (1.5, 0.75)? KKT: Hd + g = λa → (2d₁−2, 4d₂−4) = λ(1,1),
        // d₁+d₂ = 3 → 2d₁−2 = 4d₂−4 → d₁ = 2d₂−1 → 3d₂ − 1 = 3 → d₂ = 4/3,
        // d₁ = 5/3.
        let h = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 4.0]]);
        let rows = vec![(vec![1.0, 1.0], 3.0)];
        let (d, lambda) = solve_qp(&h, &[-2.0, -4.0], &rows, &[2.0, 1.0]).unwrap();
        assert!((d[0] - 5.0 / 3.0).abs() < 1e-9, "{d:?}");
        assert!((d[1] - 4.0 / 3.0).abs() < 1e-9);
        assert!(lambda[0] > 0.0);
    }

    #[test]
    fn infeasible_start_rejected() {
        let rows = vec![(vec![1.0, 0.0], 1.0)]; // d₁ ≥ 1
        let err = solve_qp(&identity2(), &[0.0, 0.0], &rows, &[0.0, 0.0]).unwrap_err();
        assert_eq!(err, QpError::InfeasibleStart(0));
    }

    #[test]
    fn dimension_checks() {
        let err = solve_qp(&Matrix::zeros(2, 3), &[0.0, 0.0], &[], &[0.0, 0.0]).unwrap_err();
        assert!(matches!(err, QpError::Dimension(_)));
        let err = solve_qp(&identity2(), &[0.0, 0.0], &[], &[0.0]).unwrap_err();
        assert!(matches!(err, QpError::Dimension(_)));
    }

    #[test]
    fn redundant_constraints_handled() {
        // Duplicate rows (linearly dependent when both active).
        let rows = vec![
            (vec![-1.0, 0.0], -0.5),
            (vec![-1.0, 0.0], -0.5),
            (vec![0.0, -1.0], -10.0),
        ];
        let (d, _) = solve_qp(&identity2(), &[-1.0, 0.0], &rows, &[0.0, 0.0]).unwrap();
        assert!((d[0] - 0.5).abs() < 1e-8);
    }
}
