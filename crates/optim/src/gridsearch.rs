//! Exhaustive grid search — ground truth for the low-dimensional OFTEC
//! design space (the numerical counterpart of the paper's Figure 6(a)(b)
//! surface sweeps).

use crate::{NlpProblem, OptimError, SolveOptions, SolveResult};
use oftec_telemetry as telemetry;

/// Dense sampling of the box with feasibility filtering.
#[derive(Debug, Clone, Copy)]
pub struct GridSearch {
    /// Samples per dimension.
    pub points_per_dim: usize,
    /// Constraint tolerance for feasibility.
    pub feasibility_tol: f64,
}

impl Default for GridSearch {
    fn default() -> Self {
        Self {
            points_per_dim: 64,
            feasibility_tol: 1e-9,
        }
    }
}

impl GridSearch {
    /// Finds the best feasible grid point. Only practical for `dim ≤ 3`.
    ///
    /// Grid points are evaluated on [`oftec_parallel`] worker threads; the
    /// winner is reduced serially in flat-index order, so ties resolve to
    /// the same point a serial scan would pick at any thread count.
    ///
    /// # Errors
    ///
    /// - [`OptimError::Subproblem`] if `dim > 3` (the grid would explode),
    /// - [`OptimError::BadStart`] if no feasible grid point exists.
    #[must_use = "the solve outcome (including failure) is in the Result"]
    pub fn solve<P: NlpProblem + Sync>(
        &self,
        problem: &P,
        _x0: &[f64],
        _opts: &SolveOptions,
    ) -> Result<SolveResult, OptimError> {
        let n = problem.dim();
        if n > 3 {
            return Err(OptimError::Subproblem(
                "grid search is limited to 3 dimensions".into(),
            ));
        }
        let (lo, hi) = problem.bounds();
        let k = self.points_per_dim.max(2);
        let coords = |dim: usize, idx: usize| -> f64 {
            lo[dim] + (hi[dim] - lo[dim]) * idx as f64 / (k - 1) as f64
        };
        // oftec-lint: allow(L012, exponent cast: n is checked <= 3 just above)
        let total = k.pow(n as u32);

        let _span = telemetry::span("gridsearch.solve");
        telemetry::counter_add("gridsearch.runs", 1);

        // Each grid point is independent: evaluate them in parallel,
        // recording the value (if feasible and evaluable) and which of the
        // two oracles actually ran (the constraint oracle always does; the
        // objective only for feasible, constraint-evaluable points).
        let evaluated = oftec_parallel::par_map_range(total, |flat| {
            let mut x = vec![0.0; n];
            let mut rem = flat;
            for (d, xd) in x.iter_mut().enumerate() {
                *xd = coords(d, rem % k);
                rem /= k;
            }
            // A NaN constraint must read as *infeasible*: `ci < -tol` is
            // false for NaN, so the negated `any` would silently treat a
            // poisoned point as feasible without the explicit finite check.
            let feasible = match problem.constraints(&x) {
                Some(c) => c
                    .iter()
                    .all(|&ci| ci.is_finite() && ci >= -self.feasibility_tol),
                None => false,
            };
            if !feasible {
                return (x, None, false);
            }
            let value = problem.objective(&x);
            (x, value, true)
        });

        let mut best: Option<(Vec<f64>, f64)> = None;
        let mut objective_evals = 0usize;
        let mut non_finite = 0u64;
        for (x, value, objective_ran) in evaluated {
            objective_evals += usize::from(objective_ran);
            let Some(f) = value else { continue };
            // A NaN objective poisons the reduction (`f < best` is always
            // false, so NaN-first would win forever): drop it and count it.
            if !f.is_finite() {
                non_finite += 1;
                continue;
            }
            if best.as_ref().is_none_or(|(_, bf)| f < *bf) {
                best = Some((x, f));
            }
        }
        if non_finite > 0 {
            telemetry::counter_add("gridsearch.non_finite", non_finite);
            telemetry::event(
                telemetry::Severity::Warn,
                "gridsearch.non_finite",
                &[("points", telemetry::Field::U64(non_finite))],
            );
        }
        // `evaluations` stays the exact local count callers rely on; the
        // registry gets the same totals split by oracle, mirrored once on
        // the calling thread.
        let evals = total + objective_evals;
        telemetry::counter_add("gridsearch.constraint_evals", total as u64);
        telemetry::counter_add("gridsearch.objective_evals", objective_evals as u64);
        match best {
            Some((x, objective)) => Ok(SolveResult {
                x,
                objective,
                iterations: total,
                evaluations: evals,
                converged: true,
                trace: Vec::new(),
            }),
            None => Err(OptimError::BadStart("no feasible grid point found".into())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FnProblem;

    #[test]
    fn finds_corner_optimum() {
        let p = FnProblem::new(
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            |x| Some(x[0] + x[1]),
            0,
            |_| Some(Vec::new()),
        );
        let r = GridSearch::default()
            .solve(&p, &[0.5, 0.5], &SolveOptions::default())
            .unwrap();
        assert_eq!(r.x, vec![0.0, 0.0]);
        assert_eq!(r.objective, 0.0);
    }

    #[test]
    fn respects_constraints_and_failures() {
        // Feasible only for x ≥ 0.5; evaluable only for x ≤ 0.8.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| if x[0] > 0.8 { None } else { Some(x[0]) },
            1,
            |x| Some(vec![x[0] - 0.5]),
        );
        let r = GridSearch {
            points_per_dim: 101,
            ..Default::default()
        }
        .solve(&p, &[0.0], &SolveOptions::default())
        .unwrap();
        assert!((r.x[0] - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evaluation_count_distinguishes_oracles() {
        // Feasible only for x ≥ 0.5 (51 of 101 points); the objective runs
        // only there, so the eval count is 101 constraint calls + 51
        // objective calls — not 2 per grid point. The registry sees the
        // same totals split by oracle.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| Some(x[0]),
            1,
            |x| Some(vec![x[0] - 0.5]),
        );
        telemetry::set_collecting(true);
        let (r, buf) = telemetry::capture(|| {
            GridSearch {
                points_per_dim: 101,
                ..Default::default()
            }
            .solve(&p, &[0.0], &SolveOptions::default())
            .unwrap()
        });
        assert_eq!(r.iterations, 101);
        assert_eq!(r.evaluations, 101 + 51);
        assert_eq!(buf.counter("gridsearch.constraint_evals"), 101);
        assert_eq!(buf.counter("gridsearch.objective_evals"), 51);
        assert_eq!(buf.counter("gridsearch.runs"), 1);
    }

    #[test]
    fn nan_objective_and_constraints_are_skipped() {
        // Objective is NaN on half the grid and the constraint is NaN on a
        // band; neither may poison the winner or be treated as feasible.
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| {
                if x[0] < 0.5 {
                    Some(f64::NAN)
                } else {
                    Some(x[0])
                }
            },
            1,
            |x| {
                if x[0] > 0.9 {
                    Some(vec![f64::NAN])
                } else {
                    Some(vec![1.0])
                }
            },
        );
        let r = GridSearch {
            points_per_dim: 101,
            ..Default::default()
        }
        .solve(&p, &[0.0], &SolveOptions::default())
        .unwrap();
        // Best finite feasible objective: x = 0.5.
        assert!((r.x[0] - 0.5).abs() < 1e-9, "{:?}", r.x);
        assert!(r.objective.is_finite());
    }

    #[test]
    fn no_feasible_point_is_an_error() {
        let p = FnProblem::new(
            vec![0.0],
            vec![1.0],
            |x| Some(x[0]),
            1,
            |_| Some(vec![-1.0]),
        );
        assert!(matches!(
            GridSearch::default().solve(&p, &[0.0], &SolveOptions::default()),
            Err(OptimError::BadStart(_))
        ));
    }

    #[test]
    fn high_dimension_rejected() {
        let p = FnProblem::new(
            vec![0.0; 4],
            vec![1.0; 4],
            |x| Some(x.iter().sum()),
            0,
            |_| Some(Vec::new()),
        );
        assert!(matches!(
            GridSearch::default().solve(&p, &[0.0; 4], &SolveOptions::default()),
            Err(OptimError::Subproblem(_))
        ));
    }
}
