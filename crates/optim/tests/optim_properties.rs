//! Property tests of the NLP stack on randomly generated convex problems
//! with known solutions.

use oftec_linalg::{vector, LuFactor, Matrix};
use oftec_optim::{solve_qp, ActiveSetSqp, FnProblem, InteriorPoint, NlpProblem, SolveOptions};
use proptest::prelude::*;

/// Random SPD 2×2 matrix `BᵀB + I` plus a random linear term.
fn spd_quadratic() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (
        proptest::collection::vec(-1.0..1.0f64, 4),
        proptest::collection::vec(-2.0..2.0f64, 2),
    )
        .prop_map(|(raw, g)| {
            let b = Matrix::from_vec(2, 2, raw);
            let mut h = b.matmul(&b.transpose());
            h[(0, 0)] += 1.0;
            h[(1, 1)] += 1.0;
            (h, g)
        })
}

fn opts() -> SolveOptions {
    SolveOptions {
        max_iterations: 300,
        tolerance: 1e-9,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qp_unconstrained_matches_newton((h, g) in spd_quadratic()) {
        let (d, _) = solve_qp(&h, &g, &[], &[0.0, 0.0]).unwrap();
        let exact = LuFactor::new(&h).unwrap().solve(&g).unwrap();
        for (di, ei) in d.iter().zip(&exact) {
            prop_assert!((di + ei).abs() < 1e-8, "{d:?} vs -{exact:?}");
        }
    }

    #[test]
    fn qp_satisfies_kkt((h, g) in spd_quadratic(), bound in 0.05..1.0f64) {
        // Box |d_i| ≤ bound as four inequality rows.
        let rows = vec![
            (vec![1.0, 0.0], -bound),
            (vec![-1.0, 0.0], -bound),
            (vec![0.0, 1.0], -bound),
            (vec![0.0, -1.0], -bound),
        ];
        let (d, lambda) = solve_qp(&h, &g, &rows, &[0.0, 0.0]).unwrap();
        // Primal feasibility.
        for (a, b) in &rows {
            prop_assert!(vector::dot(a, &d) >= b - 1e-8);
        }
        // Stationarity: H d + g − Σ λ_i a_i = 0.
        let mut grad = h.matvec(&d);
        vector::axpy(1.0, &g, &mut grad);
        for ((a, _), &l) in rows.iter().zip(&lambda) {
            vector::axpy(-l, a, &mut grad);
        }
        prop_assert!(vector::norm2(&grad) < 1e-7, "stationarity {grad:?}");
        // Dual feasibility + complementary slackness.
        for ((a, b), &l) in rows.iter().zip(&lambda) {
            prop_assert!(l >= -1e-10);
            let slack = vector::dot(a, &d) - b;
            prop_assert!(l * slack < 1e-6, "λ {l} on slack {slack}");
        }
    }

    #[test]
    fn sqp_finds_quadratic_minimum_in_box((h, g) in spd_quadratic()) {
        // Wide box: the unconstrained optimum is interior; SQP must find
        // x* = −H⁻¹g.
        let h2 = h.clone();
        let g2 = g.clone();
        let problem = FnProblem::new(
            vec![-50.0, -50.0],
            vec![50.0, 50.0],
            move |x| {
                let hx = h2.matvec(x);
                Some(0.5 * vector::dot(x, &hx) + vector::dot(&g2, x))
            },
            0,
            |_| Some(Vec::new()),
        );
        let exact = LuFactor::new(&h).unwrap().solve(&g).unwrap();
        let x_star: Vec<f64> = exact.iter().map(|v| -v).collect();
        prop_assume!(x_star.iter().all(|v| v.abs() < 40.0));
        let r = ActiveSetSqp::default().solve(&problem, &[0.0, 0.0], &opts()).unwrap();
        for (a, b) in r.x.iter().zip(&x_star) {
            prop_assert!((a - b).abs() < 1e-4, "{:?} vs {:?}", r.x, x_star);
        }
    }

    #[test]
    fn sqp_respects_halfspace_constraint((h, g) in spd_quadratic(), c in -1.0..1.0f64) {
        // min quadratic s.t. x₀ + x₁ ≤ c, from a feasible interior start.
        let h2 = h.clone();
        let g2 = g.clone();
        let problem = FnProblem::new(
            vec![-50.0, -50.0],
            vec![50.0, 50.0],
            move |x| {
                let hx = h2.matvec(x);
                Some(0.5 * vector::dot(x, &hx) + vector::dot(&g2, x))
            },
            1,
            move |x| Some(vec![c - x[0] - x[1]]),
        );
        let start = [c - 2.0, 0.0];
        let r = ActiveSetSqp::default().solve(&problem, &start, &opts()).unwrap();
        prop_assert!(r.x[0] + r.x[1] <= c + 1e-6, "violated: {:?}", r.x);
        // The constrained optimum is no better than unconstrained, no
        // worse than the start.
        let f_start = problem.objective(&start).unwrap();
        prop_assert!(r.objective <= f_start + 1e-9);
    }

    #[test]
    fn interior_point_agrees_with_sqp((h, g) in spd_quadratic()) {
        let mk = |h: Matrix, g: Vec<f64>| {
            FnProblem::new(
                vec![-10.0, -10.0],
                vec![10.0, 10.0],
                move |x: &[f64]| {
                    let hx = h.matvec(x);
                    Some(0.5 * vector::dot(x, &hx) + vector::dot(&g, x))
                },
                0,
                |_| Some(Vec::new()),
            )
        };
        let p1 = mk(h.clone(), g.clone());
        let p2 = mk(h.clone(), g.clone());
        let a = ActiveSetSqp::default().solve(&p1, &[0.0, 0.0], &opts()).unwrap();
        let b = InteriorPoint::default().solve(&p2, &[0.0, 0.0], &opts()).unwrap();
        prop_assert!(
            (a.objective - b.objective).abs() < 1e-3 * a.objective.abs().max(1.0),
            "SQP {} vs IP {}",
            a.objective,
            b.objective
        );
    }
}
