//! Minimal JSON writing helpers.
//!
//! The telemetry crate is deliberately std-only (it sits below every other
//! workspace crate, including the ones the vendored serde stand-ins are
//! wired through), so snapshot and event serialization is hand-rolled
//! here. Only the small subset needed for JSONL export is implemented:
//! string escaping and finite-float formatting.

use std::fmt::Write as _;

/// Appends `s` to `out` as a JSON string literal (quotes included).
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number; non-finite values become `null` (JSON has
/// no NaN/Infinity).
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends `v` as a JSON number.
pub fn push_u64(out: &mut String, v: u64) {
    let _ = write!(out, "{v}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_control_and_quote_characters() {
        let mut out = String::new();
        push_str_literal(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_become_null() {
        let mut out = String::new();
        push_f64(&mut out, f64::NAN);
        out.push(',');
        push_f64(&mut out, f64::INFINITY);
        out.push(',');
        push_f64(&mut out, 1.5);
        assert_eq!(out, "null,null,1.5");
    }
}
