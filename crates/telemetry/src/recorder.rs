//! The flight recorder: a fixed-capacity, lock-free ring of completed
//! request traces, plus a second ring that retains non-OK traces even
//! when OK churn would have evicted them.
//!
//! # Why two rings
//!
//! A serving burst produces thousands of OK traces for every failure; a
//! single ring of capacity N forgets an error after N further requests —
//! exactly when someone starts asking what happened. Every record lands
//! in the `recent` ring; non-OK records are *also* written to the
//! `errors` ring, so the errors of a burst stay dumpable long after the
//! OK traffic that surrounded them has wrapped the recent ring.
//! [`FlightRecorder::snapshot`] merges both rings by admission sequence
//! and deduplicates records still present in both.
//!
//! # Lock-freedom without `unsafe`
//!
//! Each slot is a per-slot seqlock: one version word plus a fixed array
//! of `AtomicU64` payload words. A writer claims a slot position with one
//! `fetch_add` on the ring head, sets the version to an odd ticket
//! derived from the wrap count, stores the payload words, and publishes
//! the even ticket. Readers copy the words between two version reads and
//! discard the copy if the version moved or was odd. Because the payload
//! words are themselves atomics there are no torn reads in the language
//! sense — the version protocol only guards *logical* consistency of the
//! record. Writers never block readers and readers never block writers;
//! two writers landing on the same slot can only happen a full capacity
//! apart, in which case the older record is being overwritten anyway.
//!
//! Records are fully numeric ([`TraceRecord`]): the serving layer maps
//! stage and outcome codes back to names at dump time, which keeps the
//! hot recording path free of allocation beyond the caller's stage
//! vector.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// Stage samples retained per record; longer traces are truncated.
pub const MAX_TRACE_STAGES: usize = 6;

/// Payload words per slot: sequence, trace id, packed flags, and one
/// word per stage sample.
const WORDS: usize = 3 + MAX_TRACE_STAGES;

/// Stage durations are packed into 48 bits (≈ 8.9 years in µs).
const MICROS_MAX: u64 = (1 << 48) - 1;

/// One completed request trace in flight-recorder form: caller-defined
/// numeric codes only, so the recorder stays generic over protocols.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceRecord {
    /// Admission sequence assigned by [`FlightRecorder::record`]
    /// (1-based; 0 = not yet recorded). Snapshot order key.
    pub seq: u64,
    /// Deterministic trace id (assigned by the caller, e.g. from a
    /// connection/sequence pair — never from the wall clock).
    pub id: u64,
    /// `true` for successful outcomes; `false` routes the record into
    /// the error-retention ring as well.
    pub ok: bool,
    /// Caller-defined outcome code (e.g. an index into an outcome table).
    pub code: u16,
    /// `(stage code, microseconds)` samples in pipeline order; at most
    /// [`MAX_TRACE_STAGES`] survive recording.
    pub stages: Vec<(u16, u64)>,
}

impl TraceRecord {
    /// Zeroes every stage duration, leaving only the scheduling-
    /// independent structure (ids, outcomes, stage order) — the form the
    /// determinism tests compare across `OFTEC_THREADS` settings.
    pub fn redact_times(&mut self) {
        for (_, us) in &mut self.stages {
            *us = 0;
        }
    }

    fn encode(&self) -> [u64; WORDS] {
        let mut w = [0u64; WORDS];
        w[0] = self.seq;
        w[1] = self.id;
        let n = self.stages.len().min(MAX_TRACE_STAGES) as u64;
        w[2] = u64::from(self.code) | (n << 16) | (u64::from(self.ok) << 24);
        for (i, &(code, us)) in self.stages.iter().take(MAX_TRACE_STAGES).enumerate() {
            w[3 + i] = (u64::from(code) << 48) | us.min(MICROS_MAX);
        }
        w
    }

    fn decode(w: &[u64; WORDS]) -> Self {
        let n = ((w[2] >> 16) & 0xff) as usize;
        let stages = w[3..3 + n.min(MAX_TRACE_STAGES)]
            .iter()
            .map(|&word| ((word >> 48) as u16, word & MICROS_MAX))
            .collect();
        Self {
            seq: w[0],
            id: w[1],
            ok: (w[2] >> 24) & 1 == 1,
            code: (w[2] & 0xffff) as u16,
            stages,
        }
    }
}

struct Slot {
    /// Seqlock version: 0 = never written, odd = write in progress,
    /// even = ticket of the committed record's wrap generation.
    version: AtomicU64,
    words: [AtomicU64; WORDS],
}

impl Slot {
    fn new() -> Self {
        Self {
            version: AtomicU64::new(0),
            words: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

struct Ring {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity.max(1)).map(|_| Slot::new()).collect(),
        }
    }

    fn push(&self, words: &[u64; WORDS]) {
        let pos = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let slot = &self.slots[(pos % cap) as usize];
        // Odd ticket unique to this slot's wrap generation; commits to
        // ticket + 1 (even). Strictly increasing across wraps, so a
        // reader can tell a newer overwrite from a torn read.
        let ticket = 2 * (pos / cap) + 1;
        loop {
            let v = slot.version.load(Ordering::Acquire);
            if v > ticket {
                // A record from a later wrap already owns this slot; the
                // one being pushed would have been overwritten anyway.
                return;
            }
            if v % 2 == 1 {
                // An older writer is mid-commit; wait out its handful of
                // word stores rather than interleave payloads.
                std::hint::spin_loop();
                continue;
            }
            if slot
                .version
                .compare_exchange_weak(v, ticket, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
        for (w, &val) in slot.words.iter().zip(words) {
            w.store(val, Ordering::Relaxed);
        }
        slot.version.store(ticket + 1, Ordering::Release);
    }

    fn collect(&self, out: &mut Vec<TraceRecord>) {
        for slot in &self.slots {
            // Bounded retries: a slot under constant rewrite is being
            // churned faster than it is worth reporting.
            for _ in 0..8 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 == 0 {
                    break; // never written
                }
                if v1 % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let mut words = [0u64; WORDS];
                for (dst, w) in words.iter_mut().zip(&slot.words) {
                    *dst = w.load(Ordering::Relaxed);
                }
                fence(Ordering::Acquire);
                if slot.version.load(Ordering::Relaxed) == v1 {
                    out.push(TraceRecord::decode(&words));
                    break;
                }
            }
        }
    }
}

/// Fixed-capacity flight recorder: the last `recent_capacity` completed
/// traces plus the last `error_capacity` non-OK traces (see the module
/// docs for why errors get their own ring).
pub struct FlightRecorder {
    seq: AtomicU64,
    recent: Ring,
    errors: Ring,
}

impl FlightRecorder {
    /// A recorder retaining `recent_capacity` completed traces and
    /// `error_capacity` non-OK traces (each clamped to at least 1).
    pub fn new(recent_capacity: usize, error_capacity: usize) -> Self {
        Self {
            seq: AtomicU64::new(0),
            recent: Ring::new(recent_capacity),
            errors: Ring::new(error_capacity),
        }
    }

    /// Records one completed trace and returns its admission sequence
    /// (1-based, strictly increasing in call order). The record's own
    /// `seq` field is ignored and replaced. Allocation-free: the sequence
    /// is stamped into the encoded word block, not a cloned record.
    // oftec-lint: hot
    pub fn record(&self, record: &TraceRecord) -> u64 {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let mut words = record.encode();
        words[0] = seq;
        self.recent.push(&words);
        if !record.ok {
            self.errors.push(&words);
        }
        seq
    }

    /// Total traces recorded so far (including evicted ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Both rings merged in admission order (oldest first), with records
    /// still present in both rings reported once.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.recent.slots.len() + self.errors.slots.len());
        self.recent.collect(&mut out);
        self.errors.collect(&mut out);
        out.sort_by_key(|r| r.seq);
        out.dedup_by_key(|r| r.seq);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, ok: bool, code: u16) -> TraceRecord {
        TraceRecord {
            seq: 0,
            id,
            ok,
            code,
            stages: vec![(1, 10 * id), (4, 20 * id)],
        }
    }

    #[test]
    fn record_round_trips_through_the_slot_encoding() {
        let r = FlightRecorder::new(4, 4);
        let mut original = rec(7, false, 9);
        let seq = r.record(&original);
        original.seq = seq;
        assert_eq!(r.snapshot(), vec![original]);
    }

    #[test]
    fn wraparound_keeps_the_most_recent_records_in_order() {
        let r = FlightRecorder::new(4, 2);
        for i in 1..=10 {
            r.record(&rec(i, true, 0));
        }
        let snap = r.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(
            snap.iter().map(|t| t.seq).collect::<Vec<_>>(),
            [7, 8, 9, 10]
        );
        assert_eq!(snap.iter().map(|t| t.id).collect::<Vec<_>>(), [7, 8, 9, 10]);
        assert_eq!(r.recorded(), 10);
    }

    #[test]
    fn errors_outlive_ok_churn() {
        let r = FlightRecorder::new(4, 4);
        r.record(&rec(1, false, 5));
        r.record(&rec(2, false, 6));
        for i in 3..=20 {
            r.record(&rec(i, true, 0));
        }
        let snap = r.snapshot();
        // The recent ring has wrapped many times, but both errors are
        // still retained — first in snapshot order.
        assert_eq!(
            snap.iter().map(|t| (t.seq, t.ok)).collect::<Vec<_>>(),
            [
                (1, false),
                (2, false),
                (17, true),
                (18, true),
                (19, true),
                (20, true)
            ]
        );
    }

    #[test]
    fn fresh_errors_are_not_double_reported() {
        let r = FlightRecorder::new(8, 8);
        r.record(&rec(1, true, 0));
        r.record(&rec(2, false, 5));
        // Record 2 sits in both rings; the snapshot lists it once.
        let snap = r.snapshot();
        assert_eq!(snap.iter().map(|t| t.seq).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn stage_truncation_and_micros_cap() {
        let r = FlightRecorder::new(2, 2);
        let long = TraceRecord {
            seq: 0,
            id: 1,
            ok: true,
            code: 2,
            stages: (0..10).map(|i| (i as u16, u64::MAX)).collect(),
        };
        r.record(&long);
        let snap = r.snapshot();
        assert_eq!(snap[0].stages.len(), MAX_TRACE_STAGES);
        assert!(snap[0].stages.iter().all(|&(_, us)| us == MICROS_MAX));
    }

    #[test]
    fn redact_times_zeroes_stage_durations_only() {
        let mut r = rec(3, false, 7);
        r.redact_times();
        assert_eq!(r.stages, vec![(1, 0), (4, 0)]);
        assert_eq!((r.id, r.ok, r.code), (3, false, 7));
    }

    #[test]
    fn concurrent_recording_smoke() {
        let r = std::sync::Arc::new(FlightRecorder::new(16, 8));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    for i in 0..100 {
                        r.record(&rec(t * 1000 + i, i % 7 != 0, 1));
                    }
                });
            }
        });
        assert_eq!(r.recorded(), 800);
        let snap = r.snapshot();
        assert!(snap.len() <= 24);
        // Sequences are unique and sorted; every record decodes intact.
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(snap.iter().all(|t| t.stages.len() == 2));
    }
}
