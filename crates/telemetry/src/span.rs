//! Lightweight hierarchical spans: RAII wall-time timers that nest into a
//! tree per thread and hand off across the parallel executor.
//!
//! A [`SpanGuard`] is created by [`crate::span`]; dropping it closes the
//! span, records the elapsed wall time, and attaches the finished node to
//! the enclosing open span (or to the thread buffer's root list). When
//! telemetry is not collecting, [`crate::span`] returns an inert guard
//! that costs two branches and no clock reads.

use std::time::Instant;

/// A completed span: name, wall time, and nested children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanNode {
    /// Static span name (e.g. `"sqp.iter"`).
    pub name: &'static str,
    /// Wall time in microseconds.
    pub micros: u64,
    /// Spans closed while this one was open, in completion order.
    pub children: Vec<SpanNode>,
}

/// An open span on a thread's span stack.
#[derive(Debug)]
pub(crate) struct OpenSpan {
    pub(crate) name: &'static str,
    pub(crate) start: Instant,
    pub(crate) children: Vec<SpanNode>,
}

/// RAII guard returned by [`crate::span`]; closes the span on drop.
///
/// The guard is inert (`active == false`) when telemetry was not
/// collecting at creation time, so toggling collection mid-span cannot
/// unbalance the stack: only guards that pushed an [`OpenSpan`] pop one.
#[must_use = "a span is timed until the guard is dropped"]
#[derive(Debug)]
pub struct SpanGuard {
    pub(crate) active: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.active {
            crate::close_span();
        }
    }
}
