//! The structured event sink: JSONL lines on stderr, gated by
//! [`crate::Level`] (the `OFTEC_LOG` environment variable).
//!
//! Events are emitted immediately from whatever thread produced them —
//! they are a human/debugging surface, not part of the deterministic
//! registry — so their interleaving under parallel execution is inherent.
//! Each line is one self-contained JSON object:
//!
//! ```text
//! {"us":1234,"sev":"warn","event":"precond.fallback","reason":"zero pivot"}
//! ```

use crate::json;
use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Severity of an emitted event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Unexpected-but-handled conditions (e.g. a preconditioner
    /// fallback). Emitted at `OFTEC_LOG=summary` and above.
    Warn,
    /// Run-level summaries (a completed optimization, a finished sweep).
    /// Emitted at `OFTEC_LOG=summary` and above.
    Info,
    /// Per-iteration detail (SQP steps, solve outcomes). Emitted only at
    /// `OFTEC_LOG=trace`.
    Debug,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Self::Warn => "warn",
            Self::Info => "info",
            Self::Debug => "debug",
        }
    }
}

/// A typed event field value.
#[derive(Debug, Clone, Copy)]
pub enum Field<'a> {
    /// Unsigned integer field.
    U64(u64),
    /// Float field (non-finite values serialize as `null`).
    F64(f64),
    /// String field.
    Str(&'a str),
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Formats and writes one JSONL event line to stderr.
///
/// The caller ([`crate::event`]) has already checked the level gate.
pub(crate) fn emit(severity: Severity, name: &str, fields: &[(&str, Field<'_>)]) {
    let us = epoch().elapsed().as_micros() as u64;
    let mut line = String::with_capacity(96);
    line.push_str("{\"us\":");
    json::push_u64(&mut line, us);
    line.push_str(",\"sev\":\"");
    line.push_str(severity.label());
    line.push_str("\",\"event\":");
    json::push_str_literal(&mut line, name);
    for (key, value) in fields {
        line.push(',');
        json::push_str_literal(&mut line, key);
        line.push(':');
        match value {
            Field::U64(v) => json::push_u64(&mut line, *v),
            Field::F64(v) => json::push_f64(&mut line, *v),
            Field::Str(s) => json::push_str_literal(&mut line, s),
        }
    }
    line.push_str("}\n");
    // One locked write per line keeps events whole under concurrency.
    let _ = std::io::stderr().lock().write_all(line.as_bytes());
}
