//! Rolling-window SLO monitors.
//!
//! A monitor tracks the mean of the last `window` observations of one
//! scalar signal (a 0/1 failure indicator gives a rate; a continuous
//! value like a residual ratio gives a drift level). The window is
//! **count-based**, not time-based: the same observation sequence yields
//! the same breach edges regardless of wall-clock pacing or thread
//! count, matching the workspace determinism contract. A breach is
//! edge-triggered — the first observation pushing the mean over the
//! threshold (with at least `min_count` observations in the window)
//! emits one `slo.breach` Warn event and bumps the monitor's breach
//! counter; the monitor re-arms once the mean recovers.

use crate::sink::{Field, Severity};
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// Immutable view of a monitor's current window.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// Monitor name (e.g. `serve.slo.shed_rate`).
    pub name: &'static str,
    /// Breach threshold on the rolling mean (exclusive).
    pub threshold: f64,
    /// Window size in observations.
    pub window: usize,
    /// Observations needed before the monitor can breach.
    pub min_count: usize,
    /// Observations currently in the window.
    pub count: usize,
    /// Rolling mean over the window (0 when empty).
    pub mean: f64,
    /// `true` while the mean is over the threshold.
    pub breached: bool,
    /// Breach edges seen over the monitor's lifetime.
    pub breaches: u64,
}

#[derive(Default)]
struct SloState {
    values: VecDeque<f64>,
    breached: bool,
    breaches: u64,
}

/// One rolling-window monitor. Construct once (typically in a `static`-
/// adjacent shared struct), feed it with [`SloMonitor::observe`], and
/// expose [`SloMonitor::status`] on an introspection endpoint.
pub struct SloMonitor {
    name: &'static str,
    breach_counter: &'static str,
    threshold: f64,
    window: usize,
    min_count: usize,
    state: Mutex<SloState>,
}

impl SloMonitor {
    /// A monitor breaching when the mean of the last `window`
    /// observations exceeds `threshold` (needs `min_count` observations
    /// first). Breach edges increment the registry counter
    /// `breach_counter`.
    pub fn new(
        name: &'static str,
        breach_counter: &'static str,
        window: usize,
        min_count: usize,
        threshold: f64,
    ) -> Self {
        Self {
            name,
            breach_counter,
            threshold,
            window: window.max(1),
            min_count: min_count.max(1),
            state: Mutex::new(SloState::default()),
        }
    }

    /// Feeds one observation; returns `true` exactly on a breach edge
    /// (armed → breached transition), which is when the Warn event and
    /// counter increment fire.
    pub fn observe(&self, value: f64) -> bool {
        let (edge, mean) = {
            let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.values.len() == self.window {
                st.values.pop_front();
            }
            st.values.push_back(value);
            // Recompute instead of maintaining a running sum: the window
            // is small and the result is then independent of eviction
            // history (no float-cancellation drift).
            let mean = st.values.iter().sum::<f64>() / st.values.len() as f64;
            let over = st.values.len() >= self.min_count && mean > self.threshold;
            let edge = over && !st.breached;
            st.breached = over;
            if edge {
                st.breaches += 1;
            }
            (edge, mean)
        };
        if edge {
            crate::counter_add(self.breach_counter, 1);
            crate::event(
                Severity::Warn,
                "slo.breach",
                &[
                    ("monitor", Field::Str(self.name)),
                    ("mean", Field::F64(mean)),
                    ("threshold", Field::F64(self.threshold)),
                ],
            );
        }
        edge
    }

    /// The monitor's current window view.
    pub fn status(&self) -> SloStatus {
        let st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let mean = if st.values.is_empty() {
            0.0
        } else {
            st.values.iter().sum::<f64>() / st.values.len() as f64
        };
        SloStatus {
            name: self.name,
            threshold: self.threshold,
            window: self.window,
            min_count: self.min_count,
            count: st.values.len(),
            mean,
            breached: st.breached,
            breaches: st.breaches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breach_is_edge_triggered_and_rearms_on_recovery() {
        let m = SloMonitor::new("t.rate", "slo.breaches.t", 4, 2, 0.5);
        assert!(!m.observe(1.0)); // min_count not reached
        assert!(m.observe(1.0)); // mean 1.0 > 0.5: edge
        assert!(!m.observe(1.0)); // still breached: no second edge
        assert!(!m.observe(0.0)); // mean 0.75: still over
        assert!(!m.observe(0.0)); // window [1,1,0,0] mean 0.5: recovered
        assert!(!m.status().breached);
        assert!(!m.observe(1.0)); // [1,0,0,1] mean 0.5: at, not over
        assert!(!m.observe(1.0)); // [0,0,1,1] mean 0.5: still at
        assert!(m.observe(1.0)); // [0,1,1,1] mean 0.75: second edge
        assert_eq!(m.status().breaches, 2);
    }

    #[test]
    fn window_evicts_oldest_observations() {
        let m = SloMonitor::new("t.win", "slo.breaches.t2", 3, 1, 10.0);
        for v in [30.0, 0.0, 0.0, 0.0] {
            m.observe(v);
        }
        let s = m.status();
        assert_eq!(s.count, 3);
        assert!(s.mean.abs() < 1e-12, "30.0 must have been evicted");
        assert!(!s.breached);
    }

    #[test]
    fn value_monitor_tracks_drift_levels() {
        let m = SloMonitor::new("t.resid", "slo.breaches.t3", 8, 4, 5e-5);
        for _ in 0..4 {
            assert!(!m.observe(1e-5));
        }
        let mut edges = 0;
        for _ in 0..8 {
            if m.observe(2e-4) {
                edges += 1;
            }
        }
        assert_eq!(edges, 1, "one edge as the rolling mean crosses");
        let s = m.status();
        assert!(s.breached && s.mean > 5e-5);
    }

    #[test]
    fn status_reports_configuration() {
        let m = SloMonitor::new("t.cfg", "slo.breaches.t4", 16, 4, 0.25);
        let s = m.status();
        assert_eq!(
            (s.name, s.window, s.min_count, s.count, s.breaches),
            ("t.cfg", 16, 4, 0, 0)
        );
        assert!((s.threshold - 0.25).abs() < 1e-12 && s.mean.abs() < 1e-12);
    }
}
