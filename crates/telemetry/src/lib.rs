//! **oftec-telemetry** — workspace-wide observability for the OFTEC solve
//! stack: a metrics registry (counters, gauges, fixed-bucket histograms),
//! hierarchical RAII spans, per-iteration convergence traces, and a
//! structured JSONL event sink. Std-only, like the rest of the numerical
//! core.
//!
//! # Model
//!
//! All recording goes through a **thread-local buffer**. Worker threads
//! never contend on a lock in the hot path; instead the parallel executor
//! ([`oftec-parallel`]) wraps each work item in [`capture`] and merges the
//! per-item buffers back into the submitting thread **in work-item index
//! order** via [`absorb`]. Because counters and histograms are integer
//! aggregates and gauges/traces/spans merge in index order, the registry
//! contents are identical at any `OFTEC_THREADS` setting — only span
//! wall-times differ (strip them with [`Snapshot::redact_times`]).
//!
//! [`flush`] folds the calling thread's buffer into the process-global
//! registry; [`snapshot`] flushes and returns an exportable copy.
//!
//! # Cost when disabled
//!
//! Collection is off by default. Every entry point first checks one
//! relaxed atomic ([`collecting`]) and returns immediately when disabled:
//! no clock reads, no allocation, no thread-local access. Enable it with
//! `OFTEC_LOG=summary|trace` or programmatically via [`set_collecting`]
//! (what `--telemetry-json` does in the CLI and bench binaries).
//!
//! # Example
//!
//! ```
//! use oftec_telemetry as telemetry;
//!
//! telemetry::set_collecting(true);
//! let (result, buf) = telemetry::capture(|| {
//!     let _span = telemetry::span("work");
//!     telemetry::counter_add("work.items", 3);
//!     42
//! });
//! assert_eq!(result, 42);
//! assert_eq!(buf.counter("work.items"), 3);
//! ```

mod exposition;
mod json;
mod recorder;
mod registry;
mod sink;
mod slo;
mod span;

pub use exposition::{sanitize_metric_name, to_prometheus};
pub use recorder::{FlightRecorder, TraceRecord, MAX_TRACE_STAGES};
pub use registry::{HistogramData, LocalBuffer, Snapshot, TracePoint};
pub use sink::{Field, Severity};
pub use slo::{SloMonitor, SloStatus};
pub use span::{SpanGuard, SpanNode};

use span::OpenSpan;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Verbosity of the JSONL event sink, configured via `OFTEC_LOG`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No events; metric collection stays opt-in (`--telemetry-json`).
    Off,
    /// Warnings and run-level summaries; implies metric collection.
    Summary,
    /// Everything, including per-iteration detail; implies collection.
    Trace,
}

/// `LEVEL` encoding: 0/1/2 = off/summary/trace, `UNINIT` = read the
/// environment on first use.
const LEVEL_UNINIT: u8 = u8::MAX;
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNINIT);

/// `COLLECT` encoding: 0 = follow the level, 1 = forced on, 2 = forced
/// off.
static COLLECT: AtomicU8 = AtomicU8::new(0);

#[derive(Default)]
struct ThreadState {
    buf: LocalBuffer,
    stack: Vec<OpenSpan>,
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::default());
}

fn global() -> &'static Mutex<LocalBuffer> {
    static GLOBAL: OnceLock<Mutex<LocalBuffer>> = OnceLock::new();
    GLOBAL.get_or_init(|| Mutex::new(LocalBuffer::default()))
}

fn level_raw() -> u8 {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != LEVEL_UNINIT {
        return v;
    }
    init_from_env();
    LEVEL.load(Ordering::Relaxed)
}

/// Reads `OFTEC_LOG` (`off`/`summary`/`trace`, default `off`) into the
/// level, unless [`set_level`] already pinned one. Called lazily by every
/// gate, so explicit initialization is only needed to control *when* the
/// environment is read.
pub fn init_from_env() {
    let parsed = match std::env::var("OFTEC_LOG") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "summary" => 1,
            "trace" => 2,
            _ => 0,
        },
        Err(_) => 0,
    };
    // Keep an explicitly set level; only replace the uninitialized marker.
    let _ = LEVEL.compare_exchange(LEVEL_UNINIT, parsed, Ordering::Relaxed, Ordering::Relaxed);
}

/// The active event-sink level.
pub fn level() -> Level {
    match level_raw() {
        2 => Level::Trace,
        1 => Level::Summary,
        _ => Level::Off,
    }
}

/// Overrides the event-sink level (tests and CLI flags; wins over
/// `OFTEC_LOG`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// `true` when metrics/spans/traces are being recorded.
pub fn collecting() -> bool {
    match COLLECT.load(Ordering::Relaxed) {
        1 => true,
        2 => false,
        _ => level_raw() > 0,
    }
}

/// Forces metric collection on or off, independent of the event level
/// (`--telemetry-json` turns collection on without enabling the sink).
pub fn set_collecting(on: bool) {
    COLLECT.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}

/// Adds `n` to the named counter (no-op while not collecting).
pub fn counter_add(name: &'static str, n: u64) {
    if !collecting() || n == 0 {
        return;
    }
    STATE.with(|s| {
        *s.borrow_mut().buf.counters.entry(name).or_insert(0) += n;
    });
}

/// Sets the named gauge (no-op while not collecting). Last writer — in
/// deterministic merge order — wins.
pub fn gauge_set(name: &'static str, value: f64) {
    if !collecting() {
        return;
    }
    STATE.with(|s| {
        s.borrow_mut().buf.gauges.insert(name, value);
    });
}

/// Records `value` into the named fixed-bucket histogram (no-op while not
/// collecting). One name must always use one `bounds` set.
pub fn histogram_record(name: &'static str, bounds: &'static [u64], value: u64) {
    if !collecting() {
        return;
    }
    STATE.with(|s| {
        s.borrow_mut()
            .buf
            .histograms
            .entry(name)
            .or_insert_with(|| HistogramData::new(bounds))
            .record(value);
    });
}

/// Stores a named convergence trace (no-op while not collecting),
/// replacing any previous trace of the same name.
pub fn trace_record(name: &'static str, points: Vec<TracePoint>) {
    if !collecting() {
        return;
    }
    STATE.with(|s| {
        s.borrow_mut().buf.traces.insert(name, points);
    });
}

/// Opens a wall-time span; the returned guard closes it on drop, nesting
/// it under the enclosing open span of this thread.
pub fn span(name: &'static str) -> SpanGuard {
    if !collecting() {
        return SpanGuard { active: false };
    }
    STATE.with(|s| {
        s.borrow_mut().stack.push(OpenSpan {
            name,
            start: Instant::now(),
            children: Vec::new(),
        });
    });
    SpanGuard { active: true }
}

pub(crate) fn close_span() {
    STATE.with(|s| {
        let st = &mut *s.borrow_mut();
        // An unbalanced pop can only follow a `reset` that raced a live
        // guard; ignore it rather than corrupt the tree.
        let Some(open) = st.stack.pop() else { return };
        let node = SpanNode {
            name: open.name,
            micros: open.start.elapsed().as_micros() as u64,
            children: open.children,
        };
        match st.stack.last_mut() {
            Some(top) => top.children.push(node),
            None => st.buf.spans.push(node),
        }
    });
}

/// Emits a structured JSONL event to the sink if the level admits its
/// severity ([`Severity::Warn`]/[`Severity::Info`] at `summary`,
/// [`Severity::Debug`] at `trace`).
pub fn event(severity: Severity, name: &str, fields: &[(&str, Field<'_>)]) {
    let needed = match severity {
        Severity::Warn | Severity::Info => 1,
        Severity::Debug => 2,
    };
    if level_raw() >= needed {
        sink::emit(severity, name, fields);
    }
}

/// Runs `f` with a fresh thread-local buffer and returns its result
/// together with everything `f` recorded on this thread.
///
/// This is the hand-off primitive: the parallel executor wraps each work
/// item in `capture` on the worker thread and later [`absorb`]s the
/// buffers on the submitting thread in item-index order. It also isolates
/// tests from unrelated telemetry produced by concurrent threads.
///
/// While not collecting, `f` runs with zero overhead and the returned
/// buffer is empty.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, LocalBuffer) {
    if !collecting() {
        return (f(), LocalBuffer::default());
    }
    // Swap the whole state out so spans opened inside `f` root in the
    // captured buffer; restore on unwind so a panicking item cannot
    // corrupt the worker's surrounding telemetry.
    struct Restore {
        saved: Option<ThreadState>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            if let Some(saved) = self.saved.take() {
                STATE.with(|s| *s.borrow_mut() = saved);
            }
        }
    }
    let mut restore = Restore {
        saved: Some(STATE.with(|s| std::mem::take(&mut *s.borrow_mut()))),
    };
    let result = f();
    // `saved` is still present here: the drop guard only consumes it on
    // unwind. Falling back to a default state is a no-op in that
    // impossible case rather than a panic on the telemetry path.
    let saved = restore.saved.take().unwrap_or_default();
    let captured = STATE.with(|s| std::mem::replace(&mut *s.borrow_mut(), saved));
    (result, captured.buf)
}

/// Merges a captured buffer into this thread's buffer. Captured root
/// spans attach under the currently open span, exactly as if the work had
/// run inline here.
pub fn absorb(mut buf: LocalBuffer) {
    if buf.is_empty() {
        return;
    }
    let spans = std::mem::take(&mut buf.spans);
    STATE.with(|s| {
        let st = &mut *s.borrow_mut();
        match st.stack.last_mut() {
            Some(top) => top.children.extend(spans),
            None => st.buf.spans.extend(spans),
        }
        st.buf.merge(buf);
    });
}

/// Folds this thread's buffer into the process-global registry.
pub fn flush() {
    let buf = STATE.with(|s| std::mem::take(&mut s.borrow_mut().buf));
    if buf.is_empty() {
        return;
    }
    global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .merge(buf);
}

/// Flushes this thread and returns a copy of the global registry.
pub fn snapshot() -> Snapshot {
    flush();
    let guard = global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    Snapshot::from_buffer(guard.clone())
}

/// Clears the global registry and this thread's buffer (tests and
/// process-lifetime tools). Open spans on other threads are unaffected.
pub fn reset() {
    STATE.with(|s| s.borrow_mut().buf = LocalBuffer::default());
    *global()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = LocalBuffer::default();
}

/// A per-instance counter that mirrors its increments into the registry.
///
/// The owning struct reads exact per-instance values through
/// [`Counter::get`] (always counted, telemetry on or off — one relaxed
/// atomic add), while the registry accumulates the process-wide total
/// under [`Counter::name`] whenever collection is enabled.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
}

impl Counter {
    /// A zeroed counter mirroring into the registry under `name`.
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` to the instance value and (while collecting) the
    /// registry.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        counter_add(self.name, n);
    }

    /// The exact per-instance count.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    /// The registry name this counter mirrors into.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The control statics are process-global, so tests force collection on
    // and isolate their data with `capture` instead of reading `global()`.

    #[test]
    fn disabled_capture_is_empty_and_transparent() {
        set_collecting(false);
        let (r, buf) = capture(|| {
            counter_add("x", 5);
            let _s = span("nothing");
            7
        });
        assert_eq!(r, 7);
        assert!(buf.is_empty());
        set_collecting(true);
    }

    #[test]
    fn spans_nest_and_counters_accumulate() {
        set_collecting(true);
        let (_, buf) = capture(|| {
            let _outer = span("outer");
            counter_add("n", 1);
            {
                let _inner = span("inner");
                counter_add("n", 2);
            }
        });
        assert_eq!(buf.counter("n"), 3);
        let snap = Snapshot::from_buffer(buf);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].name, "outer");
        assert_eq!(snap.spans[0].children.len(), 1);
        assert_eq!(snap.spans[0].children[0].name, "inner");
    }

    #[test]
    fn absorb_attaches_spans_under_the_open_span() {
        set_collecting(true);
        let (_, inner) = capture(|| {
            let _s = span("item");
            counter_add("items", 1);
        });
        let (_, buf) = capture(|| {
            let _root = span("root");
            absorb(inner);
        });
        assert_eq!(buf.counter("items"), 1);
        assert_eq!(buf.spans.len(), 1);
        assert_eq!(buf.spans[0].children[0].name, "item");
    }

    #[test]
    fn capture_restores_state_on_panic() {
        set_collecting(true);
        let (_, buf) = capture(|| {
            counter_add("kept", 1);
            let panicked = std::panic::catch_unwind(|| {
                let _ = capture(|| -> u32 { panic!("boom") });
            });
            assert!(panicked.is_err());
            counter_add("kept", 1);
        });
        assert_eq!(buf.counter("kept"), 2);
    }

    #[test]
    fn instance_counter_counts_even_when_disabled() {
        set_collecting(false);
        let c = Counter::new("test.counter");
        c.add(2);
        c.add(3);
        assert_eq!(c.get(), 5);
        assert_eq!(c.name(), "test.counter");
        set_collecting(true);
        let (_, buf) = capture(|| c.add(4));
        assert_eq!(c.get(), 9);
        assert_eq!(buf.counter("test.counter"), 4);
    }

    #[test]
    fn traces_and_gauges_are_last_writer_wins() {
        set_collecting(true);
        let (_, buf) = capture(|| {
            gauge_set("g", 1.0);
            trace_record("t", vec![TracePoint::new(1, vec![("a", 1.0)])]);
            let (_, inner) = capture(|| {
                gauge_set("g", 2.0);
                trace_record("t", vec![TracePoint::new(1, vec![("a", 2.0)])]);
            });
            absorb(inner);
        });
        assert_eq!(buf.gauges["g"], 2.0);
        let snap = Snapshot::from_buffer(buf);
        assert_eq!(snap.trace("t").unwrap()[0].fields[0].1, 2.0);
    }

    #[test]
    fn histogram_records_through_the_api() {
        set_collecting(true);
        static BOUNDS: &[u64] = &[10, 100];
        let (_, buf) = capture(|| {
            histogram_record("h", BOUNDS, 5);
            histogram_record("h", BOUNDS, 50);
            histogram_record("h", BOUNDS, 500);
        });
        let h = buf.histogram("h").unwrap();
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.sum, 555);
    }
}
