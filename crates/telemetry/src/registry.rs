//! The metrics registry: counters, gauges, fixed-bucket histograms,
//! convergence traces, and completed span trees.
//!
//! All mutation goes through a thread-local [`LocalBuffer`] (see the crate
//! root); this module defines the buffer itself, the merge rules, and the
//! immutable [`Snapshot`] handed to exporters.
//!
//! # Determinism
//!
//! Every merge is designed to be independent of thread scheduling:
//!
//! - counters and histograms hold `u64` values, so merging is associative
//!   and commutative exactly (no floating-point reassociation);
//! - gauges and traces are last-writer-wins, and buffers are always merged
//!   in work-item index order (the [`oftec-parallel`] hand-off), which is
//!   the serial execution order;
//! - span nodes are appended in the same index order, so the tree shape is
//!   identical at any `OFTEC_THREADS` setting — only the recorded
//!   wall-times differ, and [`Snapshot::redact_times`] strips those.

use crate::json;
use crate::span::SpanNode;
use std::collections::BTreeMap;

/// A fixed-bucket histogram of `u64` observations.
///
/// `bounds` are inclusive upper bucket bounds; one implicit overflow
/// bucket catches everything larger, so `counts.len() == bounds.len() + 1`.
/// All fields are integers, making [`HistogramData::merge`] exactly
/// associative — the property the deterministic parallel hand-off relies
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Inclusive upper bounds of the finite buckets.
    pub bounds: &'static [u64],
    /// Observation counts per bucket (last entry = overflow bucket).
    pub counts: Vec<u64>,
    /// Total number of observations.
    pub total: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramData {
    /// An empty histogram over the given bucket bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        Self {
            bounds,
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        let bucket = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[bucket] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ (one metric name must always be
    /// registered with one bound set).
    pub fn merge(&mut self, other: &HistogramData) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merged with mismatched bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Mean observed value, or `None` for an empty histogram.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`) by linear interpolation
    /// within the bucket holding the target rank. Observations in the
    /// overflow bucket report that bucket's lower bound (the estimate is
    /// then a lower bound on the true quantile). `None` for an empty
    /// histogram or a `q` outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // 1-based rank of the target observation, nearest-rank style.
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut lower = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            if count > 0 && seen + count >= target {
                let Some(&upper) = self.bounds.get(i) else {
                    // Overflow bucket: no upper bound to interpolate to.
                    return Some(lower as f64);
                };
                let frac = (target - seen) as f64 / count as f64;
                return Some(lower as f64 + frac * (upper as f64 - lower as f64));
            }
            seen += count;
            if let Some(&b) = self.bounds.get(i) {
                lower = b;
            }
        }
        Some(lower as f64)
    }
}

/// One row of a per-iteration convergence trace: the iteration number plus
/// named numeric fields (residual norm, objective, max die temperature,
/// active-set size, …).
#[derive(Debug, Clone, PartialEq)]
pub struct TracePoint {
    /// 1-based iteration index.
    pub iter: u64,
    /// Named values at this iteration, in recording order.
    pub fields: Vec<(&'static str, f64)>,
}

impl TracePoint {
    /// Builds a trace point.
    pub fn new(iter: u64, fields: Vec<(&'static str, f64)>) -> Self {
        Self { iter, fields }
    }
}

/// A thread-local (or captured per-work-item) accumulation buffer.
///
/// Buffers are cheap to create when telemetry is disabled (all maps
/// empty), merge associatively, and hand their contents up the thread
/// tree through [`crate::capture`]/[`crate::absorb`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LocalBuffer {
    pub(crate) counters: BTreeMap<&'static str, u64>,
    pub(crate) gauges: BTreeMap<&'static str, f64>,
    pub(crate) histograms: BTreeMap<&'static str, HistogramData>,
    pub(crate) traces: BTreeMap<&'static str, Vec<TracePoint>>,
    pub(crate) spans: Vec<SpanNode>,
}

impl LocalBuffer {
    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.traces.is_empty()
            && self.spans.is_empty()
    }

    /// Merges `other` into `self` (counters/histograms add; gauges and
    /// traces are overwritten by `other`; spans append in order).
    pub fn merge(&mut self, other: LocalBuffer) {
        for (name, v) in other.counters {
            *self.counters.entry(name).or_insert(0) += v;
        }
        for (name, v) in other.gauges {
            self.gauges.insert(name, v);
        }
        for (name, h) in other.histograms {
            match self.histograms.get_mut(name) {
                Some(mine) => mine.merge(&h),
                None => {
                    self.histograms.insert(name, h);
                }
            }
        }
        for (name, t) in other.traces {
            self.traces.insert(name, t);
        }
        self.spans.extend(other.spans);
    }

    /// Counter value recorded in this buffer (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram recorded in this buffer, if any.
    pub fn histogram(&self, name: &str) -> Option<&HistogramData> {
        self.histograms.get(name)
    }
}

/// An immutable copy of the registry contents, ready for export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Last-written gauge values by name.
    pub gauges: BTreeMap<&'static str, f64>,
    /// Fixed-bucket histograms by name.
    pub histograms: BTreeMap<&'static str, HistogramData>,
    /// Per-iteration convergence traces by name.
    pub traces: BTreeMap<&'static str, Vec<TracePoint>>,
    /// Completed root spans in completion order.
    pub spans: Vec<SpanNode>,
}

impl Snapshot {
    /// Builds a snapshot from a single buffer (used by tests that isolate
    /// telemetry with [`crate::capture`] instead of reading the global
    /// registry).
    pub fn from_buffer(buf: LocalBuffer) -> Self {
        Self {
            counters: buf.counters,
            gauges: buf.gauges,
            histograms: buf.histograms,
            traces: buf.traces,
            spans: buf.spans,
        }
    }

    /// Counter value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram by name, if recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramData> {
        self.histograms.get(name)
    }

    /// Trace by name, if recorded.
    pub fn trace(&self, name: &str) -> Option<&[TracePoint]> {
        self.traces.get(name).map(Vec::as_slice)
    }

    /// Zeroes every recorded wall-time (span durations), leaving only the
    /// scheduling-independent structure — the form compared by the
    /// determinism tests.
    pub fn redact_times(&mut self) {
        fn redact(node: &mut SpanNode) {
            node.micros = 0;
            for c in &mut node.children {
                redact(c);
            }
        }
        for s in &mut self.spans {
            redact(s);
        }
    }

    /// Serializes the snapshot as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push(':');
            json::push_u64(&mut out, *v);
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push(':');
            json::push_f64(&mut out, *v);
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push_str(":{\"bounds\":[");
            for (j, b) in h.bounds.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_u64(&mut out, *b);
            }
            out.push_str("],\"counts\":[");
            for (j, c) in h.counts.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                json::push_u64(&mut out, *c);
            }
            out.push_str("],\"total\":");
            json::push_u64(&mut out, h.total);
            out.push_str(",\"sum\":");
            json::push_u64(&mut out, h.sum);
            out.push('}');
        }
        out.push_str("},\"traces\":{");
        for (i, (name, points)) in self.traces.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push_str(":[");
            for (j, p) in points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"iter\":");
                json::push_u64(&mut out, p.iter);
                for (fname, fv) in &p.fields {
                    out.push(',');
                    json::push_str_literal(&mut out, fname);
                    out.push(':');
                    json::push_f64(&mut out, *fv);
                }
                out.push('}');
            }
            out.push(']');
        }
        out.push_str("},\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_span_json(&mut out, s);
        }
        out.push_str("]}");
        out
    }
}

fn push_span_json(out: &mut String, node: &SpanNode) {
    out.push_str("{\"name\":");
    json::push_str_literal(out, node.name);
    out.push_str(",\"us\":");
    json::push_u64(out, node.micros);
    out.push_str(",\"children\":[");
    for (i, c) in node.children.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        push_span_json(out, c);
    }
    out.push_str("]}");
}

#[cfg(test)]
mod tests {
    use super::*;

    const BOUNDS: &[u64] = &[1, 2, 4, 8];

    fn hist(values: &[u64]) -> HistogramData {
        let mut h = HistogramData::new(BOUNDS);
        for &v in values {
            h.record(v);
        }
        h
    }

    #[test]
    fn records_into_the_right_bucket() {
        let h = hist(&[0, 1, 2, 3, 9, 100]);
        assert_eq!(h.counts, vec![2, 1, 1, 0, 2]);
        assert_eq!(h.total, 6);
        assert_eq!(h.sum, 115);
        assert!((h.mean().unwrap() - 115.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        assert_eq!(HistogramData::new(BOUNDS).quantile(0.5), None);
        let h = hist(&[0, 0, 0, 0]);
        // All four observations in the [0, 1] bucket: p50 rank 2 of 4.
        assert!((h.quantile(0.5).unwrap() - 0.5).abs() < 1e-12);
        assert!((h.quantile(1.0).unwrap() - 1.0).abs() < 1e-12);
        let h = hist(&[0, 1, 3, 3, 7, 7, 7, 7]);
        // p50 → rank 4 of 8, lands in the (2, 4] bucket (counts 2 there).
        assert!((h.quantile(0.5).unwrap() - 4.0).abs() < 1e-12);
        assert!(h.quantile(-0.1).is_none() && h.quantile(1.1).is_none());
    }

    #[test]
    fn quantile_overflow_bucket_reports_lower_bound() {
        let h = hist(&[100, 200, 300]);
        // Everything is beyond the last bound; best estimate is that bound.
        assert_eq!(h.quantile(0.5), Some(8.0));
        assert_eq!(h.quantile(0.99), Some(8.0));
    }

    #[test]
    fn histogram_merge_is_associative() {
        let (a, b, c) = (hist(&[1, 5]), hist(&[2, 100]), hist(&[3, 3, 3]));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // And commutative, for good measure.
        let mut ba = b;
        ba.merge(&a);
        let mut ab = a;
        ab.merge(&hist(&[2, 100]));
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "mismatched bucket bounds")]
    fn histogram_merge_rejects_different_bounds() {
        static OTHER: &[u64] = &[10, 20];
        let mut a = HistogramData::new(BOUNDS);
        a.merge(&HistogramData::new(OTHER));
    }

    #[test]
    fn buffer_merge_adds_counters_and_overwrites_gauges() {
        let mut a = LocalBuffer::default();
        a.counters.insert("n", 2);
        a.gauges.insert("g", 1.0);
        let mut b = LocalBuffer::default();
        b.counters.insert("n", 3);
        b.gauges.insert("g", 7.0);
        a.merge(b);
        assert_eq!(a.counter("n"), 5);
        assert_eq!(a.gauges["g"], 7.0);
    }

    #[test]
    fn snapshot_json_is_well_formed() {
        let mut buf = LocalBuffer::default();
        buf.counters.insert("thermal.solves", 3);
        buf.gauges.insert("sweep.runaway_fraction", 0.25);
        buf.histograms.insert("cg.iterations", hist(&[2, 9]));
        buf.traces.insert(
            "sqp.opt1",
            vec![TracePoint::new(1, vec![("objective", 4.5)])],
        );
        let json = Snapshot::from_buffer(buf).to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"thermal.solves\":3"));
        assert!(json.contains("\"bounds\":[1,2,4,8]"));
        assert!(json.contains("\"iter\":1,\"objective\":4.5"));
    }
}
