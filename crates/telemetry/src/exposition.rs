//! Prometheus-style text exposition of a registry [`Snapshot`].
//!
//! The format is the standard text exposition: a `# TYPE` line per
//! metric family, counters and gauges as `name value`, histograms as
//! cumulative `name_bucket{le="..."}` series plus `_sum` and `_count`.
//! Dotted registry names are sanitized to the Prometheus grammar
//! (`serve.cache.hits` → `serve_cache_hits`); the mapping is injective
//! for the workspace's `[a-z0-9._]` naming convention, which is what
//! lets CI round-trip the exposition against the JSON snapshot.
//!
//! Convergence traces and span trees have no Prometheus analogue and are
//! not exposed here — they stay in the JSON snapshot.

use crate::registry::Snapshot;
use std::fmt::Write;

/// Maps a registry metric name onto the Prometheus identifier grammar
/// (`[a-zA-Z_:][a-zA-Z0-9_:]*`): every other character becomes `_`, and
/// a leading digit gets a `_` prefix.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else if ok {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

fn push_f64_text(out: &mut String, v: f64) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Renders the snapshot as Prometheus text exposition (counters, gauges,
/// histograms; traces and spans are JSON-only).
pub fn to_prometheus(snap: &Snapshot) -> String {
    let mut out = String::with_capacity(4096);
    for (name, v) in &snap.counters {
        let id = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {id} counter");
        let _ = writeln!(out, "{id} {v}");
    }
    for (name, v) in &snap.gauges {
        let id = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {id} gauge");
        let _ = write!(out, "{id} ");
        push_f64_text(&mut out, *v);
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let id = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {id} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in h.bounds.iter().zip(&h.counts) {
            cumulative += count;
            let _ = writeln!(out, "{id}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{id}_bucket{{le=\"+Inf\"}} {}", h.total);
        let _ = writeln!(out, "{id}_sum {}", h.sum);
        let _ = writeln!(out, "{id}_count {}", h.total);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{HistogramData, LocalBuffer};

    #[test]
    fn sanitizes_names_injectively_for_workspace_conventions() {
        assert_eq!(sanitize_metric_name("serve.cache.hits"), "serve_cache_hits");
        assert_eq!(sanitize_metric_name("serve.latency_us"), "serve_latency_us");
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name("a-b c"), "a_b_c");
    }

    #[test]
    fn renders_counters_gauges_and_cumulative_histograms() {
        static BOUNDS: &[u64] = &[10, 100];
        let mut buf = LocalBuffer::default();
        buf.counters.insert("serve.requests", 42);
        buf.gauges.insert("sweep.runaway_fraction", 0.25);
        let mut h = HistogramData::new(BOUNDS);
        for v in [5, 50, 500] {
            h.record(v);
        }
        buf.histograms.insert("serve.latency_us", h);
        let text = to_prometheus(&Snapshot::from_buffer(buf));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"# TYPE serve_requests counter"));
        assert!(lines.contains(&"serve_requests 42"));
        assert!(lines.contains(&"# TYPE sweep_runaway_fraction gauge"));
        assert!(lines.contains(&"sweep_runaway_fraction 0.25"));
        // Buckets are cumulative; +Inf equals the total count.
        assert!(lines.contains(&"serve_latency_us_bucket{le=\"10\"} 1"));
        assert!(lines.contains(&"serve_latency_us_bucket{le=\"100\"} 2"));
        assert!(lines.contains(&"serve_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(lines.contains(&"serve_latency_us_sum 555"));
        assert!(lines.contains(&"serve_latency_us_count 3"));
    }

    #[test]
    fn counter_values_round_trip_through_the_text_format() {
        let mut buf = LocalBuffer::default();
        buf.counters.insert("a.b", 7);
        buf.counters.insert("c.d.e", 123456789);
        let snap = Snapshot::from_buffer(buf);
        let text = to_prometheus(&snap);
        // Parse the exposition back: `name value` lines, skipping # and
        // histogram series — the same check CI applies to a live server.
        let mut parsed = std::collections::BTreeMap::new();
        for line in text.lines() {
            if line.starts_with('#') || line.contains('{') {
                continue;
            }
            if let Some((name, value)) = line.split_once(' ') {
                if let Ok(v) = value.parse::<u64>() {
                    parsed.insert(name.to_string(), v);
                }
            }
        }
        for (name, v) in &snap.counters {
            assert_eq!(parsed.get(&sanitize_metric_name(name)), Some(v));
        }
    }

    #[test]
    fn non_finite_gauges_render_prometheus_spellings() {
        let mut buf = LocalBuffer::default();
        buf.gauges.insert("bad", f64::NAN);
        buf.gauges.insert("hot", f64::INFINITY);
        let text = to_prometheus(&Snapshot::from_buffer(buf));
        assert!(text.contains("bad NaN"));
        assert!(text.contains("hot +Inf"));
    }
}
