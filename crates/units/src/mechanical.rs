//! Power, energy, and the fan's angular velocity.

use crate::RPM_PER_RAD_PER_S;

quantity!(
    /// A power, stored in watts.
    ///
    /// ```
    /// use oftec_units::Power;
    ///
    /// let p = Power::from_watts(1.5) + Power::from_watts(0.5);
    /// assert_eq!(p.watts(), 2.0);
    /// ```
    Power,
    from_watts,
    watts,
    "W"
);

quantity!(
    /// An energy, stored in joules.
    ///
    /// ```
    /// use oftec_units::Energy;
    ///
    /// let e = Energy::from_joules(10.0) / 2.0;
    /// assert_eq!(e.joules(), 5.0);
    /// ```
    Energy,
    from_joules,
    joules,
    "J"
);

quantity!(
    /// An angular velocity, stored in radians per second.
    ///
    /// The fan speed `ω` — OFTEC's second optimization variable. The paper
    /// quotes limits both ways: `ω_max = 524 rad/s = 5000 RPM`.
    ///
    /// ```
    /// use oftec_units::AngularVelocity;
    ///
    /// let w = AngularVelocity::from_rpm(2000.0);
    /// assert!((w.rad_per_s() - 209.44).abs() < 0.01);
    /// assert!((w.rpm() - 2000.0).abs() < 1e-9);
    /// ```
    AngularVelocity,
    from_rad_per_s,
    rad_per_s,
    "rad/s"
);

impl Power {
    /// Creates a power from milliwatts.
    #[inline]
    pub const fn from_milliwatts(mw: f64) -> Self {
        Self::from_watts(mw * 1e-3)
    }

    /// Returns the power in milliwatts.
    #[inline]
    pub fn milliwatts(self) -> f64 {
        self.watts() * 1e3
    }
}

impl AngularVelocity {
    /// Creates an angular velocity from revolutions per minute.
    #[inline]
    pub fn from_rpm(rpm: f64) -> Self {
        Self::from_rad_per_s(rpm / RPM_PER_RAD_PER_S)
    }

    /// Returns the angular velocity in revolutions per minute.
    #[inline]
    pub fn rpm(self) -> f64 {
        self.rad_per_s() * RPM_PER_RAD_PER_S
    }

    /// Cubic fan-power law `P_fan = c·ω³` (Eq. (8) of the paper), with `c`
    /// in J·s² (the paper uses `c = 1.6e-7 J·s²`).
    ///
    /// ```
    /// use oftec_units::AngularVelocity;
    ///
    /// // 5000 RPM at the paper's constant: ≈ 23 W.
    /// let p = AngularVelocity::from_rpm(5000.0).fan_power(1.6e-7);
    /// assert!((p.watts() - 22.97).abs() < 0.05);
    /// ```
    #[inline]
    pub fn fan_power(self, c: f64) -> Power {
        let w = self.rad_per_s();
        Power::from_watts(c * w * w * w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rpm_round_trip() {
        let w = AngularVelocity::from_rpm(5000.0);
        assert!((w.rad_per_s() - 523.598).abs() < 1e-3);
        assert!((w.rpm() - 5000.0).abs() < 1e-9);
    }

    #[test]
    fn paper_omega_max_is_524_rad_s() {
        // The paper rounds 5000 RPM to 524 rad/s.
        assert!((AngularVelocity::from_rpm(5000.0).rad_per_s() - 524.0).abs() < 0.5);
    }

    #[test]
    fn fan_power_is_cubic() {
        let c = 1.6e-7;
        let w1 = AngularVelocity::from_rad_per_s(100.0).fan_power(c);
        let w2 = AngularVelocity::from_rad_per_s(200.0).fan_power(c);
        assert!((w2.watts() / w1.watts() - 8.0).abs() < 1e-12);
        assert_eq!(AngularVelocity::ZERO.fan_power(c), Power::ZERO);
    }

    #[test]
    fn milliwatt_conversion() {
        assert_eq!(Power::from_milliwatts(1500.0).watts(), 1.5);
        assert_eq!(Power::from_watts(0.25).milliwatts(), 250.0);
    }

    #[test]
    fn sum_over_iterator() {
        let total: Power = (1..=4).map(|k| Power::from_watts(k as f64)).sum();
        assert_eq!(total.watts(), 10.0);
    }
}
