//! Type-safe physical quantities for the OFTEC cooling stack.
//!
//! Every quantity is a thin newtype over `f64` carrying its SI unit in the
//! type. The crate exists so that the public APIs of the thermal simulator,
//! the TEC device model, and the OFTEC optimizer cannot confuse, say, a fan
//! speed in RPM with one in rad/s, or a temperature in Celsius with one in
//! Kelvin — both mistakes that silently corrupt a thermal simulation.
//!
//! Inner loops of the solvers work on raw `f64` buffers for speed; these
//! types guard the boundaries where humans supply or read values.
//!
//! # Examples
//!
//! ```
//! use oftec_units::{AngularVelocity, Temperature};
//!
//! let fan = AngularVelocity::from_rpm(5000.0);
//! assert!((fan.rad_per_s() - 523.6).abs() < 0.1);
//!
//! let t_max = Temperature::from_celsius(90.0);
//! assert_eq!(t_max.kelvin(), 363.15);
//! ```

#[macro_use]
mod macros;

mod electrical;
mod geometry;
mod mechanical;
mod temperature;
mod thermal;

pub use electrical::{Current, ElectricalResistance, SeebeckCoefficient, Voltage};
pub use geometry::{Area, Length, Volume};
pub use mechanical::{AngularVelocity, Energy, Power};
pub use temperature::{Temperature, TemperatureDelta};
pub use thermal::{
    HeatFlux, ThermalCapacitance, ThermalConductance, ThermalConductivity, ThermalResistance,
    VolumetricHeatCapacity,
};

/// Absolute zero expressed in degrees Celsius; used for K ↔ °C conversion.
pub const CELSIUS_OFFSET: f64 = 273.15;

/// Conversion factor between revolutions per minute and radians per second.
pub const RPM_PER_RAD_PER_S: f64 = 60.0 / (2.0 * std::f64::consts::PI);
