//! Absolute temperatures and temperature differences.
//!
//! [`Temperature`] is a point on the absolute scale (stored in Kelvin),
//! while [`TemperatureDelta`] is a difference between two such points.
//! Keeping them distinct prevents the classic bug of adding 273.15 twice or
//! treating a ΔT as an absolute value in the Peltier term `α·T·I`.

use crate::CELSIUS_OFFSET;

/// An absolute temperature, stored internally in Kelvin.
///
/// # Examples
///
/// ```
/// use oftec_units::Temperature;
///
/// let ambient = Temperature::from_celsius(45.0);
/// assert!((ambient.kelvin() - 318.15).abs() < 1e-12);
/// assert!((ambient.celsius() - 45.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct Temperature(f64);

/// A temperature difference in Kelvin (equivalently, in °C difference).
///
/// ```
/// use oftec_units::{Temperature, TemperatureDelta};
///
/// let hot = Temperature::from_celsius(90.0);
/// let cold = Temperature::from_celsius(45.0);
/// assert_eq!(hot - cold, TemperatureDelta::from_kelvin(45.0));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize,
)]
#[serde(transparent)]
pub struct TemperatureDelta(f64);

impl Temperature {
    /// 0 K, the absolute zero.
    pub const ABSOLUTE_ZERO: Self = Self(0.0);

    /// Creates a temperature from a value in Kelvin.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `kelvin` is negative (below absolute zero).
    #[inline]
    pub fn from_kelvin(kelvin: f64) -> Self {
        debug_assert!(
            kelvin.is_nan() || kelvin >= 0.0,
            "temperature below absolute zero: {kelvin} K"
        );
        Self(kelvin)
    }

    /// Creates a temperature from a value in degrees Celsius.
    #[inline]
    pub fn from_celsius(celsius: f64) -> Self {
        Self::from_kelvin(celsius + CELSIUS_OFFSET)
    }

    /// Returns the temperature in Kelvin.
    #[inline]
    pub const fn kelvin(self) -> f64 {
        self.0
    }

    /// Returns the temperature in degrees Celsius.
    #[inline]
    pub fn celsius(self) -> f64 {
        self.0 - CELSIUS_OFFSET
    }

    /// Returns `true` if the value is finite (not NaN or ±∞).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the smaller of the two temperatures.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        Self(self.0.min(other.0))
    }

    /// Returns the larger of the two temperatures.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        Self(self.0.max(other.0))
    }
}

impl TemperatureDelta {
    /// The zero difference.
    pub const ZERO: Self = Self(0.0);

    /// Creates a difference from a value in Kelvin.
    #[inline]
    pub const fn from_kelvin(kelvin: f64) -> Self {
        Self(kelvin)
    }

    /// Returns the difference in Kelvin.
    #[inline]
    pub const fn kelvin(self) -> f64 {
        self.0
    }

    /// Returns the absolute value of the difference.
    #[inline]
    pub fn abs(self) -> Self {
        Self(self.0.abs())
    }
}

impl core::ops::Sub for Temperature {
    type Output = TemperatureDelta;
    #[inline]
    fn sub(self, rhs: Self) -> TemperatureDelta {
        TemperatureDelta(self.0 - rhs.0)
    }
}

impl core::ops::Add<TemperatureDelta> for Temperature {
    type Output = Temperature;
    #[inline]
    fn add(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 + rhs.0)
    }
}

impl core::ops::Sub<TemperatureDelta> for Temperature {
    type Output = Temperature;
    #[inline]
    fn sub(self, rhs: TemperatureDelta) -> Temperature {
        Temperature(self.0 - rhs.0)
    }
}

impl core::ops::Add for TemperatureDelta {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self(self.0 + rhs.0)
    }
}

impl core::ops::Sub for TemperatureDelta {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self(self.0 - rhs.0)
    }
}

impl core::ops::Neg for TemperatureDelta {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Self(-self.0)
    }
}

impl core::ops::Mul<f64> for TemperatureDelta {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        Self(self.0 * rhs)
    }
}

impl core::fmt::Display for Temperature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3} K ({:.3} °C)", self.0, self.celsius())
    }
}

impl core::fmt::Display for TemperatureDelta {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3} K", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn celsius_round_trip() {
        let t = Temperature::from_celsius(90.0);
        assert!((t.kelvin() - 363.15).abs() < 1e-12);
        assert!((t.celsius() - 90.0).abs() < 1e-12);
    }

    #[test]
    fn delta_arithmetic() {
        let hot = Temperature::from_kelvin(363.0);
        let cold = Temperature::from_kelvin(318.0);
        let dt = hot - cold;
        assert_eq!(dt.kelvin(), 45.0);
        assert_eq!(cold + dt, hot);
        assert_eq!(hot - dt, cold);
        assert_eq!((-dt).kelvin(), -45.0);
    }

    #[test]
    fn ordering() {
        assert!(Temperature::from_celsius(90.0) > Temperature::from_celsius(45.0));
        assert_eq!(
            Temperature::from_celsius(10.0).max(Temperature::from_celsius(20.0)),
            Temperature::from_celsius(20.0)
        );
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    #[cfg(debug_assertions)]
    fn below_absolute_zero_panics() {
        let _ = Temperature::from_kelvin(-1.0);
    }

    #[test]
    fn display_contains_both_scales() {
        let s = format!("{}", Temperature::from_celsius(45.0));
        assert!(s.contains("318.15"));
        assert!(s.contains("45"));
    }

    #[test]
    fn serde_round_trip() {
        let t = Temperature::from_kelvin(350.5);
        let json = serde_json::to_string(&t).unwrap();
        assert_eq!(json, "350.5");
        let back: Temperature = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }
}
