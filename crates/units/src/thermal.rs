//! Thermal transport quantities: conductivity, conductance, resistance,
//! capacitance, and heat flux.

use crate::{Area, Length, Power, TemperatureDelta, Volume};

quantity!(
    /// A material thermal conductivity, stored in W/(m·K).
    ///
    /// Table 1 of the paper specifies these per layer: 100 for silicon,
    /// 1.75 for the TIMs, 400 for the copper spreader/sink.
    ///
    /// ```
    /// use oftec_units::ThermalConductivity;
    ///
    /// let si = ThermalConductivity::from_w_per_m_k(100.0);
    /// assert_eq!(si.w_per_m_k(), 100.0);
    /// ```
    ThermalConductivity,
    from_w_per_m_k,
    w_per_m_k,
    "W/(m·K)"
);

quantity!(
    /// A lumped thermal conductance, stored in W/K.
    ///
    /// The entries `g_ij` of the network matrix **G** (Eq. (18)) carry this
    /// unit, as does the fan/heat-sink conductance `g_HS&fan(ω)` (Eq. (9)).
    ///
    /// ```
    /// use oftec_units::ThermalConductance;
    ///
    /// let g = ThermalConductance::from_w_per_k(0.525);
    /// assert_eq!(g.w_per_k(), 0.525);
    /// ```
    ThermalConductance,
    from_w_per_k,
    w_per_k,
    "W/K"
);

quantity!(
    /// A lumped thermal resistance, stored in K/W (the reciprocal of
    /// [`ThermalConductance`]).
    ///
    /// ```
    /// use oftec_units::ThermalResistance;
    ///
    /// let r = ThermalResistance::from_k_per_w(2.0);
    /// assert_eq!(r.to_conductance().w_per_k(), 0.5);
    /// ```
    ThermalResistance,
    from_k_per_w,
    k_per_w,
    "K/W"
);

quantity!(
    /// A lumped thermal capacitance, stored in J/K. Used by the transient
    /// simulator's RC integration.
    ///
    /// ```
    /// use oftec_units::ThermalCapacitance;
    ///
    /// let c = ThermalCapacitance::from_j_per_k(0.1);
    /// assert_eq!(c.j_per_k(), 0.1);
    /// ```
    ThermalCapacitance,
    from_j_per_k,
    j_per_k,
    "J/K"
);

quantity!(
    /// A volumetric heat capacity, stored in J/(m³·K); multiplied by a cell
    /// volume it yields the cell's [`ThermalCapacitance`].
    ///
    /// ```
    /// use oftec_units::VolumetricHeatCapacity;
    ///
    /// let si = VolumetricHeatCapacity::from_j_per_m3_k(1.75e6);
    /// assert_eq!(si.j_per_m3_k(), 1.75e6);
    /// ```
    VolumetricHeatCapacity,
    from_j_per_m3_k,
    j_per_m3_k,
    "J/(m³·K)"
);

quantity!(
    /// A heat flux, stored in W/m².
    ///
    /// Thin-film TECs pump fluxes up to ~1,300 W/cm² = 1.3e7 W/m².
    ///
    /// ```
    /// use oftec_units::HeatFlux;
    ///
    /// let q = HeatFlux::from_w_per_cm2(1300.0);
    /// assert!((q.w_per_m2() - 1.3e7).abs() < 1.0);
    /// ```
    HeatFlux,
    from_w_per_m2,
    w_per_m2,
    "W/m²"
);

impl ThermalConductivity {
    /// Conductance of a prism of cross-section `area` and length `thickness`
    /// along the heat-flow direction: `g = k·A/L`.
    ///
    /// # Panics
    ///
    /// Panics if `thickness` is zero or negative.
    #[inline]
    pub fn conductance(self, area: Area, thickness: Length) -> ThermalConductance {
        assert!(
            thickness.meters() > 0.0,
            "conduction path must have positive length"
        );
        ThermalConductance::from_w_per_k(
            self.w_per_m_k() * area.square_meters() / thickness.meters(),
        )
    }
}

impl ThermalConductance {
    /// Reciprocal resistance `1/g`.
    #[inline]
    pub fn to_resistance(self) -> ThermalResistance {
        ThermalResistance::from_k_per_w(1.0 / self.w_per_k())
    }

    /// Series combination `1/(1/g₁ + 1/g₂)` — two conductances traversed by
    /// the same heat flow, e.g. the half-cell conductances that couple
    /// neighbouring grid cells.
    #[inline]
    pub fn series(self, other: Self) -> Self {
        let (a, b) = (self.w_per_k(), other.w_per_k());
        if a == 0.0 || b == 0.0 {
            return Self::ZERO;
        }
        Self::from_w_per_k(a * b / (a + b))
    }

    /// Heat flow `q = g·ΔT` driven through this conductance.
    #[inline]
    pub fn heat_flow(self, dt: TemperatureDelta) -> Power {
        Power::from_watts(self.w_per_k() * dt.kelvin())
    }
}

impl ThermalResistance {
    /// Reciprocal conductance `1/R`.
    #[inline]
    pub fn to_conductance(self) -> ThermalConductance {
        ThermalConductance::from_w_per_k(1.0 / self.k_per_w())
    }
}

impl VolumetricHeatCapacity {
    /// Capacitance of a cell of the given volume: `C = c_v·V`.
    #[inline]
    pub fn capacitance(self, volume: Volume) -> ThermalCapacitance {
        ThermalCapacitance::from_j_per_k(self.j_per_m3_k() * volume.cubic_meters())
    }
}

impl HeatFlux {
    /// Creates a heat flux from W/cm².
    #[inline]
    pub const fn from_w_per_cm2(w_per_cm2: f64) -> Self {
        Self::from_w_per_m2(w_per_cm2 * 1e4)
    }

    /// Returns the flux in W/cm².
    #[inline]
    pub fn w_per_cm2(self) -> f64 {
        self.w_per_m2() * 1e-4
    }

    /// Total power through the given area.
    #[inline]
    pub fn power(self, area: Area) -> Power {
        Power::from_watts(self.w_per_m2() * area.square_meters())
    }
}

impl core::ops::Mul<Area> for HeatFlux {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Area) -> Power {
        self.power(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prism_conductance() {
        // Silicon die from Table 1: 15.9×15.9 mm × 15 µm, k = 100.
        let g = ThermalConductivity::from_w_per_m_k(100.0)
            .conductance(Area::from_square_mm(15.9 * 15.9), Length::from_um(15.0));
        // g = 100 * 2.5281e-4 / 1.5e-5 = 1685.4 W/K (vertical, very high).
        assert!((g.w_per_k() - 1685.4).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn zero_thickness_panics() {
        let _ = ThermalConductivity::from_w_per_m_k(1.0)
            .conductance(Area::from_square_mm(1.0), Length::ZERO);
    }

    #[test]
    fn resistance_round_trip() {
        let g = ThermalConductance::from_w_per_k(4.0);
        assert_eq!(g.to_resistance().k_per_w(), 0.25);
        assert_eq!(g.to_resistance().to_conductance(), g);
    }

    #[test]
    fn series_combination() {
        let a = ThermalConductance::from_w_per_k(2.0);
        let b = ThermalConductance::from_w_per_k(2.0);
        assert_eq!(a.series(b).w_per_k(), 1.0);
        assert_eq!(a.series(ThermalConductance::ZERO), ThermalConductance::ZERO);
        // Series with a much larger conductance is dominated by the smaller.
        let big = ThermalConductance::from_w_per_k(1e9);
        assert!((a.series(big).w_per_k() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fourier_heat_flow() {
        let g = ThermalConductance::from_w_per_k(0.5);
        let q = g.heat_flow(TemperatureDelta::from_kelvin(30.0));
        assert_eq!(q.watts(), 15.0);
    }

    #[test]
    fn heat_flux_units() {
        let q = HeatFlux::from_w_per_cm2(1300.0);
        assert!((q.w_per_m2() - 1.3e7).abs() < 1e-3);
        assert!((q.w_per_cm2() - 1300.0).abs() < 1e-9);
        let p = q * Area::from_square_mm(1.0);
        assert!((p.watts() - 13.0).abs() < 1e-9);
    }

    #[test]
    fn volumetric_capacitance() {
        let cv = VolumetricHeatCapacity::from_j_per_m3_k(1.75e6);
        let vol = Area::from_square_mm(1.0) * Length::from_um(100.0);
        let c = cv.capacitance(vol);
        assert!((c.j_per_k() - 1.75e6 * 1e-6 * 1e-4).abs() < 1e-12);
    }
}
