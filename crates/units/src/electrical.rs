//! Electrical quantities used by the TEC device model.

use crate::{Power, Temperature, TemperatureDelta};

quantity!(
    /// An electric current, stored in amperes.
    ///
    /// The TEC driving current `I_TEC` — one of OFTEC's two optimization
    /// variables — is expressed with this type.
    ///
    /// ```
    /// use oftec_units::Current;
    ///
    /// let i_max = Current::from_amperes(5.0);
    /// assert_eq!(i_max.amperes(), 5.0);
    /// ```
    Current,
    from_amperes,
    amperes,
    "A"
);

quantity!(
    /// An electric potential, stored in volts.
    ///
    /// ```
    /// use oftec_units::Voltage;
    ///
    /// let v = Voltage::from_volts(1.2);
    /// assert_eq!(v.volts(), 1.2);
    /// ```
    Voltage,
    from_volts,
    volts,
    "V"
);

quantity!(
    /// An electrical resistance, stored in ohms.
    ///
    /// `R_TEC` in Eqs. (1)–(3) of the paper is expressed with this type.
    ///
    /// ```
    /// use oftec_units::ElectricalResistance;
    ///
    /// let r = ElectricalResistance::from_ohms(0.01);
    /// assert_eq!(r.ohms(), 0.01);
    /// ```
    ElectricalResistance,
    from_ohms,
    ohms,
    "Ω"
);

quantity!(
    /// A Seebeck coefficient, stored in volts per Kelvin.
    ///
    /// `α` in the Peltier terms `α·T·I` of Eqs. (1)–(2). Thin-film
    /// superlattice couples are in the few-hundred µV/K range.
    ///
    /// ```
    /// use oftec_units::SeebeckCoefficient;
    ///
    /// let alpha = SeebeckCoefficient::from_uv_per_kelvin(300.0);
    /// assert!((alpha.volts_per_kelvin() - 3e-4).abs() < 1e-18);
    /// ```
    SeebeckCoefficient,
    from_volts_per_kelvin,
    volts_per_kelvin,
    "V/K"
);

impl SeebeckCoefficient {
    /// Creates a Seebeck coefficient from microvolts per Kelvin.
    #[inline]
    pub const fn from_uv_per_kelvin(uv_per_k: f64) -> Self {
        Self::from_volts_per_kelvin(uv_per_k * 1e-6)
    }

    /// Returns the coefficient in microvolts per Kelvin.
    #[inline]
    pub fn microvolts_per_kelvin(self) -> f64 {
        self.volts_per_kelvin() * 1e6
    }

    /// Peltier heat-pumping rate `α·T·I` at absolute temperature `t` for
    /// driving current `i` (the first term of Eqs. (1)–(2)).
    #[inline]
    pub fn peltier_power(self, t: Temperature, i: Current) -> Power {
        Power::from_watts(self.volts_per_kelvin() * t.kelvin() * i.amperes())
    }

    /// Seebeck back-EMF `α·ΔT` across a couple sustaining difference `dt`.
    #[inline]
    pub fn back_emf(self, dt: TemperatureDelta) -> Voltage {
        Voltage::from_volts(self.volts_per_kelvin() * dt.kelvin())
    }
}

impl Current {
    /// Joule dissipation `I²·R` in resistance `r`.
    #[inline]
    pub fn joule_power(self, r: ElectricalResistance) -> Power {
        Power::from_watts(self.amperes() * self.amperes() * r.ohms())
    }
}

impl core::ops::Mul<Current> for Voltage {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Current) -> Power {
        Power::from_watts(self.volts() * rhs.amperes())
    }
}

impl core::ops::Mul<Voltage> for Current {
    type Output = Power;
    #[inline]
    fn mul(self, rhs: Voltage) -> Power {
        rhs * self
    }
}

impl core::ops::Mul<ElectricalResistance> for Current {
    type Output = Voltage;
    #[inline]
    fn mul(self, rhs: ElectricalResistance) -> Voltage {
        Voltage::from_volts(self.amperes() * rhs.ohms())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Temperature;

    #[test]
    fn ohms_law_and_power() {
        let i = Current::from_amperes(2.0);
        let r = ElectricalResistance::from_ohms(3.0);
        let v = i * r;
        assert_eq!(v.volts(), 6.0);
        assert_eq!((v * i).watts(), 12.0);
        assert_eq!((i * v).watts(), 12.0);
        assert_eq!(i.joule_power(r).watts(), 12.0);
    }

    #[test]
    fn peltier_power_matches_alpha_t_i() {
        let alpha = SeebeckCoefficient::from_uv_per_kelvin(300.0);
        let p = alpha.peltier_power(Temperature::from_kelvin(350.0), Current::from_amperes(2.0));
        assert!((p.watts() - 3e-4 * 350.0 * 2.0).abs() < 1e-12);
    }

    #[test]
    fn back_emf() {
        let alpha = SeebeckCoefficient::from_uv_per_kelvin(200.0);
        let v = alpha.back_emf(TemperatureDelta::from_kelvin(10.0));
        assert!((v.volts() - 2e-3).abs() < 1e-15);
    }

    #[test]
    fn microvolt_round_trip() {
        let alpha = SeebeckCoefficient::from_uv_per_kelvin(250.0);
        assert!((alpha.microvolts_per_kelvin() - 250.0).abs() < 1e-9);
    }
}
