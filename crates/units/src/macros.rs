//! Internal boilerplate generator for scalar quantity newtypes.

/// Defines a quantity newtype over `f64` with the standard constructor,
/// accessor, arithmetic with itself and with bare scalars, ordering helpers,
/// `Display`, and serde support.
///
/// The generated type is `Copy` and stores its value in the named SI unit.
macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, $ctor:ident, $getter:ident, $unit:literal
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
        #[serde(transparent)]
        pub struct $name(f64);

        impl $name {
            /// The zero value of this quantity.
            pub const ZERO: Self = Self(0.0);

            #[doc = concat!("Creates the quantity from a value in ", $unit, ".")]
            #[inline]
            pub const fn $ctor(value: f64) -> Self {
                Self(value)
            }

            #[doc = concat!("Returns the value in ", $unit, ".")]
            #[inline]
            pub const fn $getter(self) -> f64 {
                self.0
            }

            /// Returns `true` if the value is finite (not NaN or ±∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// Returns the smaller of the two quantities.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }

            /// Returns the larger of the two quantities.
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// Returns the absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// Clamps the value to the closed interval `[lo, hi]`.
            ///
            /// # Panics
            ///
            /// Panics if `lo > hi`.
            #[inline]
            pub fn clamp(self, lo: Self, hi: Self) -> Self {
                assert!(lo.0 <= hi.0, "clamp: lo must not exceed hi");
                Self(self.0.clamp(lo.0, hi.0))
            }
        }

        impl core::ops::Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl core::ops::Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl core::ops::Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl core::ops::Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl core::ops::Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl core::ops::Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl core::ops::Div for $name {
            /// Dividing two like quantities yields a dimensionless ratio.
            type Output = f64;
            #[inline]
            fn div(self, rhs: Self) -> f64 {
                self.0 / rhs.0
            }
        }

        impl core::ops::AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl core::ops::SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl core::iter::Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl core::fmt::Display for $name {
            fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                write!(f, "{} {}", self.0, $unit)
            }
        }
    };
}
