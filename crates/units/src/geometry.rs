//! Lengths, areas, and volumes of package layers and floorplan blocks.

quantity!(
    /// A length, stored in meters.
    ///
    /// ```
    /// use oftec_units::Length;
    ///
    /// let die_edge = Length::from_mm(15.9);
    /// assert!((die_edge.meters() - 0.0159).abs() < 1e-15);
    /// ```
    Length,
    from_meters,
    meters,
    "m"
);

quantity!(
    /// An area, stored in square meters.
    ///
    /// ```
    /// use oftec_units::{Area, Length};
    ///
    /// let a = Length::from_mm(30.0) * Length::from_mm(30.0);
    /// assert!((a.square_meters() - 9e-4).abs() < 1e-12);
    /// ```
    Area,
    from_square_meters,
    square_meters,
    "m²"
);

quantity!(
    /// A volume, stored in cubic meters.
    ///
    /// ```
    /// use oftec_units::{Length, Volume};
    ///
    /// let v = Volume::from_cubic_meters(1e-9);
    /// assert!((v.cubic_meters() - 1e-9).abs() < 1e-24);
    /// ```
    Volume,
    from_cubic_meters,
    cubic_meters,
    "m³"
);

impl Length {
    /// Creates a length from millimeters.
    #[inline]
    pub const fn from_mm(mm: f64) -> Self {
        Self::from_meters(mm * 1e-3)
    }

    /// Creates a length from micrometers.
    #[inline]
    pub const fn from_um(um: f64) -> Self {
        Self::from_meters(um * 1e-6)
    }

    /// Returns the length in millimeters.
    #[inline]
    pub fn millimeters(self) -> f64 {
        self.meters() * 1e3
    }

    /// Returns the length in micrometers.
    #[inline]
    pub fn micrometers(self) -> f64 {
        self.meters() * 1e6
    }
}

impl Area {
    /// Creates an area from square millimeters.
    #[inline]
    pub const fn from_square_mm(mm2: f64) -> Self {
        Self::from_square_meters(mm2 * 1e-6)
    }

    /// Returns the area in square millimeters.
    #[inline]
    pub fn square_millimeters(self) -> f64 {
        self.square_meters() * 1e6
    }

    /// Returns the area in square centimeters (the unit of heat-flux specs
    /// such as "1,300 W/cm²").
    #[inline]
    pub fn square_centimeters(self) -> f64 {
        self.square_meters() * 1e4
    }
}

impl core::ops::Mul for Length {
    type Output = Area;
    #[inline]
    fn mul(self, rhs: Length) -> Area {
        Area::from_square_meters(self.meters() * rhs.meters())
    }
}

impl core::ops::Mul<Length> for Area {
    type Output = Volume;
    #[inline]
    fn mul(self, rhs: Length) -> Volume {
        Volume::from_cubic_meters(self.square_meters() * rhs.meters())
    }
}

impl core::ops::Div<Length> for Area {
    type Output = Length;
    #[inline]
    fn div(self, rhs: Length) -> Length {
        Length::from_meters(self.square_meters() / rhs.meters())
    }
}

impl core::ops::Div<Length> for Volume {
    type Output = Area;
    #[inline]
    fn div(self, rhs: Length) -> Area {
        Area::from_square_meters(self.cubic_meters() / rhs.meters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_scaling() {
        assert!((Length::from_mm(15.9).meters() - 0.0159).abs() < 1e-15);
        assert!((Length::from_um(20.0).meters() - 2e-5).abs() < 1e-18);
        assert!((Length::from_meters(0.06).millimeters() - 60.0).abs() < 1e-9);
        assert!((Length::from_mm(0.015).micrometers() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn length_times_length_is_area() {
        let a = Length::from_mm(60.0) * Length::from_mm(60.0);
        assert!((a.square_millimeters() - 3600.0).abs() < 1e-9);
        assert!((a.square_centimeters() - 36.0).abs() < 1e-9);
    }

    #[test]
    fn area_times_length_is_volume() {
        let v = Area::from_square_mm(100.0) * Length::from_um(15.0);
        assert!((v.cubic_meters() - 100e-6 * 15e-6).abs() < 1e-20);
    }

    #[test]
    fn volume_div_length_round_trip() {
        let a = Area::from_square_mm(12.0);
        let h = Length::from_um(7.0);
        let v = a * h;
        let back = v / h;
        assert!((back.square_meters() - a.square_meters()).abs() < 1e-18);
    }

    #[test]
    fn quantity_helpers() {
        let a = Length::from_mm(2.0);
        let b = Length::from_mm(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert_eq!((a - b).abs(), Length::from_mm(3.0));
        assert_eq!(b / a, 2.5);
        assert_eq!(b.clamp(Length::ZERO, a), a);
    }
}
