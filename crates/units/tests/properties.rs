//! Property-based tests for unit conversions and arithmetic laws.

use oftec_units::{
    AngularVelocity, Area, Current, ElectricalResistance, Length, Power, SeebeckCoefficient,
    Temperature, TemperatureDelta, ThermalConductance, ThermalConductivity,
};
use proptest::prelude::*;

fn finite_positive() -> impl Strategy<Value = f64> {
    // Wide but safely representable range for physical magnitudes.
    1e-9..1e9f64
}

proptest! {
    #[test]
    fn rpm_rad_round_trip(rpm in finite_positive()) {
        let w = AngularVelocity::from_rpm(rpm);
        prop_assert!((w.rpm() - rpm).abs() <= 1e-9 * rpm.abs());
    }

    #[test]
    fn celsius_kelvin_round_trip(c in -200.0..2000.0f64) {
        let t = Temperature::from_celsius(c);
        prop_assert!((t.celsius() - c).abs() < 1e-9);
        let t2 = Temperature::from_kelvin(t.kelvin());
        prop_assert_eq!(t2, t);
    }

    #[test]
    fn temperature_delta_is_antisymmetric(a in 1.0..1000.0f64, b in 1.0..1000.0f64) {
        let ta = Temperature::from_kelvin(a);
        let tb = Temperature::from_kelvin(b);
        prop_assert_eq!(ta - tb, -(tb - ta));
        let rebuilt = ta + (tb - ta);
        prop_assert!((rebuilt.kelvin() - tb.kelvin()).abs() < 1e-9 * tb.kelvin());
    }

    #[test]
    fn power_addition_commutes(a in finite_positive(), b in finite_positive()) {
        let pa = Power::from_watts(a);
        let pb = Power::from_watts(b);
        prop_assert_eq!(pa + pb, pb + pa);
        prop_assert!(((pa + pb) - pb - pa).watts().abs() < 1e-6 * (a + b));
    }

    #[test]
    fn fan_power_monotone_in_omega(w1 in 0.0..1000.0f64, w2 in 0.0..1000.0f64) {
        prop_assume!(w1 < w2);
        let c = 1.6e-7;
        let p1 = AngularVelocity::from_rad_per_s(w1).fan_power(c);
        let p2 = AngularVelocity::from_rad_per_s(w2).fan_power(c);
        prop_assert!(p1 <= p2);
    }

    #[test]
    fn conductance_scales_linearly_with_area(
        k in 0.1..500.0f64,
        a in 1e-6..1e-2f64,
        l in 1e-6..1e-2f64,
        factor in 1.0..100.0f64,
    ) {
        let kv = ThermalConductivity::from_w_per_m_k(k);
        let g1 = kv.conductance(Area::from_square_meters(a), Length::from_meters(l));
        let g2 = kv.conductance(Area::from_square_meters(a * factor), Length::from_meters(l));
        prop_assert!((g2.w_per_k() / g1.w_per_k() - factor).abs() < 1e-9 * factor);
    }

    #[test]
    fn series_conductance_below_either(ga in 1e-6..1e3f64, gb in 1e-6..1e3f64) {
        let a = ThermalConductance::from_w_per_k(ga);
        let b = ThermalConductance::from_w_per_k(gb);
        let s = a.series(b);
        prop_assert!(s <= a && s <= b);
        // Symmetry.
        prop_assert!((s.w_per_k() - b.series(a).w_per_k()).abs() < 1e-12 * s.w_per_k().max(1.0));
    }

    #[test]
    fn joule_power_is_quadratic(i in 0.0..100.0f64, r in 1e-6..100.0f64) {
        let res = ElectricalResistance::from_ohms(r);
        let p1 = Current::from_amperes(i).joule_power(res);
        let p2 = Current::from_amperes(2.0 * i).joule_power(res);
        prop_assert!((p2.watts() - 4.0 * p1.watts()).abs() < 1e-9 * p2.watts().max(1.0));
    }

    #[test]
    fn peltier_power_is_bilinear(
        alpha in 1e-6..1e-2f64,
        t in 200.0..500.0f64,
        i in 0.0..10.0f64,
    ) {
        let a = SeebeckCoefficient::from_volts_per_kelvin(alpha);
        let p = a.peltier_power(Temperature::from_kelvin(t), Current::from_amperes(i));
        prop_assert!((p.watts() - alpha * t * i).abs() < 1e-9 * p.watts().abs().max(1.0));
    }

    #[test]
    fn heat_flow_sign_follows_delta(g in 1e-6..1e3f64, dt in -500.0..500.0f64) {
        let q = ThermalConductance::from_w_per_k(g)
            .heat_flow(TemperatureDelta::from_kelvin(dt));
        prop_assert_eq!(q.watts() > 0.0, dt > 0.0 && g > 0.0);
    }
}
