//! Connection-lifecycle regression tests for the sharded worker pool:
//! panic containment (and the gauge drop guard), worker-spawn-failure
//! resilience, and the bounded thread count under connection bursts.

mod common;

use common::{counter, counter_lock, envelope, field, is_ok, test_config, Conn, TestServer};
use oftec_serve::Server;
use std::time::{Duration, Instant};

fn health_field(conn: &mut Conn, name: &str) -> f64 {
    let resp = conn.request(r#"{"cmd":"health"}"#);
    let env = envelope(&resp);
    let result = field(&env, "result");
    field(result.as_map().expect("health payload"), name)
        .as_f64()
        .expect("numeric health field")
}

#[test]
fn panicking_connection_is_contained_and_gauge_restored() {
    let _guard = counter_lock();
    let mut config = test_config();
    config.panic_token = Some("BOOM".into());
    let server = TestServer::start(config);

    let mut probe = Conn::open(server.addr);
    let panics_before = counter(&probe.request(r#"{"cmd":"metrics"}"#), "serve.panics");

    // The poisoned connection dies; the server (and this probe
    // connection) must not.
    let mut victim = Conn::open(server.addr);
    victim.send("BOOM");
    // The worker drops the connection without a response: wait for EOF.
    victim.expect_closed();
    drop(victim);

    // The panic was observed and the `connections` gauge restored —
    // the old server leaked one gauge slot per panicking connection.
    let panics_after = counter(&probe.request(r#"{"cmd":"metrics"}"#), "serve.panics");
    assert!(
        panics_after > panics_before,
        "serve.panics must count the contained panic ({panics_before} -> {panics_after})"
    );
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let live = health_field(&mut probe, "connections");
        if (live - 1.0).abs() < f64::EPSILON {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "connections gauge stuck at {live}, expected 1 (the probe connection)"
        );
        std::thread::sleep(Duration::from_millis(5));
    }

    // The surviving server still solves.
    let resp = probe.request(r#"{"cmd":"steady","benchmark":"qsort","rpm":3000,"amps":1.0}"#);
    assert!(
        is_ok(&resp),
        "server must keep serving after a panic: {resp}"
    );
    server.stop();
}

#[test]
fn spawn_failures_lose_workers_not_the_server() {
    let _guard = counter_lock();
    let mut config = test_config();
    config.conn_workers = 3;
    config.fail_worker_spawns = 2;
    let server = TestServer::start(config);

    let mut conn = Conn::open(server.addr);
    let metrics = conn.request(r#"{"cmd":"metrics"}"#);
    assert!(
        counter(&metrics, "serve.worker_spawn_failures") >= 2,
        "failed spawns must be counted"
    );
    assert!((health_field(&mut conn, "workers") - 1.0).abs() < f64::EPSILON);

    // One worker is enough to serve every connection.
    let mut conns: Vec<Conn> = (0..4).map(|_| Conn::open(server.addr)).collect();
    for (i, c) in conns.iter_mut().enumerate() {
        c.send(&format!(
            r#"{{"cmd":"steady","id":{i},"benchmark":"qsort","rpm":3000,"amps":1.0}}"#
        ));
    }
    for c in &mut conns {
        assert!(is_ok(&c.recv()));
    }
    server.stop();
}

#[test]
fn total_spawn_failure_is_an_error_with_final_snapshot() {
    let dir = std::env::temp_dir().join("oftec_pool_test");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let snap_path = dir.join("total_spawn_failure.json");
    let _ = std::fs::remove_file(&snap_path);

    let mut config = test_config();
    config.conn_workers = 2;
    config.fail_worker_spawns = 2;
    config.telemetry_json = Some(snap_path.display().to_string());
    let server = Server::bind(config).expect("bind");
    // With zero workers the serve loop must not spin: it drains, writes
    // the snapshot, and reports the failure instead of pretending to run.
    let err = server.run().expect_err("an empty pool cannot serve");
    assert!(err.to_string().contains("no shard workers"), "got: {err}");
    let snap = std::fs::read_to_string(&snap_path).expect("final snapshot must still be written");
    assert!(snap.contains("serve.worker_spawn_failures"));
}

#[test]
fn worker_pool_bounds_threads_under_connection_burst() {
    let mut config = test_config();
    config.conn_workers = 2;
    let server = TestServer::start(config);

    // Far more connections than workers, all with a request in flight.
    let mut conns: Vec<Conn> = (0..16).map(|_| Conn::open(server.addr)).collect();
    for (i, c) in conns.iter_mut().enumerate() {
        c.send(&format!(
            r#"{{"cmd":"steady","id":{i},"benchmark":"qsort","rpm":{},"amps":1.0}}"#,
            2500 + 10 * i
        ));
    }
    for c in &mut conns {
        assert!(is_ok(&c.recv()), "every multiplexed connection is served");
    }

    let mut probe = Conn::open(server.addr);
    assert!((health_field(&mut probe, "workers") - 2.0).abs() < f64::EPSILON);

    // The whole point of the pool: connection count must not mint
    // threads. Count live serve-shard threads directly.
    #[cfg(target_os = "linux")]
    {
        let mut shard_threads = 0;
        for entry in std::fs::read_dir("/proc/self/task").expect("proc") {
            let comm = entry.expect("task").path().join("comm");
            if let Ok(name) = std::fs::read_to_string(comm) {
                if name.trim_end().starts_with("serve-shard") {
                    shard_threads += 1;
                }
            }
        }
        assert_eq!(
            shard_threads, 2,
            "17 connections must still be served by exactly 2 shard workers"
        );
    }
    server.stop();
}
