//! Observability-plane integration tests: response trace metadata, the
//! flight recorder's cross-thread-count determinism, probe/workload
//! counter separation, SLO monitors, and the breach-triggered dump —
//! all against real servers on loopback.

mod common;

use common::*;
use oftec::faults::FaultKind;
use oftec_serve::{FaultPlan, ServeConfig};
use serde::Value;

fn steady_line(rpm: f64, amps: f64, id: u64) -> String {
    format!(r#"{{"cmd":"steady","id":{id},"benchmark":"qsort","rpm":{rpm},"amps":{amps}}}"#)
}

/// The `trace` object from a response envelope.
fn trace_obj(line: &str) -> Vec<(String, Value)> {
    field(&envelope(line), "trace")
        .as_map()
        .expect("trace object")
        .to_vec()
}

/// Stage names present in a response's trace, in stamp order.
fn stage_names(line: &str) -> Vec<String> {
    field(&trace_obj(line), "stages")
        .as_map()
        .expect("stages map")
        .iter()
        .map(|(k, _)| k.trim_end_matches("_us").to_string())
        .collect()
}

fn trace_field_str(line: &str, key: &str) -> String {
    field(&trace_obj(line), key)
        .as_str()
        .expect("string trace field")
        .to_string()
}

#[test]
fn workload_responses_carry_trace_metadata() {
    let _guard = counter_lock();
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);

    // A solve miss walks the whole pipeline: every stage is stamped.
    let miss = conn.request(&steady_line(3100.0, 1.1, 1));
    assert!(is_ok(&miss), "solve must succeed: {miss}");
    let id = trace_field_str(&miss, "id");
    assert_eq!(id.len(), 16, "trace id is 16 hex chars: {id}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_eq!(
        stage_names(&miss),
        ["parse", "cache", "queue", "batch", "solve"],
        "miss path stamps all five stages: {miss}"
    );
    let outcome = trace_field_str(&miss, "outcome");
    assert!(
        ["reduced", "fallback", "full"].contains(&outcome.as_str()),
        "solved outcome names the solve path: {outcome}"
    );

    // A repeat is answered from the cache on the connection thread.
    let hit = conn.request(&steady_line(3100.0, 1.1, 2));
    assert!(cached_flag(&hit), "repeat must hit: {hit}");
    assert_eq!(trace_field_str(&hit, "outcome"), "cache_hit");
    assert_eq!(stage_names(&hit), ["parse", "cache"]);
    assert_ne!(
        trace_field_str(&hit, "id"),
        id,
        "each request gets its own trace id"
    );

    // Typed errors are traced too, with the cause as the outcome.
    let bad = conn.request(r#"{"cmd":"steady","benchmark":"doom"}"#);
    assert_eq!(error_kind(&bad), "unknown_benchmark");
    assert_eq!(trace_field_str(&bad, "outcome"), "parse");

    // Probes stay untraced: control-plane traffic is not a workload.
    let health = conn.request(r#"{"cmd":"health"}"#);
    assert!(field(&envelope(&health), "trace").as_map().is_none());

    // `result` stays the last envelope field even with a trace present
    // (the test helpers and downstream parsers rely on it).
    let result_pos = miss.find("\"result\":").expect("result field");
    let trace_pos = miss.find("\"trace\":").expect("trace field");
    assert!(trace_pos < result_pos, "trace precedes result: {miss}");
    server.stop();
}

/// The same single-connection request script must leave bit-identical
/// flight-recorder contents (durations redacted) at any executor width:
/// trace ids are (connection, sequence) hashes and stage/outcome
/// attribution never depends on scheduling.
#[test]
fn flight_recorder_is_deterministic_across_thread_counts() {
    let _guard = counter_lock();
    let run = |threads: usize| -> (Vec<String>, String) {
        let server = TestServer::start(ServeConfig {
            threads,
            ..test_config()
        });
        let mut conn = Conn::open(server.addr);
        let mut ids = Vec::new();
        // Miss, repeat (hit), a second point, malformed JSON, unknown
        // benchmark, an expired deadline: every outcome class the
        // pipeline can produce without fault injection.
        for req in [
            steady_line(2900.0, 0.9, 1),
            steady_line(2900.0, 0.9, 2),
            steady_line(3500.0, 1.7, 3),
            "{not json".to_string(),
            r#"{"cmd":"steady","id":4,"benchmark":"doom"}"#.to_string(),
            r#"{"cmd":"steady","id":5,"benchmark":"qsort","rpm":3000,"amps":1.0,"deadline_ms":0,"no_cache":true}"#
                .to_string(),
        ] {
            let resp = conn.request(&req);
            ids.push(trace_field_str(&resp, "id"));
        }
        let flight = conn.request(r#"{"cmd":"trace","limit":64,"redact":true}"#);
        assert!(is_ok(&flight), "trace endpoint answers: {flight}");
        let payload = result_json(&flight);
        server.stop();
        (ids, payload)
    };
    let (ids_1, flight_1) = run(1);
    let (ids_8, flight_8) = run(8);
    assert_eq!(ids_1, ids_8, "trace ids must not depend on OFTEC_THREADS");
    assert_eq!(
        flight_1, flight_8,
        "redacted flight-recorder contents must be bit-identical"
    );
    // The recorder actually saw the script: six records, errors retained.
    assert!(flight_1.contains("\"recorded\":6"), "{flight_1}");
    for outcome in ["cache_hit", "parse", "deadline"] {
        assert!(
            flight_1.contains(&format!("\"outcome\":\"{outcome}\"")),
            "flight recorder must retain a '{outcome}' record: {flight_1}"
        );
    }
}

/// `serve.responses_ok` must count workload responses exactly: probe
/// traffic (health/metrics/trace/slo) touches only `serve.probes`. This
/// pins the invariant that a load generator's metrics side channel can
/// never make the server's ok-count disagree with the client's.
#[test]
fn probes_never_touch_workload_response_counters() {
    let _guard = counter_lock();
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);
    let baseline = conn.request(r#"{"cmd":"metrics"}"#);
    let (ok0, err0, req0, probes0) = (
        counter(&baseline, "serve.responses_ok"),
        counter(&baseline, "serve.responses_err"),
        counter(&baseline, "serve.requests"),
        counter(&baseline, "serve.probes"),
    );
    // Probe flurry + exactly one workload request.
    conn.request(r#"{"cmd":"health"}"#);
    conn.request(r#"{"cmd":"metrics","format":"prometheus"}"#);
    conn.request(r#"{"cmd":"trace"}"#);
    conn.request(r#"{"cmd":"slo"}"#);
    let solve = conn.request(&steady_line(2750.0, 1.3, 9));
    assert!(is_ok(&solve));
    let after = conn.request(r#"{"cmd":"metrics"}"#);
    assert_eq!(
        counter(&after, "serve.responses_ok") - ok0,
        1,
        "exactly the one workload response counts as ok"
    );
    assert_eq!(counter(&after, "serve.responses_err") - err0, 0);
    assert_eq!(
        counter(&after, "serve.requests") - req0,
        1,
        "probes are not workload requests"
    );
    // The four probes plus the `after` metrics call itself (the baseline
    // call's increment is already inside the baseline reading).
    assert_eq!(counter(&after, "serve.probes") - probes0, 5);
    server.stop();
}

#[test]
fn slo_endpoint_reports_all_monitors_and_fault_bursts_breach() {
    let _guard = counter_lock();
    let server = TestServer::start(ServeConfig {
        fault: Some(FaultPlan {
            kind: FaultKind::Error,
            every: 1,
        }),
        flight_dump: Some(format!(
            "{}/oftec-flight-{}.jsonl",
            std::env::temp_dir().display(),
            std::process::id()
        )),
        ..test_config()
    });
    let mut conn = Conn::open(server.addr);

    // Quiet state: four monitors, none breached, none with enough data.
    let quiet = conn.request(r#"{"cmd":"slo"}"#);
    assert!(is_ok(&quiet), "slo endpoint answers: {quiet}");
    let monitors = |line: &str| -> Vec<Vec<(String, Value)>> {
        let result: Value = serde_json::from_str(&result_json(line)).expect("slo payload");
        field(result.as_map().expect("slo object"), "monitors")
            .as_seq()
            .expect("monitors array")
            .iter()
            .map(|m| m.as_map().expect("monitor object").to_vec())
            .collect()
    };
    let quiet_monitors = monitors(&quiet);
    let names: Vec<String> = quiet_monitors
        .iter()
        .map(|m| field(m, "name").as_str().expect("name").to_string())
        .collect();
    assert_eq!(
        names,
        [
            "serve.slo.shed_rate",
            "serve.slo.solver_error_rate",
            "serve.slo.fallback_rate",
            "serve.slo.residual_drift"
        ]
    );
    for m in &quiet_monitors {
        assert_eq!(field(m, "breached").as_bool(), Some(false));
    }

    // Every solve faults: after `min_count` responses the solver-error
    // monitor must breach, and the breach dumps the flight recorder.
    for i in 0..10u64 {
        let resp = conn.request(&format!(
            r#"{{"cmd":"steady","id":{i},"benchmark":"qsort","rpm":{},"amps":1.0,"no_cache":true}}"#,
            2400.0 + 10.0 * i as f64
        ));
        assert_eq!(error_kind(&resp), "thermal");
        assert_eq!(trace_field_str(&resp, "outcome"), "solver");
    }
    let burst_monitors = monitors(&conn.request(r#"{"cmd":"slo"}"#));
    let solver = burst_monitors
        .iter()
        .find(|m| field(m, "name").as_str() == Some("serve.slo.solver_error_rate"))
        .expect("solver monitor");
    assert_eq!(field(solver, "breached").as_bool(), Some(true));
    assert!(field(solver, "breaches").as_f64().unwrap_or(0.0) >= 1.0);
    assert!(field(solver, "mean").as_f64().unwrap_or(0.0) > 0.5);

    // The recorder retained the failures and the dump file exists.
    let flight = conn.request(r#"{"cmd":"trace","limit":16}"#);
    assert!(flight.contains("\"outcome\":\"solver\""), "{flight}");
    let dump = format!(
        "{}/oftec-flight-{}.jsonl",
        std::env::temp_dir().display(),
        std::process::id()
    );
    let dumped = std::fs::read_to_string(&dump).expect("flight dump written on breach");
    assert!(
        dumped.lines().any(|l| l.contains("\"ok\":false")),
        "dump holds the failing traces: {dumped}"
    );
    let _ = std::fs::remove_file(&dump);
    server.stop();
}
