//! Fault-injection coverage: a [`FaultyModel`] wired behind the server via
//! the `CoolingModel` trait. Injected NaNs, errors, and panics mid-batch
//! must yield typed error responses for the affected request while the
//! rest of the batch — and the server — survive.

mod common;

use common::*;
use oftec::faults::FaultKind;
use oftec_power::Benchmark;
use oftec_serve::{reference_payload, FaultPlan, ServeConfig, SolveKind, SolveSpec};
use oftec_thermal::PackageConfig;
use std::time::Duration;

fn faulty_config(kind: FaultKind, every: usize) -> ServeConfig {
    ServeConfig {
        fault: Some(FaultPlan { kind, every }),
        ..test_config()
    }
}

fn steady_line(rpm: f64, id: u64) -> String {
    format!(
        r#"{{"cmd":"steady","id":{id},"benchmark":"qsort","rpm":{rpm},"amps":1.2,"no_cache":true}}"#
    )
}

fn steady_reference(rpm: f64) -> String {
    let spec = SolveSpec {
        kind: SolveKind::Steady,
        benchmark: Benchmark::Quicksort,
        scale: 1.0,
        rpm,
        amps: 1.2,
        omega_points: 0,
        current_points: 0,
        no_cache: true,
        deadline_ms: None,
    };
    reference_payload(&PackageConfig::dac14_coarse(), &spec, None).expect("reference solve")
}

#[test]
fn every_third_solve_panics_deterministically_and_server_survives() {
    let _guard = counter_lock();
    let server = TestServer::start(faulty_config(FaultKind::Panic, 3));
    let mut conn = Conn::open(server.addr);
    let baseline = counter(&conn.request(r#"{"cmd":"metrics"}"#), "serve.panics");
    // Sequential requests → one executor item each → the fault sequence
    // is exactly 1..=9, so items 3, 6, 9 inject.
    let responses: Vec<(f64, String)> = (1..=9u64)
        .map(|i| {
            let rpm = 2000.0 + 100.0 * i as f64;
            (rpm, conn.request(&steady_line(rpm, i)))
        })
        .collect();
    for (i, (rpm, resp)) in responses.iter().enumerate() {
        let seq = i + 1;
        if seq % 3 == 0 {
            assert!(!is_ok(resp), "request {seq} must draw the panic: {resp}");
            assert_eq!(error_kind(resp), "panic");
        } else {
            assert!(is_ok(resp), "request {seq} must survive: {resp}");
            assert_eq!(
                result_json(resp),
                steady_reference(*rpm),
                "surviving request {seq} must be bit-identical to the direct solve"
            );
        }
    }
    // The panics were contained and counted; the server is still healthy.
    let metrics = conn.request(r#"{"cmd":"metrics"}"#);
    assert_eq!(counter(&metrics, "serve.panics") - baseline, 3);
    assert!(is_ok(&conn.request(r#"{"cmd":"health"}"#)));
    server.stop();
}

#[test]
fn panic_mid_batch_only_fails_the_affected_requests() {
    // A wide batch window coalesces the concurrent burst into shared
    // batches, so injected panics land mid-batch.
    let _guard = counter_lock();
    let server = TestServer::start(ServeConfig {
        batch_window: Duration::from_millis(25),
        batch_max: 16,
        ..faulty_config(FaultKind::Panic, 3)
    });
    let baseline = {
        let mut conn = Conn::open(server.addr);
        counter(&conn.request(r#"{"cmd":"metrics"}"#), "serve.panics")
    };
    let responses: Vec<(f64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (1..=9u64)
            .map(|i| {
                let addr = server.addr;
                scope.spawn(move || {
                    let rpm = 2000.0 + 100.0 * i as f64;
                    let mut conn = Conn::open(addr);
                    (rpm, conn.request(&steady_line(rpm, i)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    // Which request draws a fault depends on arrival order, but the draw
    // sequence itself is deterministic: exactly 3 of 9 items inject.
    let panics: Vec<_> = responses.iter().filter(|(_, r)| !is_ok(r)).collect();
    assert_eq!(
        panics.len(),
        3,
        "exactly every third item panics: {responses:?}"
    );
    for (_, resp) in &panics {
        assert_eq!(error_kind(resp), "panic");
    }
    for (rpm, resp) in responses.iter().filter(|(_, r)| is_ok(r)) {
        assert_eq!(
            result_json(resp),
            steady_reference(*rpm),
            "batch-mates of a panicking item must still be bit-identical"
        );
    }
    let mut conn = Conn::open(server.addr);
    let metrics = conn.request(r#"{"cmd":"metrics"}"#);
    assert_eq!(counter(&metrics, "serve.panics") - baseline, 3);
    server.stop();
}

#[test]
fn injected_errors_become_typed_thermal_responses() {
    let _guard = counter_lock();
    let server = TestServer::start(faulty_config(FaultKind::Error, 1));
    let mut conn = Conn::open(server.addr);
    let baseline = counter(&conn.request(r#"{"cmd":"metrics"}"#), "serve.panics");
    for i in 0..3u64 {
        let resp = conn.request(&steady_line(2500.0 + 50.0 * i as f64, i));
        assert!(!is_ok(&resp));
        assert_eq!(
            error_kind(&resp),
            "thermal",
            "injected Err surfaces as-is: {resp}"
        );
    }
    // Errors are not panics.
    let metrics = conn.request(r#"{"cmd":"metrics"}"#);
    assert_eq!(counter(&metrics, "serve.panics"), baseline);
    server.stop();
}

#[test]
fn injected_nan_is_screened_as_non_finite() {
    let server = TestServer::start(faulty_config(FaultKind::NonFinite, 1));
    let mut conn = Conn::open(server.addr);
    let resp = conn.request(&steady_line(2800.0, 1));
    assert!(!is_ok(&resp));
    assert_eq!(
        error_kind(&resp),
        "non_finite",
        "poisoned solutions must never serialize as results: {resp}"
    );
    // The connection and server outlive the poisoned solve.
    assert!(is_ok(&conn.request(r#"{"cmd":"health"}"#)));
    server.stop();
}
