//! Dual-wire integration tests: the binary frame format must carry the
//! exact same envelopes as NDJSON — byte-identical `result` payloads,
//! the same typed errors — and both formats must interleave freely on a
//! single connection, at any thread count.

mod common;

use common::{envelope, error_kind, field, is_ok, result_json, test_config, Conn, TestServer};
use oftec_power::Benchmark;
use oftec_serve::wire;
use oftec_serve::{SolveKind, SolveSpec};

fn steady_spec(rpm: f64, amps: f64, no_cache: bool) -> SolveSpec {
    SolveSpec {
        kind: SolveKind::Steady,
        benchmark: Benchmark::Quicksort,
        scale: 1.0,
        rpm,
        amps,
        omega_points: 0,
        current_points: 0,
        no_cache,
        deadline_ms: None,
    }
}

fn sweep_spec(omega: usize, current: usize) -> SolveSpec {
    SolveSpec {
        kind: SolveKind::Sweep,
        benchmark: Benchmark::Quicksort,
        scale: 1.0,
        rpm: 0.0,
        amps: 0.0,
        omega_points: omega,
        current_points: current,
        no_cache: true,
        deadline_ms: None,
    }
}

#[test]
fn binary_and_ndjson_solve_results_are_byte_identical() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);

    // Both wires solve fresh (no_cache), so equality means the solve
    // pipeline itself is wire-agnostic — not just the cache replay.
    let nd = conn.request(
        r#"{"cmd":"steady","id":7,"benchmark":"qsort","rpm":3000,"amps":1.0,"no_cache":true}"#,
    );
    assert!(is_ok(&nd), "ndjson steady failed: {nd}");
    let frame = wire::encode_solve_frame(Some(7), &steady_spec(3000.0, 1.0, true));
    let bin = conn.request_frame(&frame);
    assert!(is_ok(&bin), "binary steady failed: {bin}");
    assert_eq!(
        result_json(&nd),
        result_json(&bin),
        "steady results must be byte-identical across wires"
    );

    let nd = conn.request(
        r#"{"cmd":"sweep","id":8,"benchmark":"qsort","omega_points":3,"current_points":3,"no_cache":true}"#,
    );
    let bin = conn.request_frame(&wire::encode_solve_frame(Some(8), &sweep_spec(3, 3)));
    assert!(is_ok(&nd) && is_ok(&bin));
    assert_eq!(
        result_json(&nd),
        result_json(&bin),
        "sweep results must be byte-identical across wires"
    );

    // The id echoes back on both wires.
    assert_eq!(field(&envelope(&bin), "id").as_f64(), Some(8.0));
    conn.send("{\"cmd\":\"shutdown\"}");
    server.stop();
}

#[test]
fn wires_interleave_on_one_connection() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);

    // NDJSON, then binary, then NDJSON again — responses come back in
    // order, each on its request's wire.
    let nd1 = conn.request(r#"{"cmd":"steady","id":1,"benchmark":"qsort","rpm":2600,"amps":0.8}"#);
    assert!(is_ok(&nd1));
    let bin = conn.request_frame(&wire::encode_solve_frame(
        Some(2),
        &steady_spec(2600.0, 0.8, false),
    ));
    assert!(is_ok(&bin));
    // Same operating point: the binary request must hit the cache the
    // NDJSON request populated, with the identical payload bytes.
    assert_eq!(
        field(&envelope(&bin), "cached").as_bool(),
        Some(true),
        "binary request must share the NDJSON-populated cache"
    );
    assert_eq!(result_json(&nd1), result_json(&bin));
    let health = conn.request(r#"{"cmd":"health"}"#);
    assert!(is_ok(&health));

    // Binary probes work too.
    let bin_health = conn.request_frame(&wire::encode_probe_frame(wire::CMD_HEALTH, Some(9)));
    assert!(is_ok(&bin_health));
    server.stop();
}

#[test]
fn oversized_and_malformed_frames_are_typed_and_recoverable() {
    let mut config = test_config();
    config.max_line_bytes = 4096;
    let server = TestServer::start(config);
    let mut conn = Conn::open(server.addr);

    // A frame announcing a body over the cap: typed error, body bytes
    // discarded, connection stays usable.
    let body_len: u32 = 10_000;
    let mut oversized = vec![wire::FRAME_MAGIC, wire::FRAME_VERSION];
    oversized.extend_from_slice(&body_len.to_le_bytes());
    oversized.extend(std::iter::repeat_n(0xAA, body_len as usize));
    conn.send_frame(&oversized);
    let resp = conn.recv_frame();
    assert_eq!(error_kind(&resp), "frame_too_long");

    // A well-formed header with a corrupt body (nonzero reserved byte).
    let mut frame = wire::encode_solve_frame(None, &steady_spec(3000.0, 1.0, true));
    frame[wire::FRAME_HEADER_LEN + 3] = 0x5A;
    let resp = conn.request_frame(&frame);
    assert_eq!(error_kind(&resp), "bad_frame");

    // An unknown benchmark index.
    let mut frame = wire::encode_solve_frame(None, &steady_spec(3000.0, 1.0, true));
    frame[wire::FRAME_HEADER_LEN + 2] = 255;
    let resp = conn.request_frame(&frame);
    assert_eq!(error_kind(&resp), "unknown_benchmark");

    // After all that, a clean request still solves.
    let ok = conn.request_frame(&wire::encode_solve_frame(
        None,
        &steady_spec(3000.0, 1.0, false),
    ));
    assert!(is_ok(&ok), "connection must recover: {ok}");
    server.stop();
}

#[test]
fn unsupported_frame_version_answers_then_closes() {
    use std::io::{Read, Write};
    let server = TestServer::start(test_config());
    let stream = std::net::TcpStream::connect(server.addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    let mut stream = stream;

    // Version 9 frames cannot be resynchronized (the length field's
    // layout is unknown), so the server answers `bad_frame` and closes.
    let header = [wire::FRAME_MAGIC, 9, 4, 0, 0, 0];
    stream.write_all(&header).expect("write header");
    let mut reply = [0u8; 6];
    stream.read_exact(&mut reply).expect("error frame header");
    assert_eq!(reply[0], wire::FRAME_MAGIC);
    assert_eq!(reply[1], wire::FRAME_VERSION);
    let len = u32::from_le_bytes([reply[2], reply[3], reply[4], reply[5]]) as usize;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body).expect("error frame body");
    let body = String::from_utf8(body).expect("utf8");
    assert_eq!(error_kind(&body), "bad_frame");

    // Then EOF: the stream cannot be trusted past this point.
    let mut probe = [0u8; 1];
    let n = stream.read(&mut probe).expect("post-error read");
    assert_eq!(n, 0, "server must close after an unframeable stream");
    server.stop();
}

#[test]
fn binary_results_do_not_depend_on_thread_count() {
    let mut results = Vec::new();
    for threads in [1, 4] {
        let mut config = test_config();
        config.threads = threads;
        let server = TestServer::start(config);
        let mut conn = Conn::open(server.addr);
        let resp = conn.request_frame(&wire::encode_solve_frame(
            Some(1),
            &steady_spec(3200.0, 1.2, true),
        ));
        assert!(is_ok(&resp));
        results.push(result_json(&resp));
        server.stop();
    }
    assert_eq!(
        results[0], results[1],
        "binary results must be identical at any OFTEC_THREADS"
    );
}
