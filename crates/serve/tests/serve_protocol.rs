//! Protocol and serving-behavior integration tests: framing, typed
//! errors, bit-identical batching, caching, admission control, deadlines,
//! and graceful drain — all against a real server on loopback.

mod common;

use common::*;
use oftec_power::Benchmark;
use oftec_serve::{protocol, reference_payload, ServeConfig, SolveKind, SolveSpec};
use oftec_thermal::PackageConfig;
use std::time::Duration;

fn steady_spec(rpm: f64, amps: f64, no_cache: bool) -> SolveSpec {
    SolveSpec {
        kind: SolveKind::Steady,
        benchmark: Benchmark::Quicksort,
        scale: 1.0,
        rpm,
        amps,
        omega_points: 0,
        current_points: 0,
        no_cache,
        deadline_ms: None,
    }
}

fn steady_line(rpm: f64, amps: f64, id: u64) -> String {
    format!(r#"{{"cmd":"steady","id":{id},"benchmark":"qsort","rpm":{rpm},"amps":{amps}}}"#)
}

#[test]
fn framing_errors_are_typed_and_recoverable() {
    let server = TestServer::start(ServeConfig {
        max_line_bytes: 256,
        ..test_config()
    });
    let mut conn = Conn::open(server.addr);

    // Malformed JSON → typed error, connection stays up.
    let resp = conn.request("this is not json");
    assert!(!is_ok(&resp));
    assert_eq!(error_kind(&resp), "bad_request");

    // Wrong shape → typed error.
    let resp = conn.request("[1,2,3]");
    assert_eq!(error_kind(&resp), "bad_request");

    // Unknown benchmark → typed error carrying the request id.
    let resp = conn.request(r#"{"cmd":"steady","id":42,"benchmark":"doom"}"#);
    assert_eq!(error_kind(&resp), "unknown_benchmark");
    assert_eq!(field(&envelope(&resp), "id").as_f64(), Some(42.0));

    // Oversized line → line_too_long, then the connection still works.
    let huge = format!(
        r#"{{"cmd":"steady","benchmark":"qsort","pad":"{}"}}"#,
        "x".repeat(512)
    );
    let resp = conn.request(&huge);
    assert_eq!(error_kind(&resp), "line_too_long");

    // Blank lines are ignored; a valid request after all that succeeds.
    conn.write_raw(b"\n\n");
    let resp = conn.request(r#"{"cmd":"health","id":7}"#);
    assert!(is_ok(&resp), "healthy after garbage: {resp}");
    assert_eq!(field(&envelope(&resp), "id").as_f64(), Some(7.0));
    server.stop();
}

#[test]
fn fragmented_writes_reassemble_into_requests() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);
    let line = steady_line(3000.0, 1.5, 1);
    let bytes = line.as_bytes();
    // Dribble the request across several TCP segments.
    let (a, rest) = bytes.split_at(5);
    let (b, c) = rest.split_at(rest.len() / 2);
    conn.write_raw(a);
    std::thread::sleep(Duration::from_millis(20));
    conn.write_raw(b);
    std::thread::sleep(Duration::from_millis(20));
    conn.write_raw(c);
    conn.write_raw(b"\n");
    let resp = conn.recv();
    assert!(is_ok(&resp), "fragmented request must solve: {resp}");

    // Two requests in a single write → two responses.
    let two = format!(
        "{}\n{}\n",
        steady_line(3000.0, 1.5, 2),
        r#"{"cmd":"health"}"#
    );
    conn.write_raw(two.as_bytes());
    assert!(is_ok(&conn.recv()));
    assert!(is_ok(&conn.recv()));
    server.stop();
}

#[test]
fn batched_responses_match_direct_library_solves() {
    let server = TestServer::start(ServeConfig {
        threads: 4,
        ..test_config()
    });
    // Several distinct on-grid operating points, sent concurrently so
    // they land in batches.
    let points: Vec<(f64, f64)> = (0..6)
        .map(|i| (2400.0 + 300.0 * i as f64, 0.5 + 0.25 * i as f64))
        .collect();
    let responses: Vec<(f64, f64, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> = points
            .iter()
            .enumerate()
            .map(|(i, &(rpm, amps))| {
                let addr = server.addr;
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    (rpm, amps, conn.request(&steady_line(rpm, amps, i as u64)))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let package = PackageConfig::dac14_coarse();
    for (rpm, amps, resp) in responses {
        assert!(is_ok(&resp), "({rpm}, {amps}) must solve: {resp}");
        let expected = reference_payload(&package, &steady_spec(rpm, amps, false), None)
            .expect("reference solve");
        assert_eq!(
            result_json(&resp),
            expected,
            "batched response must be bit-identical to the direct solve at ({rpm}, {amps})"
        );
    }
    server.stop();
}

#[test]
fn thread_count_does_not_change_responses() {
    let run = |threads: usize| -> Vec<String> {
        let server = TestServer::start(ServeConfig {
            threads,
            ..test_config()
        });
        let mut conn = Conn::open(server.addr);
        let out = (0..4)
            .map(|i| {
                let resp = conn.request(&steady_line(2600.0 + 250.0 * i as f64, 1.0, i as u64));
                result_json(&resp)
            })
            .collect();
        server.stop();
        out
    };
    assert_eq!(run(1), run(4), "payloads must not depend on OFTEC_THREADS");
}

#[test]
fn repeat_requests_hit_the_cache_with_identical_payloads() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);
    let first = conn.request(&steady_line(3000.0, 1.5, 1));
    assert!(is_ok(&first) && !cached_flag(&first));
    let second = conn.request(&steady_line(3000.0, 1.5, 2));
    assert!(
        is_ok(&second) && cached_flag(&second),
        "repeat must hit: {second}"
    );
    assert_eq!(result_json(&first), result_json(&second));

    // A sub-grid perturbation lands on the same quantized key.
    let third = conn.request(&steady_line(3000.3, 1.502, 3));
    assert!(cached_flag(&third), "within-grid request must hit: {third}");
    assert_eq!(result_json(&first), result_json(&third));

    // The metrics endpoint sees the hits.
    let metrics = conn.request(r#"{"cmd":"metrics"}"#);
    assert!(counter(&metrics, "serve.cache.hits") >= 2);
    assert_eq!(counter(&metrics, "serve.panics"), 0);
    server.stop();
}

#[test]
fn overload_rejections_are_explicit() {
    // Tiny queue, one job per batch: a concurrent burst must overflow.
    let server = TestServer::start(ServeConfig {
        queue_capacity: 1,
        batch_max: 1,
        batch_window: Duration::from_millis(0),
        ..test_config()
    });
    let responses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..12)
            .map(|i| {
                let addr = server.addr;
                scope.spawn(move || {
                    let mut conn = Conn::open(addr);
                    // Sweeps keep the dispatcher busy long enough for the
                    // burst to pile up; no_cache defeats dedup.
                    conn.request(&format!(
                        r#"{{"cmd":"sweep","id":{i},"benchmark":"qsort","omega_points":6,"current_points":5,"no_cache":true}}"#
                    ))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("worker"))
            .collect()
    });
    let overloaded = responses
        .iter()
        .filter(|r| !is_ok(r) && error_kind(r) == "overloaded")
        .count();
    let solved = responses.iter().filter(|r| is_ok(r)).count();
    assert!(
        overloaded > 0,
        "burst must trip admission control: {responses:?}"
    );
    assert!(solved > 0, "admitted requests must still solve");
    assert_eq!(overloaded + solved, responses.len(), "all outcomes typed");
    server.stop();
}

#[test]
fn expired_deadlines_get_typed_rejections() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);
    let resp = conn.request(
        r#"{"cmd":"steady","benchmark":"qsort","rpm":3000,"amps":1.5,"deadline_ms":0,"no_cache":true}"#,
    );
    assert!(!is_ok(&resp));
    assert_eq!(error_kind(&resp), "deadline_exceeded");
    // The server is still healthy afterwards.
    assert!(is_ok(&conn.request(r#"{"cmd":"health"}"#)));
    server.stop();
}

#[test]
fn shutdown_drains_in_flight_requests() {
    let server = TestServer::start(ServeConfig {
        batch_window: Duration::from_millis(50),
        ..test_config()
    });
    // Park a slow request, then request shutdown from another connection
    // while it is still in flight.
    let addr = server.addr;
    let slow = std::thread::spawn(move || {
        let mut conn = Conn::open(addr);
        conn.request(
            r#"{"cmd":"sweep","id":1,"benchmark":"qsort","omega_points":8,"current_points":6,"no_cache":true}"#,
        )
    });
    std::thread::sleep(Duration::from_millis(10));
    let mut conn = Conn::open(addr);
    let ack = conn.request(r#"{"cmd":"shutdown","id":2}"#);
    assert!(is_ok(&ack), "shutdown must be acknowledged: {ack}");
    // The in-flight sweep still gets its full answer.
    let slow_resp = slow.join().expect("slow requester");
    assert!(
        is_ok(&slow_resp),
        "drain must answer in-flight work: {slow_resp}"
    );
    // And the serve loop exits cleanly.
    server.stop();
}

#[test]
fn optimize_and_sweep_roundtrip_through_the_protocol() {
    let server = TestServer::start(test_config());
    let mut conn = Conn::open(server.addr);
    let resp = conn.request(r#"{"cmd":"optimize","id":5,"benchmark":"CRC32"}"#);
    assert!(is_ok(&resp), "optimize must succeed: {resp}");
    let payload = result_json(&resp);
    let expected = reference_payload(
        &PackageConfig::dac14_coarse(),
        &SolveSpec {
            kind: SolveKind::Optimize,
            benchmark: Benchmark::Crc32,
            scale: 1.0,
            rpm: 0.0,
            amps: 0.0,
            omega_points: 0,
            current_points: 0,
            no_cache: false,
            deadline_ms: None,
        },
        None,
    )
    .expect("reference optimize");
    assert_eq!(payload, expected);

    let resp = conn.request(
        r#"{"cmd":"sweep","id":6,"benchmark":"CRC32","omega_points":4,"current_points":4}"#,
    );
    assert!(is_ok(&resp), "sweep must succeed: {resp}");
    // 4×4 grid → 16 samples on the wire.
    let samples = serde_json::from_str::<serde::Value>(&result_json(&resp))
        .ok()
        .and_then(|v| {
            v.as_map().and_then(|m| {
                m.iter()
                    .find(|(k, _)| k == "samples")
                    .map(|(_, s)| s.clone())
            })
        })
        .and_then(|s| s.as_seq().map(<[serde::Value]>::len))
        .expect("samples array");
    assert_eq!(samples, 16);
    server.stop();
}

#[test]
fn protocol_envelope_helpers_are_inverse() {
    // ok_line/err_line splice payloads verbatim; result_json recovers it.
    let line = protocol::ok_line(Some(9), false, r#"{"a":1,"b":[2,3]}"#);
    assert_eq!(result_json(&line), r#"{"a":1,"b":[2,3]}"#);
}
