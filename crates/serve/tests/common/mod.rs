//! Shared harness for the serve integration tests: boot a real server on
//! an ephemeral loopback port, speak the line protocol over TCP, and
//! pull fields back out of response envelopes.

// Each test binary compiles this module independently and uses a
// different subset of the helpers.
#![allow(dead_code)]

use oftec_serve::{CacheConfig, ServeConfig, Server, ServerHandle};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// A fast-solving test configuration: coarse package, ephemeral port.
pub fn test_config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        coarse: true,
        threads: 2,
        read_timeout: Duration::from_millis(10),
        batch_window: Duration::from_millis(2),
        cache: CacheConfig::default(),
        ..ServeConfig::default()
    }
}

pub struct TestServer {
    pub addr: SocketAddr,
    pub handle: ServerHandle,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl TestServer {
    pub fn start(config: ServeConfig) -> Self {
        let server = Server::bind(config).expect("bind test server");
        let addr = server.local_addr();
        let handle = server.handle();
        let thread = std::thread::spawn(move || server.run());
        Self {
            addr,
            handle,
            thread: Some(thread),
        }
    }

    /// Graceful shutdown; panics if the serve loop errored.
    pub fn stop(mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            t.join().expect("server thread").expect("server run");
        }
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        self.handle.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// One protocol connection.
pub struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Conn {
    pub fn open(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        Self {
            reader: BufReader::new(stream.try_clone().expect("clone")),
            writer: stream,
        }
    }

    pub fn send(&mut self, line: &str) {
        self.writer.write_all(line.as_bytes()).expect("write");
        self.writer.write_all(b"\n").expect("write newline");
    }

    pub fn recv(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Round trip: send one request line, read one response line.
    pub fn request(&mut self, line: &str) -> String {
        self.send(line);
        self.recv()
    }

    /// Raw byte write without framing (for fragmentation tests).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("raw write");
        self.writer.flush().expect("raw flush");
    }

    /// Sends one binary frame (already encoded header + body).
    pub fn send_frame(&mut self, frame: &[u8]) {
        self.writer.write_all(frame).expect("frame write");
        self.writer.flush().expect("frame flush");
    }

    /// Reads one binary response frame and returns its JSON body.
    pub fn recv_frame(&mut self) -> String {
        use std::io::Read;
        let mut header = [0u8; 6];
        self.reader.read_exact(&mut header).expect("frame header");
        assert_eq!(header[0], 0x00, "frame magic");
        assert_eq!(header[1], 1, "frame version");
        let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
        let mut body = vec![0u8; len];
        self.reader.read_exact(&mut body).expect("frame body");
        String::from_utf8(body).expect("frame body utf8")
    }

    /// Round trip on the binary wire: one request frame, one response
    /// frame's JSON body.
    pub fn request_frame(&mut self, frame: &[u8]) -> String {
        self.send_frame(frame);
        self.recv_frame()
    }

    /// Blocks until the server closes this connection (EOF or reset);
    /// panics if a response arrives instead.
    pub fn expect_closed(&mut self) {
        use std::io::Read;
        let mut byte = [0u8; 1];
        match self.reader.read(&mut byte) {
            Ok(0) | Err(_) => {}
            Ok(_) => panic!("expected the server to close the connection"),
        }
    }
}

/// Parses a response line and returns the envelope map.
pub fn envelope(line: &str) -> Vec<(String, Value)> {
    let v: Value = serde_json::from_str(line)
        .unwrap_or_else(|e| panic!("unparseable response `{line}`: {e:?}"));
    v.as_map().expect("response must be an object").to_vec()
}

pub fn field(map: &[(String, Value)], key: &str) -> Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .unwrap_or(Value::Null)
}

pub fn is_ok(line: &str) -> bool {
    field(&envelope(line), "ok").as_bool() == Some(true)
}

pub fn error_kind(line: &str) -> String {
    let env = envelope(line);
    let err = field(&env, "error");
    let map = err.as_map().expect("error body");
    field(map, "kind").as_str().expect("error kind").to_string()
}

/// The `cached` envelope flag.
pub fn cached_flag(line: &str) -> bool {
    field(&envelope(line), "cached").as_bool() == Some(true)
}

/// The serialized `result` payload exactly as sent on the wire (substring
/// between `"result":` and the closing envelope brace).
pub fn result_json(line: &str) -> String {
    let marker = "\"result\":";
    let start = line.find(marker).expect("result field") + marker.len();
    let end = line.len() - 1; // envelope's closing '}'
    line[start..end].to_string()
}

/// Serializes tests that assert on global telemetry counters: the
/// counters are process-wide statics, so concurrent tests would see each
/// other's increments. Assert *deltas* against a baseline while holding
/// this guard.
pub fn counter_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Counter value from a `metrics` response (0 when absent).
pub fn counter(metrics_line: &str, name: &str) -> u64 {
    let env = envelope(metrics_line);
    let result = field(&env, "result");
    let counters = field(result.as_map().expect("metrics result"), "counters");
    field(counters.as_map().expect("counters map"), name)
        .as_f64()
        .map(|v| v as u64)
        .unwrap_or(0)
}
