//! Quantized LRU result cache.
//!
//! Keys are the solve kind plus the operating point and workload scale
//! rounded onto a configurable grid, so requests that differ by less
//! than the grid pitch share one entry (a control loop dithering around
//! 3000.2/2999.8 RPM hits the same cached solve). Values are the
//! serialized result payloads verbatim — a hit replays the exact bytes
//! of the original response, keeping repeats bit-identical.
//!
//! Eviction is capacity-LRU with optional TTL, implemented with a lazy
//! recency queue: each touch appends a `(seq, key)` marker and only the
//! newest marker per key is live, so `get`/`insert` stay O(1) amortized
//! without an intrusive list. Hit/miss/eviction/expiry counts feed the
//! telemetry registry.
//!
//! The store is **sharded**: keys hash (deterministically — no per-process
//! randomness, so shard placement is reproducible) onto one of
//! [`CacheConfig::shards`] independent LRU partitions, each behind its own
//! lock. Connections on different shard workers stop contending on one
//! global mutex; LRU order becomes per-shard (approximate global LRU),
//! which changes nothing about hit payloads — only which entry is evicted
//! under capacity pressure.

use crate::protocol::{SolveKind, SolveSpec};
use oftec_power::Benchmark;
use oftec_telemetry::Counter;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

pub static CACHE_HITS: Counter = Counter::new("serve.cache.hits");
pub static CACHE_MISSES: Counter = Counter::new("serve.cache.misses");
pub static CACHE_EVICTIONS: Counter = Counter::new("serve.cache.evictions");
pub static CACHE_EXPIRED: Counter = Counter::new("serve.cache.expired");

/// Quantization grids and eviction limits.
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Maximum live entries (summed across shards); 0 disables the cache
    /// entirely.
    pub capacity: usize,
    /// Entry lifetime; `None` = never expires.
    pub ttl: Option<Duration>,
    /// Fan-speed grid pitch in RPM.
    pub rpm_grid: f64,
    /// TEC-current grid pitch in amperes.
    pub amps_grid: f64,
    /// Workload-scale grid pitch.
    pub scale_grid: f64,
    /// Lock shards; rounded up to a power of two, minimum 1. With 1 shard
    /// eviction is exact global LRU; with more it is per-shard LRU.
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            capacity: 1024,
            ttl: None,
            rpm_grid: 1.0,
            amps_grid: 0.01,
            scale_grid: 1e-3,
            shards: 8,
        }
    }
}

fn quantize(v: f64, grid: f64) -> i64 {
    if grid > 0.0 {
        (v / grid).round() as i64
    } else {
        v.to_bits() as i64
    }
}

/// A fully quantized lookup key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    kind: SolveKind,
    benchmark: Benchmark,
    scale_q: i64,
    rpm_q: i64,
    amps_q: i64,
    omega_points: usize,
    current_points: usize,
}

impl CacheKey {
    /// Quantizes a solve spec onto the cache grid.
    pub fn for_spec(spec: &SolveSpec, cfg: &CacheConfig) -> Self {
        Self {
            kind: spec.kind,
            benchmark: spec.benchmark,
            scale_q: quantize(spec.scale, cfg.scale_grid),
            rpm_q: quantize(spec.rpm, cfg.rpm_grid),
            amps_q: quantize(spec.amps, cfg.amps_grid),
            omega_points: spec.omega_points,
            current_points: spec.current_points,
        }
    }

    /// The canonical (de-quantized) workload scale this key represents.
    /// Solving at the canonical scale — not the request's raw scale —
    /// makes every request that maps to this key receive bit-identical
    /// results whether it hit the cache or triggered the solve.
    pub fn canonical_scale(&self, cfg: &CacheConfig) -> f64 {
        if cfg.scale_grid > 0.0 {
            self.scale_q as f64 * cfg.scale_grid
        } else {
            f64::from_bits(self.scale_q as u64)
        }
    }

    /// Canonical fan speed in RPM (see [`CacheKey::canonical_scale`]).
    pub fn canonical_rpm(&self, cfg: &CacheConfig) -> f64 {
        if cfg.rpm_grid > 0.0 {
            self.rpm_q as f64 * cfg.rpm_grid
        } else {
            f64::from_bits(self.rpm_q as u64)
        }
    }

    /// Canonical TEC current in amperes.
    pub fn canonical_amps(&self, cfg: &CacheConfig) -> f64 {
        if cfg.amps_grid > 0.0 {
            self.amps_q as f64 * cfg.amps_grid
        } else {
            f64::from_bits(self.amps_q as u64)
        }
    }
}

struct Entry {
    payload: String,
    inserted: Instant,
    /// Sequence number of this key's newest recency marker.
    touched: u64,
}

struct Inner {
    /// Ordered map: iteration order is the key order, not hasher state,
    /// keeping every walk over the store deterministic (L008).
    map: BTreeMap<CacheKey, Entry>,
    /// Recency markers, oldest first. Stale markers (seq != entry.touched)
    /// are skipped during eviction and compaction.
    order: VecDeque<(u64, CacheKey)>,
    seq: u64,
}

/// The shared cache. All methods take `&self`; a poisoned lock is
/// recovered (cache state is a plain map — no invariant outlives a
/// panicking accessor).
pub struct QuantizedCache {
    cfg: CacheConfig,
    /// Power-of-two shard count minus one, for masking the key hash.
    shard_mask: usize,
    /// Per-entry capacity of each shard (total capacity split evenly).
    shard_capacity: usize,
    shards: Box<[Mutex<Inner>]>,
}

impl QuantizedCache {
    pub fn new(cfg: CacheConfig) -> Self {
        let nshards = cfg.shards.max(1).next_power_of_two();
        let shards = (0..nshards)
            .map(|_| {
                Mutex::new(Inner {
                    map: BTreeMap::new(),
                    order: VecDeque::new(),
                    seq: 0,
                })
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Self {
            shard_mask: nshards - 1,
            shard_capacity: cfg.capacity.div_ceil(nshards),
            cfg,
            shards,
        }
    }

    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    // oftec-lint: hot
    pub fn key_for(&self, spec: &SolveSpec) -> CacheKey {
        CacheKey::for_spec(spec, &self.cfg)
    }

    /// Which shard a key lives on. `DefaultHasher::new()` uses fixed keys,
    /// so placement is identical across processes and runs — required for
    /// the serve determinism contract (eviction patterns, and therefore
    /// hit/miss sequences under capacity pressure, must not depend on
    /// process-random hash seeds).
    // oftec-lint: hot
    fn shard_of(&self, key: &CacheKey) -> usize {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) & self.shard_mask
    }

    /// Looks `key` up, refreshing its recency on a hit. Expired entries
    /// count as misses (and are removed). Returns the payload JSON.
    pub fn get(&self, key: &CacheKey) -> Option<String> {
        self.lookup(key, true)
    }

    /// [`QuantizedCache::get`] without touching the hit/miss counters —
    /// the dispatcher's re-check after dequeue uses this so the
    /// request-level hit rate reflects connection-thread lookups only.
    pub fn peek(&self, key: &CacheKey) -> Option<String> {
        self.lookup(key, false)
    }

    fn lookup(&self, key: &CacheKey, count: bool) -> Option<String> {
        if self.cfg.capacity == 0 {
            if count {
                CACHE_MISSES.add(1);
            }
            return None;
        }
        let mut inner = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let expired = match inner.map.get(key) {
            None => {
                if count {
                    CACHE_MISSES.add(1);
                }
                return None;
            }
            Some(e) => self.cfg.ttl.is_some_and(|ttl| e.inserted.elapsed() >= ttl),
        };
        if expired {
            inner.map.remove(key);
            CACHE_EXPIRED.add(1);
            if count {
                CACHE_MISSES.add(1);
            }
            return None;
        }
        let seq = inner.seq;
        inner.seq += 1;
        inner.order.push_back((seq, *key));
        // Present: checked above, under the same lock.
        let payload = match inner.map.get_mut(key) {
            Some(entry) => {
                entry.touched = seq;
                entry.payload.clone()
            }
            None => return None,
        };
        if count {
            CACHE_HITS.add(1);
        }
        Self::maybe_compact(&mut inner);
        Some(payload)
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used entries
    /// beyond capacity.
    pub fn insert(&self, key: CacheKey, payload: String) {
        if self.cfg.capacity == 0 {
            return;
        }
        let mut inner = self.shards[self.shard_of(&key)]
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let seq = inner.seq;
        inner.seq += 1;
        inner.order.push_back((seq, key));
        inner.map.insert(
            key,
            Entry {
                payload,
                inserted: Instant::now(),
                touched: seq,
            },
        );
        while inner.map.len() > self.shard_capacity {
            match inner.order.pop_front() {
                Some((marker_seq, old_key)) => {
                    // Only a key's newest marker is live; skip stale ones.
                    if inner
                        .map
                        .get(&old_key)
                        .is_some_and(|e| e.touched == marker_seq)
                    {
                        inner.map.remove(&old_key);
                        CACHE_EVICTIONS.add(1);
                    }
                }
                None => break,
            }
        }
        Self::maybe_compact(&mut inner);
    }

    /// Live entry count (expired-but-unvisited entries included), summed
    /// across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(PoisonError::into_inner).map.len())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops stale recency markers once they dominate the queue.
    fn maybe_compact(inner: &mut Inner) {
        if inner.order.len() > 2 * inner.map.len() + 16 {
            let map = &inner.map;
            inner
                .order
                .retain(|(seq, key)| map.get(key).is_some_and(|e| e.touched == *seq));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SolveKind;

    fn spec(rpm: f64, amps: f64) -> SolveSpec {
        SolveSpec {
            kind: SolveKind::Steady,
            benchmark: Benchmark::Quicksort,
            scale: 1.0,
            rpm,
            amps,
            omega_points: 0,
            current_points: 0,
            no_cache: false,
            deadline_ms: None,
        }
    }

    /// Single-shard cache: exact global LRU, so eviction-order tests stay
    /// deterministic regardless of key-to-shard placement.
    fn cache(capacity: usize, ttl: Option<Duration>) -> QuantizedCache {
        QuantizedCache::new(CacheConfig {
            capacity,
            ttl,
            shards: 1,
            ..CacheConfig::default()
        })
    }

    #[test]
    fn quantization_collides_nearby_points() {
        let c = cache(8, None);
        // Sub-grid perturbations share a key...
        assert_eq!(
            c.key_for(&spec(3000.2, 1.5)),
            c.key_for(&spec(2999.8, 1.502))
        );
        // ...while distinct grid cells do not.
        assert_ne!(c.key_for(&spec(3000.0, 1.5)), c.key_for(&spec(3001.0, 1.5)));
        assert_ne!(
            c.key_for(&spec(3000.0, 1.5)),
            c.key_for(&spec(3000.0, 1.51))
        );
        // Kind separates otherwise identical specs.
        let mut opt = spec(0.0, 0.0);
        opt.kind = SolveKind::Optimize;
        assert_ne!(c.key_for(&opt), c.key_for(&spec(0.0, 0.0)));
        // Canonical coordinates land on the grid.
        let k = c.key_for(&spec(3000.2, 1.502));
        assert_eq!(k.canonical_rpm(c.config()), 3000.0);
        assert!((k.canonical_amps(c.config()) - 1.5).abs() < 1e-12);
        assert_eq!(k.canonical_scale(c.config()), 1.0);
    }

    #[test]
    fn hit_returns_exact_payload() {
        let c = cache(8, None);
        let k = c.key_for(&spec(3000.0, 1.5));
        assert_eq!(c.get(&k), None);
        c.insert(k, "{\"t\":42.5}".into());
        assert_eq!(c.get(&k).as_deref(), Some("{\"t\":42.5}"));
        // The colliding key hits the same entry.
        let k2 = c.key_for(&spec(2999.9, 1.501));
        assert_eq!(c.get(&k2).as_deref(), Some("{\"t\":42.5}"));
    }

    #[test]
    fn ttl_zero_expires_deterministically() {
        let c = cache(8, Some(Duration::ZERO));
        let k = c.key_for(&spec(3000.0, 1.5));
        c.insert(k, "x".into());
        let before = CACHE_EXPIRED.get();
        assert_eq!(c.get(&k), None, "zero TTL must expire instantly");
        assert_eq!(CACHE_EXPIRED.get(), before + 1);
        assert!(c.is_empty());
    }

    #[test]
    fn evicts_in_lru_order() {
        let c = cache(2, None);
        let (ka, kb, kc) = (
            c.key_for(&spec(1000.0, 0.0)),
            c.key_for(&spec(2000.0, 0.0)),
            c.key_for(&spec(3000.0, 0.0)),
        );
        c.insert(ka, "a".into());
        c.insert(kb, "b".into());
        // Touch `a` so `b` is now least-recently-used.
        assert_eq!(c.get(&ka).as_deref(), Some("a"));
        let before = CACHE_EVICTIONS.get();
        c.insert(kc, "c".into());
        assert_eq!(CACHE_EVICTIONS.get(), before + 1);
        assert_eq!(c.get(&kb), None, "LRU entry must be the one evicted");
        assert_eq!(c.get(&ka).as_deref(), Some("a"));
        assert_eq!(c.get(&kc).as_deref(), Some("c"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn counters_track_hits_and_misses() {
        let c = cache(8, None);
        let k = c.key_for(&spec(4000.0, 2.0));
        let (h0, m0) = (CACHE_HITS.get(), CACHE_MISSES.get());
        c.get(&k);
        c.insert(k, "v".into());
        c.get(&k);
        c.get(&k);
        assert_eq!(CACHE_HITS.get() - h0, 2);
        assert_eq!(CACHE_MISSES.get() - m0, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = cache(0, None);
        let k = c.key_for(&spec(3000.0, 1.5));
        c.insert(k, "v".into());
        assert_eq!(c.get(&k), None);
        assert!(c.is_empty());
    }

    #[test]
    fn recency_queue_compacts_under_churn() {
        let c = cache(2, None);
        let k = c.key_for(&spec(1000.0, 0.0));
        c.insert(k, "v".into());
        for _ in 0..1000 {
            c.get(&k);
        }
        for shard in c.shards.iter() {
            let inner = shard.lock().unwrap();
            assert!(
                inner.order.len() <= 2 * inner.map.len() + 17,
                "recency queue must stay bounded, got {}",
                inner.order.len()
            );
        }
    }

    #[test]
    fn sharded_cache_behaves_like_one_store() {
        let c = QuantizedCache::new(CacheConfig {
            capacity: 256,
            shards: 8,
            ..CacheConfig::default()
        });
        assert_eq!(c.shards.len(), 8);
        assert_eq!(c.shard_capacity, 32);
        // Every key round-trips through whichever shard it hashed to.
        for i in 0..64 {
            let k = c.key_for(&spec(1000.0 + 10.0 * f64::from(i), 0.5));
            c.insert(k, format!("p{i}"));
        }
        for i in 0..64 {
            let k = c.key_for(&spec(1000.0 + 10.0 * f64::from(i), 0.5));
            assert_eq!(c.get(&k).as_deref(), Some(format!("p{i}").as_str()));
        }
        assert_eq!(c.len(), 64);
        // Keys actually spread over more than one shard.
        let occupied = c
            .shards
            .iter()
            .filter(|s| !s.lock().unwrap().map.is_empty())
            .count();
        assert!(occupied > 1, "64 keys landed on {occupied} shard(s)");
    }

    #[test]
    fn shard_placement_is_deterministic_across_instances() {
        let a = QuantizedCache::new(CacheConfig::default());
        let b = QuantizedCache::new(CacheConfig::default());
        for i in 0..32 {
            let k = a.key_for(&spec(2000.0 + 7.0 * f64::from(i), 1.0));
            assert_eq!(a.shard_of(&k), b.shard_of(&k));
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c = QuantizedCache::new(CacheConfig {
            shards: 5,
            ..CacheConfig::default()
        });
        assert_eq!(c.shards.len(), 8);
        let c1 = QuantizedCache::new(CacheConfig {
            shards: 0,
            ..CacheConfig::default()
        });
        assert_eq!(c1.shards.len(), 1);
    }
}
