//! Admission control: a bounded job queue with micro-batch dequeue.
//!
//! Connection threads `try_push` jobs; a full queue is an immediate
//! typed `overloaded` rejection (clients see backpressure instead of
//! unbounded latency). The single dispatcher thread `pop_batch`es:
//! block for the first job, then keep collecting until the batch window
//! elapses or the batch size cap is reached, so concurrent requests
//! amortize onto one scoped-thread executor dispatch.
//!
//! `close` flips the queue into drain mode — pushes are rejected with
//! `shutting_down`, but everything already admitted is still handed to
//! the dispatcher, which is what makes shutdown graceful.

use crate::protocol::{ErrBody, SolveSpec};
use crate::trace::TraceContext;
use std::collections::VecDeque;
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// What the engine sends back per job: the solve result plus the job's
/// finished trace (stage stamps and outcome filled in by the engine).
pub type JobReply = (Result<String, ErrBody>, TraceContext);

/// One admitted solve request: the spec, its deadline, its trace, and
/// the channel the engine answers on.
#[derive(Debug)]
pub struct Job {
    pub spec: SolveSpec,
    /// Absolute deadline; expired jobs are rejected at dequeue and at
    /// iteration granularity inside the solve.
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    /// Request-scoped trace, stamped as the job moves through stages.
    pub trace: TraceContext,
    pub reply: Sender<JobReply>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity: the caller should answer `overloaded`.
    Full,
    /// Queue closed for shutdown: answer `shutting_down`.
    Closed,
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The shared queue. Lock poisoning is recovered: the state is a plain
/// deque with no cross-field invariants.
pub struct JobQueue {
    capacity: usize,
    batch_max: usize,
    batch_window: Duration,
    state: Mutex<State>,
    wake: Condvar,
}

impl JobQueue {
    pub fn new(capacity: usize, batch_max: usize, batch_window: Duration) -> Self {
        Self {
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            batch_window,
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
        }
    }

    /// Admits `job` unless the queue is full or closed. Never blocks.
    /// On refusal the job is handed back so the caller can finish its
    /// trace and answer on its reply channel.
    #[allow(clippy::result_large_err)] // the refused Job must come back to the caller
    pub fn try_push(&self, job: Job) -> Result<(), (PushError, Job)> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err((PushError::Closed, job));
        }
        if st.jobs.len() >= self.capacity {
            return Err((PushError::Full, job));
        }
        st.jobs.push_back(job);
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks for the next micro-batch. Waits for a first job, then keeps
    /// collecting until the batch window closes or `batch_max` is
    /// reached. Returns `None` only once the queue is closed *and*
    /// drained — the dispatcher finishes all admitted work first.
    pub fn pop_batch(&self) -> Option<Vec<Job>> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Phase 1: wait for the first job (or close + empty).
        loop {
            if let Some(job) = st.jobs.pop_front() {
                let mut batch = Vec::with_capacity(self.batch_max.min(8));
                batch.push(job);
                let window_ends = Instant::now() + self.batch_window;
                // Phase 2: fill the batch until window end or cap. Once
                // closed, drain eagerly — no reason to wait the window out.
                while batch.len() < self.batch_max {
                    if let Some(next) = st.jobs.pop_front() {
                        batch.push(next);
                        continue;
                    }
                    if st.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= window_ends {
                        break;
                    }
                    let (next_st, timeout) = self
                        .wake
                        .wait_timeout(st, window_ends - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = next_st;
                    if timeout.timed_out() && st.jobs.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admissions. Already-queued jobs still reach the dispatcher.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.wake.notify_all();
    }

    /// Jobs currently waiting (not yet dispatched).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SolveKind;
    use oftec_power::Benchmark;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn job() -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                spec: SolveSpec {
                    kind: SolveKind::Steady,
                    benchmark: Benchmark::Quicksort,
                    scale: 1.0,
                    rpm: 0.0,
                    amps: 0.0,
                    omega_points: 0,
                    current_points: 0,
                    no_cache: false,
                    deadline_ms: None,
                },
                deadline: None,
                enqueued: Instant::now(),
                trace: TraceContext::new(1, 1),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_with_overload() {
        let q = JobQueue::new(2, 8, Duration::from_millis(1));
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        let (j3, _r3) = job();
        q.try_push(j1).unwrap();
        q.try_push(j2).unwrap();
        let (e, back) = q.try_push(j3).unwrap_err();
        assert_eq!(e, PushError::Full);
        // The refused job comes back intact (trace and reply included).
        assert_eq!((back.trace.conn(), back.trace.seq()), (1, 1));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_queue() {
        let q = JobQueue::new(8, 8, Duration::from_millis(1));
        let (j1, _r1) = job();
        q.try_push(j1).unwrap();
        q.close();
        let (j2, _r2) = job();
        assert_eq!(q.try_push(j2).unwrap_err().0, PushError::Closed);
        // The admitted job still comes out...
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(1));
        // ...and only then does the queue report done.
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn batch_collects_queued_jobs() {
        let q = JobQueue::new(8, 3, Duration::from_millis(50));
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (j, r) = job();
            q.try_push(j).unwrap();
            rxs.push(r);
        }
        // Cap bounds the first batch; the rest arrive in the second.
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(3));
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(2));
    }

    #[test]
    fn pop_blocks_until_work_arrives() {
        let q = Arc::new(JobQueue::new(8, 8, Duration::from_millis(1)));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_batch().map(|b| b.len()));
        std::thread::sleep(Duration::from_millis(20));
        let (j, _r) = job();
        q.try_push(j).unwrap();
        assert_eq!(t.join().unwrap(), Some(1));
    }
}
