//! Admission control: a bounded job queue with micro-batch dequeue.
//!
//! Connection threads `try_push` jobs; a full queue is an immediate
//! typed `overloaded` rejection (clients see backpressure instead of
//! unbounded latency). The single dispatcher thread `pop_batch`es:
//! block for the first job, then keep collecting until the batch window
//! elapses or the batch size cap is reached, so concurrent requests
//! amortize onto one scoped-thread executor dispatch.
//!
//! `close` flips the queue into drain mode — pushes are rejected with
//! `shutting_down`, but everything already admitted is still handed to
//! the dispatcher, which is what makes shutdown graceful.
//!
//! Admission is **deadline-aware**: jobs whose deadline has already
//! passed are purged at push and pop time (answered `deadline_exceeded`,
//! freeing their slot, instead of occupying capacity until dequeue), an
//! arriving job predicted to miss its deadline — queue depth times the
//! dispatcher's EWMA service time exceeds its remaining budget — is shed
//! immediately as [`PushError::WouldMiss`], and when the queue is full a
//! queued job that is predicted to miss is evicted in favor of a live
//! arrival rather than rejecting the newest request.

use crate::engine::SERVE_DEADLINE_EXCEEDED;
use crate::protocol::{ErrBody, SolveSpec};
use crate::trace::TraceContext;
use oftec_telemetry::Counter;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Jobs whose deadline expired while queued, purged at push/pop.
pub static QUEUE_EXPIRED: Counter = Counter::new("serve.queue.expired");
/// Queued jobs evicted (predicted to miss) to admit a live arrival.
pub static QUEUE_EVICTED: Counter = Counter::new("serve.queue.evicted");

/// What the engine sends back per job: the solve result plus the job's
/// finished trace (stage stamps and outcome filled in by the engine).
pub type JobReply = (Result<String, ErrBody>, TraceContext);

/// One admitted solve request: the spec, its deadline, its trace, and
/// the channel the engine answers on.
#[derive(Debug)]
pub struct Job {
    pub spec: SolveSpec,
    /// Absolute deadline; expired jobs are rejected at dequeue and at
    /// iteration granularity inside the solve.
    pub deadline: Option<Instant>,
    pub enqueued: Instant,
    /// Request-scoped trace, stamped as the job moves through stages.
    pub trace: TraceContext,
    pub reply: Sender<JobReply>,
}

/// Why a push was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// Queue at capacity: the caller should answer `overloaded`.
    Full,
    /// Queue closed for shutdown: answer `shutting_down`.
    Closed,
    /// The job's deadline has passed, or the predicted queue wait exceeds
    /// its remaining budget: answer `deadline_exceeded` without wasting a
    /// slot on work that cannot finish in time.
    WouldMiss,
}

struct State {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// The shared queue. Lock poisoning is recovered: the state is a plain
/// deque with no cross-field invariants.
pub struct JobQueue {
    capacity: usize,
    batch_max: usize,
    batch_window: Duration,
    state: Mutex<State>,
    wake: Condvar,
    /// EWMA of per-job dispatcher service time in nanoseconds (0 = no
    /// sample yet). Fed by [`JobQueue::record_service`]; read by admission
    /// to predict whether a deadline can still be met.
    service_ewma_ns: AtomicU64,
}

/// Answers a job whose deadline cannot be met: closes its queue stage,
/// sets the `deadline` outcome, and sends the typed rejection. The send
/// never blocks (mpsc is unbounded), so calling this under the queue lock
/// is safe.
fn reply_deadline(mut job: Job, message: &str) {
    SERVE_DEADLINE_EXCEEDED.add(1);
    job.trace.stage("queue");
    job.trace.set_outcome("deadline");
    let err = ErrBody::new("deadline_exceeded", message.to_string());
    let trace = job.trace.clone();
    let _ = job.reply.send((Err(err), trace));
}

impl JobQueue {
    pub fn new(capacity: usize, batch_max: usize, batch_window: Duration) -> Self {
        Self {
            capacity: capacity.max(1),
            batch_max: batch_max.max(1),
            batch_window,
            state: Mutex::new(State {
                jobs: VecDeque::new(),
                closed: false,
            }),
            wake: Condvar::new(),
            service_ewma_ns: AtomicU64::new(0),
        }
    }

    /// Feeds one per-job service-time sample (dispatcher wall time divided
    /// by batch size) into the admission EWMA.
    // oftec-lint: hot
    pub fn record_service(&self, ns_per_job: u64) {
        let prev = self.service_ewma_ns.load(Ordering::Relaxed);
        let next = if prev == 0 {
            ns_per_job
        } else {
            (3 * prev + ns_per_job) / 4
        };
        self.service_ewma_ns.store(next, Ordering::Relaxed);
    }

    /// Current per-job service-time estimate (0 until the first sample).
    // oftec-lint: hot
    pub fn service_estimate_ns(&self) -> u64 {
        self.service_ewma_ns.load(Ordering::Relaxed)
    }

    /// Removes every queued job whose deadline has already passed,
    /// answering each `deadline_exceeded`. Caller holds the state lock.
    fn purge_expired(st: &mut State, now: Instant) {
        if st.jobs.iter().all(|j| j.deadline.is_none()) {
            return;
        }
        let mut i = 0;
        while i < st.jobs.len() {
            if st.jobs[i].deadline.is_some_and(|d| now >= d) {
                if let Some(job) = st.jobs.remove(i) {
                    QUEUE_EXPIRED.add(1);
                    reply_deadline(job, "deadline expired while queued");
                }
            } else {
                i += 1;
            }
        }
    }

    /// Admits `job` unless the queue is full or closed, or the job is
    /// predicted to miss its deadline. Never blocks. On refusal the job
    /// is handed back so the caller can finish its trace and answer on
    /// its reply channel.
    ///
    /// Before judging capacity, deadline-expired jobs are purged (they
    /// free their slots and are answered `deadline_exceeded`); on a full
    /// queue, a queued job predicted to miss its deadline is evicted in
    /// favor of the live arrival before `Full` is returned.
    #[allow(clippy::result_large_err)] // the refused Job must come back to the caller
    pub fn try_push(&self, job: Job) -> Result<(), (PushError, Job)> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.closed {
            return Err((PushError::Closed, job));
        }
        let now = Instant::now();
        Self::purge_expired(&mut st, now);
        let ewma = self.service_ewma_ns.load(Ordering::Relaxed);
        if let Some(d) = job.deadline {
            // Shed work that cannot finish in time: already expired, or
            // the predicted wait behind the current queue exceeds the
            // remaining budget.
            let predicted_wait =
                Duration::from_nanos(ewma.saturating_mul(st.jobs.len() as u64 + 1));
            if now >= d || (ewma > 0 && now + predicted_wait >= d) {
                return Err((PushError::WouldMiss, job));
            }
        }
        if st.jobs.len() >= self.capacity {
            // Prefer evicting a queued job that will miss its deadline
            // anyway over rejecting the live arrival.
            let victim = (ewma > 0)
                .then(|| {
                    st.jobs.iter().position(|j| {
                        j.deadline.is_some_and(|d| {
                            now + Duration::from_nanos(ewma.saturating_mul(1)) >= d
                        })
                    })
                })
                .flatten();
            match victim.and_then(|i| st.jobs.remove(i)) {
                Some(doomed) => {
                    QUEUE_EVICTED.add(1);
                    reply_deadline(
                        doomed,
                        "deadline shed under load: predicted to expire queued",
                    );
                }
                None => return Err((PushError::Full, job)),
            }
        }
        st.jobs.push_back(job);
        drop(st);
        self.wake.notify_one();
        Ok(())
    }

    /// Blocks for the next micro-batch. Waits for a first job, then keeps
    /// collecting until the batch window closes or `batch_max` is
    /// reached. Returns `None` only once the queue is closed *and*
    /// drained — the dispatcher finishes all admitted work first.
    pub fn pop_batch(&self) -> Option<Vec<Job>> {
        let mut st = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        // Phase 1: wait for the first job (or close + empty).
        loop {
            if let Some(job) = st.jobs.pop_front() {
                // Dequeue-side purge: a job that expired while queued is
                // answered here instead of being handed to the engine.
                if job.deadline.is_some_and(|d| Instant::now() >= d) {
                    QUEUE_EXPIRED.add(1);
                    reply_deadline(job, "deadline expired while queued");
                    continue;
                }
                let mut batch = Vec::with_capacity(self.batch_max.min(8));
                batch.push(job);
                let window_ends = Instant::now() + self.batch_window;
                // Phase 2: fill the batch until window end or cap. Once
                // closed, drain eagerly — no reason to wait the window out.
                while batch.len() < self.batch_max {
                    if let Some(next) = st.jobs.pop_front() {
                        if next.deadline.is_some_and(|d| Instant::now() >= d) {
                            QUEUE_EXPIRED.add(1);
                            reply_deadline(next, "deadline expired while queued");
                            continue;
                        }
                        batch.push(next);
                        continue;
                    }
                    if st.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= window_ends {
                        break;
                    }
                    let (next_st, timeout) = self
                        .wake
                        .wait_timeout(st, window_ends - now)
                        .unwrap_or_else(PoisonError::into_inner);
                    st = next_st;
                    if timeout.timed_out() && st.jobs.is_empty() {
                        break;
                    }
                }
                return Some(batch);
            }
            if st.closed {
                return None;
            }
            st = self.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Stops admissions. Already-queued jobs still reach the dispatcher.
    pub fn close(&self) {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
        self.wake.notify_all();
    }

    /// Jobs currently waiting (not yet dispatched).
    pub fn depth(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .jobs
            .len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SolveKind;
    use oftec_power::Benchmark;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn job() -> (Job, mpsc::Receiver<JobReply>) {
        let (tx, rx) = mpsc::channel();
        (
            Job {
                spec: SolveSpec {
                    kind: SolveKind::Steady,
                    benchmark: Benchmark::Quicksort,
                    scale: 1.0,
                    rpm: 0.0,
                    amps: 0.0,
                    omega_points: 0,
                    current_points: 0,
                    no_cache: false,
                    deadline_ms: None,
                },
                deadline: None,
                enqueued: Instant::now(),
                trace: TraceContext::new(1, 1),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn full_queue_rejects_with_overload() {
        let q = JobQueue::new(2, 8, Duration::from_millis(1));
        let (j1, _r1) = job();
        let (j2, _r2) = job();
        let (j3, _r3) = job();
        q.try_push(j1).unwrap();
        q.try_push(j2).unwrap();
        let (e, back) = q.try_push(j3).unwrap_err();
        assert_eq!(e, PushError::Full);
        // The refused job comes back intact (trace and reply included).
        assert_eq!((back.trace.conn(), back.trace.seq()), (1, 1));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn close_rejects_pushes_but_drains_queue() {
        let q = JobQueue::new(8, 8, Duration::from_millis(1));
        let (j1, _r1) = job();
        q.try_push(j1).unwrap();
        q.close();
        let (j2, _r2) = job();
        assert_eq!(q.try_push(j2).unwrap_err().0, PushError::Closed);
        // The admitted job still comes out...
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(1));
        // ...and only then does the queue report done.
        assert!(q.pop_batch().is_none());
    }

    #[test]
    fn batch_collects_queued_jobs() {
        let q = JobQueue::new(8, 3, Duration::from_millis(50));
        let mut rxs = Vec::new();
        for _ in 0..5 {
            let (j, r) = job();
            q.try_push(j).unwrap();
            rxs.push(r);
        }
        // Cap bounds the first batch; the rest arrive in the second.
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(3));
        assert_eq!(q.pop_batch().map(|b| b.len()), Some(2));
    }

    #[test]
    fn pop_blocks_until_work_arrives() {
        let q = Arc::new(JobQueue::new(8, 8, Duration::from_millis(1)));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_batch().map(|b| b.len()));
        std::thread::sleep(Duration::from_millis(20));
        let (j, _r) = job();
        q.try_push(j).unwrap();
        assert_eq!(t.join().unwrap(), Some(1));
    }

    fn job_with_deadline(deadline: Option<Instant>) -> (Job, mpsc::Receiver<JobReply>) {
        let (j, r) = job();
        (Job { deadline, ..j }, r)
    }

    fn expect_deadline_reply(rx: &mpsc::Receiver<JobReply>) {
        let (result, trace) = rx
            .recv_timeout(Duration::from_secs(1))
            .expect("purged job must be answered");
        match result {
            Err(e) => assert_eq!(e.kind, "deadline_exceeded"),
            Ok(_) => panic!("expired job must not succeed"),
        }
        assert_eq!(trace.outcome(), "deadline");
    }

    #[test]
    fn expired_jobs_are_purged_at_push() {
        let q = JobQueue::new(2, 8, Duration::from_millis(1));
        let (ja, ra) = job_with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        q.try_push(ja).unwrap();
        let (jb, _rb) = job();
        q.try_push(jb).unwrap();
        assert_eq!(q.depth(), 2);
        std::thread::sleep(Duration::from_millis(5));
        // The queue is nominally full, but the expired job is purged at
        // push — the live arrival is admitted, not rejected `overloaded`.
        let before = QUEUE_EXPIRED.get();
        let (jc, _rc) = job();
        q.try_push(jc)
            .expect("purge must free the expired job's slot");
        assert!(QUEUE_EXPIRED.get() > before);
        expect_deadline_reply(&ra);
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn expired_jobs_are_purged_at_pop() {
        let q = JobQueue::new(8, 8, Duration::from_millis(1));
        let (ja, ra) = job_with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        q.try_push(ja).unwrap();
        let (jb, _rb) = job();
        q.try_push(jb).unwrap();
        std::thread::sleep(Duration::from_millis(5));
        // The expired job is answered at dequeue; only the live one
        // reaches the dispatcher's batch.
        let batch = q.pop_batch().expect("live job still queued");
        assert_eq!(batch.len(), 1);
        assert!(batch[0].deadline.is_none());
        expect_deadline_reply(&ra);
    }

    #[test]
    fn predicted_misses_are_shed_at_admission() {
        let q = JobQueue::new(8, 8, Duration::from_millis(1));
        // Already-expired deadlines are shed outright, even with no
        // service-time estimate yet.
        let (ja, _ra) = job_with_deadline(Some(Instant::now() - Duration::from_millis(1)));
        assert_eq!(q.try_push(ja).unwrap_err().0, PushError::WouldMiss);
        // With a 10 ms per-job estimate, a 2 ms budget cannot be met.
        q.record_service(10_000_000);
        let (jb, _rb) = job_with_deadline(Some(Instant::now() + Duration::from_millis(2)));
        assert_eq!(q.try_push(jb).unwrap_err().0, PushError::WouldMiss);
        // A generous budget is still admitted.
        let (jc, _rc) = job_with_deadline(Some(Instant::now() + Duration::from_secs(5)));
        q.try_push(jc).expect("meetable deadline must be admitted");
        assert_eq!(q.depth(), 1);
    }

    #[test]
    fn full_queue_evicts_doomed_job_for_live_arrival() {
        let q = JobQueue::new(2, 8, Duration::from_millis(1));
        // Admit a tight-deadline job while no service estimate exists...
        let (ja, ra) = job_with_deadline(Some(Instant::now() + Duration::from_millis(50)));
        q.try_push(ja).unwrap();
        let (jb, _rb) = job();
        q.try_push(jb).unwrap();
        // ...then learn that a job costs ~60 ms: the queued 50 ms job is
        // now predicted to miss, so a live arrival evicts it instead of
        // being rejected `overloaded`.
        q.record_service(60_000_000);
        let before = QUEUE_EVICTED.get();
        let (jc, _rc) = job();
        q.try_push(jc)
            .expect("doomed job must be evicted for live work");
        assert!(QUEUE_EVICTED.get() > before);
        expect_deadline_reply(&ra);
        assert_eq!(q.depth(), 2);
        // With nothing left to evict, a full queue still answers Full.
        let (jd, _rd) = job();
        assert_eq!(q.try_push(jd).unwrap_err().0, PushError::Full);
    }

    #[test]
    fn service_ewma_converges_on_samples() {
        let q = JobQueue::new(8, 8, Duration::from_millis(1));
        assert_eq!(q.service_estimate_ns(), 0);
        q.record_service(1000);
        assert_eq!(q.service_estimate_ns(), 1000);
        q.record_service(2000);
        // (3*1000 + 2000) / 4
        assert_eq!(q.service_estimate_ns(), 1250);
    }
}
