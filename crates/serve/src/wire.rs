//! Length-prefixed binary frame format, negotiated per message alongside
//! NDJSON.
//!
//! An NDJSON request line always starts with a printable byte (`{`), so
//! the server sniffs the first byte of every message: `0x00` opens a
//! binary frame, anything else is read as a JSON line. Both formats can
//! interleave freely on one connection — a client may pipeline solve
//! frames and still probe `metrics` as a JSON line.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [magic 0x00][version u8][body_len u32]  -- 6-byte header
//! [body: SOLVE_BODY_LEN bytes]            -- fixed-size request record
//! ```
//!
//! The request body is a fixed 48-byte record (see [`decode_body`]) that
//! decodes in ~no time compared to JSON: `cmd`, `flags`, a benchmark
//! index into [`Benchmark::ALL`], and the raw f64 operating point.
//! Responses to binary requests are the **same JSON envelope bytes** the
//! NDJSON path produces, wrapped in a frame header instead of terminated
//! by a newline — so solve results are byte-identical across wire
//! formats by construction, and the PR 7 trace/flight-recorder/SLO
//! machinery observes both wires identically.
//!
//! Malformed frames map onto the typed error taxonomy: an unsupported
//! version or violated layout is `bad_frame`, an oversized body is
//! `frame_too_long` (the binary analogue of `line_too_long`); both are
//! `parse`-cause errors and both are recoverable — the connection skips
//! the bad frame and keeps serving.

use crate::protocol::{ErrBody, Request, SolveKind, SolveSpec, MAX_SWEEP_POINTS};
use oftec_power::Benchmark;

/// First byte of every binary frame; never the first byte of a JSON line.
pub const FRAME_MAGIC: u8 = 0x00;
/// Current frame-format version.
pub const FRAME_VERSION: u8 = 1;
/// Bytes in the frame header: magic, version, u32 body length.
pub const FRAME_HEADER_LEN: usize = 6;
/// Fixed size of a binary request body.
pub const SOLVE_BODY_LEN: usize = 48;

/// `cmd` byte: full Algorithm 1 run.
pub const CMD_OPTIMIZE: u8 = 1;
/// `cmd` byte: one steady-state solve.
pub const CMD_STEADY: u8 = 2;
/// `cmd` byte: rectangular sweep.
pub const CMD_SWEEP: u8 = 3;
/// `cmd` byte: liveness probe.
pub const CMD_HEALTH: u8 = 16;
/// `cmd` byte: telemetry snapshot (JSON).
pub const CMD_METRICS_JSON: u8 = 17;
/// `cmd` byte: telemetry snapshot (Prometheus text exposition).
pub const CMD_METRICS_PROMETHEUS: u8 = 18;
/// `cmd` byte: begin graceful drain.
pub const CMD_SHUTDOWN: u8 = 21;

/// `flags` bit: skip the result cache (read and write).
pub const FLAG_NO_CACHE: u8 = 0b0000_0001;
/// `flags` bit: the `deadline_ms` field is meaningful.
pub const FLAG_HAS_DEADLINE: u8 = 0b0000_0010;
/// `flags` bit: the `id` field is meaningful.
pub const FLAG_HAS_ID: u8 = 0b0000_0100;

const KNOWN_FLAGS: u8 = FLAG_NO_CACHE | FLAG_HAS_DEADLINE | FLAG_HAS_ID;

/// Index of `b` in [`Benchmark::ALL`] — the wire encoding of a benchmark.
pub fn benchmark_index(b: Benchmark) -> u8 {
    Benchmark::ALL
        .iter()
        .position(|x| *x == b)
        .unwrap_or(usize::from(u8::MAX)) as u8
}

/// Validates a frame header (first byte already sniffed as
/// [`FRAME_MAGIC`]) and returns the body length it announces.
///
/// # Errors
///
/// `bad_frame` for a short header or an unsupported version. The length
/// bound against `max_line_bytes` (`frame_too_long`) is the caller's —
/// it owns the read-buffer policy.
pub fn decode_header(header: &[u8]) -> Result<usize, ErrBody> {
    if header.len() < FRAME_HEADER_LEN {
        return Err(ErrBody::new("bad_frame", "truncated frame header"));
    }
    if header[0] != FRAME_MAGIC {
        return Err(ErrBody::new("bad_frame", "frame must start with 0x00"));
    }
    if header[1] != FRAME_VERSION {
        return Err(ErrBody::new(
            "bad_frame",
            format!(
                "unsupported frame version {} (expected {FRAME_VERSION})",
                header[1]
            ),
        ));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]);
    Ok(len as usize)
}

fn u16_at(body: &[u8], off: usize) -> u16 {
    u16::from_le_bytes([body[off], body[off + 1]])
}

fn u64_at(body: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&body[off..off + 8]);
    u64::from_le_bytes(b)
}

fn f64_at(body: &[u8], off: usize) -> f64 {
    f64::from_bits(u64_at(body, off))
}

fn sweep_points(raw: u16, default: usize) -> Result<usize, ErrBody> {
    let n = if raw == 0 { default } else { raw as usize };
    if !(2..=MAX_SWEEP_POINTS).contains(&n) {
        return Err(ErrBody::new(
            "bad_request",
            format!("sweep points must be in 2..={MAX_SWEEP_POINTS}"),
        ));
    }
    Ok(n)
}

/// Decodes one frame body into `(id, Request)`, mirroring
/// [`crate::protocol::parse_line`]'s contract (including its validation
/// rules, so a solve decoded from a frame is indistinguishable from the
/// same solve parsed from JSON).
///
/// # Errors
///
/// `bad_frame` for layout violations (wrong body size, unknown flag
/// bits, nonzero reserved byte), `bad_request`/`unknown_benchmark` for
/// field-level validation — each carrying the request id whenever the
/// envelope decoded far enough to expose it.
pub fn decode_body(body: &[u8]) -> Result<(Option<u64>, Request), (Option<u64>, ErrBody)> {
    if body.len() != SOLVE_BODY_LEN {
        return Err((
            None,
            ErrBody::new(
                "bad_frame",
                format!(
                    "frame body must be {SOLVE_BODY_LEN} bytes, got {}",
                    body.len()
                ),
            ),
        ));
    }
    let (cmd, flags) = (body[0], body[1]);
    if flags & !KNOWN_FLAGS != 0 {
        return Err((
            None,
            ErrBody::new("bad_frame", format!("unknown flag bits 0x{flags:02x}")),
        ));
    }
    let id = (flags & FLAG_HAS_ID != 0).then(|| u64_at(body, 4));
    if body[3] != 0 {
        return Err((id, ErrBody::new("bad_frame", "reserved byte must be zero")));
    }
    let req = match cmd {
        CMD_HEALTH => Request::Health,
        CMD_METRICS_JSON => Request::Metrics { prometheus: false },
        CMD_METRICS_PROMETHEUS => Request::Metrics { prometheus: true },
        CMD_SHUTDOWN => Request::Shutdown,
        CMD_OPTIMIZE | CMD_STEADY | CMD_SWEEP => {
            let bench_idx = usize::from(body[2]);
            let benchmark = *Benchmark::ALL.get(bench_idx).ok_or_else(|| {
                (
                    id,
                    ErrBody::new(
                        "unknown_benchmark",
                        format!(
                            "unknown benchmark index {bench_idx}; expected 0..{}",
                            Benchmark::ALL.len()
                        ),
                    ),
                )
            })?;
            let scale = f64_at(body, 12);
            if !scale.is_finite() || scale < 0.0 {
                return Err((
                    id,
                    ErrBody::new(
                        "bad_request",
                        "field 'scale' must be finite and non-negative",
                    ),
                ));
            }
            let deadline_ms = (flags & FLAG_HAS_DEADLINE != 0).then(|| u64_at(body, 40));
            let mut spec = SolveSpec {
                kind: SolveKind::Steady,
                benchmark,
                scale,
                rpm: 0.0,
                amps: 0.0,
                omega_points: 0,
                current_points: 0,
                no_cache: flags & FLAG_NO_CACHE != 0,
                deadline_ms,
            };
            match cmd {
                CMD_OPTIMIZE => {
                    spec.kind = SolveKind::Optimize;
                    Request::Optimize { spec }
                }
                CMD_SWEEP => {
                    spec.kind = SolveKind::Sweep;
                    spec.omega_points = sweep_points(u16_at(body, 36), 8).map_err(|e| (id, e))?;
                    spec.current_points = sweep_points(u16_at(body, 38), 6).map_err(|e| (id, e))?;
                    Request::Sweep { spec }
                }
                _ => {
                    spec.rpm = f64_at(body, 20);
                    spec.amps = f64_at(body, 28);
                    if !spec.rpm.is_finite() || !spec.amps.is_finite() {
                        return Err((
                            id,
                            ErrBody::new("bad_request", "fields 'rpm' and 'amps' must be finite"),
                        ));
                    }
                    Request::Steady { spec }
                }
            }
        }
        other => {
            return Err((
                id,
                ErrBody::new("bad_request", format!("unknown cmd byte {other}")),
            ))
        }
    };
    Ok((id, req))
}

/// Appends a frame header + `payload` to `out` (the response path: the
/// payload is a JSON envelope, byte-identical to the NDJSON line minus
/// its newline).
pub fn encode_frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Encodes a solve request frame from a spec — the client-side encoder
/// used by the load generator and the tests.
pub fn encode_solve_frame(id: Option<u64>, spec: &SolveSpec) -> Vec<u8> {
    let mut body = [0u8; SOLVE_BODY_LEN];
    body[0] = match spec.kind {
        SolveKind::Optimize => CMD_OPTIMIZE,
        SolveKind::Steady => CMD_STEADY,
        SolveKind::Sweep => CMD_SWEEP,
    };
    let mut flags = 0u8;
    if spec.no_cache {
        flags |= FLAG_NO_CACHE;
    }
    if let Some(ms) = spec.deadline_ms {
        flags |= FLAG_HAS_DEADLINE;
        body[40..48].copy_from_slice(&ms.to_le_bytes());
    }
    if let Some(id) = id {
        flags |= FLAG_HAS_ID;
        body[4..12].copy_from_slice(&id.to_le_bytes());
    }
    body[1] = flags;
    body[2] = benchmark_index(spec.benchmark);
    body[12..20].copy_from_slice(&spec.scale.to_bits().to_le_bytes());
    body[20..28].copy_from_slice(&spec.rpm.to_bits().to_le_bytes());
    body[28..36].copy_from_slice(&spec.amps.to_bits().to_le_bytes());
    body[36..38].copy_from_slice(&(spec.omega_points as u16).to_le_bytes());
    body[38..40].copy_from_slice(&(spec.current_points as u16).to_le_bytes());
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + SOLVE_BODY_LEN);
    encode_frame_into(&mut out, &body);
    out
}

/// Encodes a probe request frame (`cmd` one of the probe bytes).
pub fn encode_probe_frame(cmd: u8, id: Option<u64>) -> Vec<u8> {
    let mut body = [0u8; SOLVE_BODY_LEN];
    body[0] = cmd;
    if let Some(id) = id {
        body[1] = FLAG_HAS_ID;
        body[4..12].copy_from_slice(&id.to_le_bytes());
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + SOLVE_BODY_LEN);
    encode_frame_into(&mut out, &body);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::parse_line;

    fn steady_spec() -> SolveSpec {
        SolveSpec {
            kind: SolveKind::Steady,
            benchmark: Benchmark::Quicksort,
            scale: 1.25,
            rpm: 3000.0,
            amps: 1.5,
            omega_points: 0,
            current_points: 0,
            no_cache: false,
            deadline_ms: Some(250),
        }
    }

    fn decode_frame(frame: &[u8]) -> (Option<u64>, Request) {
        let len = decode_header(&frame[..FRAME_HEADER_LEN]).expect("header");
        assert_eq!(frame.len(), FRAME_HEADER_LEN + len);
        decode_body(&frame[FRAME_HEADER_LEN..]).expect("body")
    }

    #[test]
    fn solve_frames_round_trip() {
        let spec = steady_spec();
        let (id, req) = decode_frame(&encode_solve_frame(Some(7), &spec));
        assert_eq!(id, Some(7));
        assert_eq!(req, Request::Steady { spec: spec.clone() });

        let mut sweep = spec.clone();
        sweep.kind = SolveKind::Sweep;
        sweep.rpm = 0.0;
        sweep.amps = 0.0;
        sweep.omega_points = 4;
        sweep.current_points = 3;
        sweep.deadline_ms = None;
        let (id, req) = decode_frame(&encode_solve_frame(None, &sweep));
        assert_eq!(id, None);
        assert_eq!(req, Request::Sweep { spec: sweep });

        let mut opt = spec;
        opt.kind = SolveKind::Optimize;
        opt.rpm = 0.0;
        opt.amps = 0.0;
        opt.no_cache = true;
        let (_, req) = decode_frame(&encode_solve_frame(Some(1), &opt));
        assert_eq!(req, Request::Optimize { spec: opt });
    }

    #[test]
    fn frame_decode_matches_json_parse() {
        // The two wire formats must produce the same Request for the
        // same logical solve — that is what makes the responses
        // byte-identical downstream.
        let (jid, jreq) = parse_line(
            r#"{"cmd":"steady","id":7,"benchmark":"qsort","scale":1.25,"rpm":3000,"amps":1.5,"deadline_ms":250}"#,
        )
        .expect("json parse");
        let (bid, breq) = decode_frame(&encode_solve_frame(Some(7), &steady_spec()));
        assert_eq!(jid, bid);
        assert_eq!(jreq, breq);
    }

    #[test]
    fn sweep_points_default_and_validate() {
        let mut sweep = steady_spec();
        sweep.kind = SolveKind::Sweep;
        sweep.rpm = 0.0;
        sweep.amps = 0.0;
        // Zero points take the same defaults as NDJSON (8 × 6).
        let (_, req) = decode_frame(&encode_solve_frame(None, &sweep));
        match req {
            Request::Sweep { spec } => {
                assert_eq!((spec.omega_points, spec.current_points), (8, 6));
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // Out-of-range points are a bad_request, as over NDJSON.
        sweep.omega_points = MAX_SWEEP_POINTS + 1;
        let frame = encode_solve_frame(Some(3), &sweep);
        let (id, e) = decode_body(&frame[FRAME_HEADER_LEN..]).expect_err("must reject");
        assert_eq!(id, Some(3));
        assert_eq!(e.kind, "bad_request");
    }

    #[test]
    fn probe_frames_decode() {
        for (cmd, want) in [
            (CMD_HEALTH, Request::Health),
            (CMD_METRICS_JSON, Request::Metrics { prometheus: false }),
            (
                CMD_METRICS_PROMETHEUS,
                Request::Metrics { prometheus: true },
            ),
            (CMD_SHUTDOWN, Request::Shutdown),
        ] {
            let frame = encode_probe_frame(cmd, Some(9));
            let (id, req) = decode_frame(&frame);
            assert_eq!(id, Some(9));
            assert_eq!(req, want);
        }
    }

    #[test]
    fn layout_violations_are_bad_frame() {
        // Wrong version.
        let mut frame = encode_probe_frame(CMD_HEALTH, None);
        frame[1] = 9;
        assert_eq!(
            decode_header(&frame[..6]).expect_err("version").kind,
            "bad_frame"
        );
        // Truncated header.
        assert_eq!(decode_header(&[0x00]).expect_err("short").kind, "bad_frame");
        // Wrong body size.
        let (_, e) = decode_body(&[0u8; 7]).expect_err("size");
        assert_eq!(e.kind, "bad_frame");
        // Unknown flag bits.
        let mut frame = encode_solve_frame(Some(1), &steady_spec());
        frame[FRAME_HEADER_LEN + 1] |= 0b1000_0000;
        let (_, e) = decode_body(&frame[FRAME_HEADER_LEN..]).expect_err("flags");
        assert_eq!(e.kind, "bad_frame");
        // Nonzero reserved byte still exposes the id for correlation.
        let mut frame = encode_solve_frame(Some(5), &steady_spec());
        frame[FRAME_HEADER_LEN + 3] = 1;
        let (id, e) = decode_body(&frame[FRAME_HEADER_LEN..]).expect_err("reserved");
        assert_eq!(id, Some(5));
        assert_eq!(e.kind, "bad_frame");
        // Unknown benchmark index is its own typed error.
        let mut frame = encode_solve_frame(Some(2), &steady_spec());
        frame[FRAME_HEADER_LEN + 2] = 255;
        let (id, e) = decode_body(&frame[FRAME_HEADER_LEN..]).expect_err("benchmark");
        assert_eq!(id, Some(2));
        assert_eq!(e.kind, "unknown_benchmark");
        // Unknown cmd byte mirrors NDJSON's unknown cmd.
        let mut frame = encode_probe_frame(CMD_HEALTH, None);
        frame[FRAME_HEADER_LEN] = 99;
        let (_, e) = decode_body(&frame[FRAME_HEADER_LEN..]).expect_err("cmd");
        assert_eq!(e.kind, "bad_request");
    }
}
