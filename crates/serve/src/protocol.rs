//! Wire protocol of the cooling-control service.
//!
//! One JSON object per line in both directions (newline-delimited JSON).
//! Requests carry a `cmd` discriminator plus command-specific fields;
//! responses are an envelope `{"id": ..., "ok": ..., ...}` wrapping either
//! a `result` payload or a typed `error` object. Parsing works on the
//! vendored [`serde::Value`] tree directly because the derive stand-in
//! has no data-carrying enums; responses are assembled by splicing
//! derived-`Serialize` payload JSON into a hand-formatted envelope, which
//! keeps repeated results byte-identical (the cache stores the payload
//! string verbatim).

use oftec::OftecError;
use oftec_power::Benchmark;
use serde::Value;

/// Upper bound on sweep grid resolution accepted over the wire, so a
/// single request cannot monopolize the executor.
pub const MAX_SWEEP_POINTS: usize = 64;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Full Algorithm 1 run for a (benchmark, scale) system.
    Optimize { spec: SolveSpec },
    /// One steady-state solve at an explicit operating point.
    Steady { spec: SolveSpec },
    /// A rectangular `(ω, I)` sweep.
    Sweep { spec: SolveSpec },
    /// Liveness probe; answered inline, never queued.
    Health,
    /// Telemetry snapshot; answered inline, never queued. With
    /// `prometheus` set (`"format":"prometheus"`), the result is the
    /// text exposition as a JSON string instead of the JSON snapshot.
    Metrics { prometheus: bool },
    /// Recent flight-recorder entries; answered inline, never queued.
    Trace { limit: usize, redact: bool },
    /// Rolling-window SLO monitor states; answered inline, never queued.
    Slo,
    /// Begin graceful drain: stop accepting, finish in-flight work,
    /// flush telemetry, then exit the serve loop.
    Shutdown,
}

/// Maps a wire error `kind` onto its coarse cause — the taxonomy of the
/// typed `serve.errors.*` counters and the trace outcome table
/// ([`crate::trace::OUTCOME_NAMES`]).
pub fn error_cause(kind: &str) -> &'static str {
    match kind {
        "bad_request" | "unknown_benchmark" | "line_too_long" | "bad_frame" | "frame_too_long" => {
            "parse"
        }
        "overloaded" | "shutting_down" => "overload",
        "deadline_exceeded" => "deadline",
        "panic" => "panic",
        "internal" => "internal",
        // Everything else is a solver-side failure (`thermal`,
        // `non_finite`, `infeasible`, ... — the `OftecError::kind` codes).
        _ => "solver",
    }
}

/// The solve-shaped portion of a request: everything the batch engine
/// needs, and nothing that is not `Send + Sync` (reply channels stay
/// outside, with the queue job).
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSpec {
    /// Which command this spec came from (drives dispatch + cache kind).
    pub kind: SolveKind,
    /// Workload (Table 2 benchmark).
    pub benchmark: Benchmark,
    /// Workload scale factor (1.0 = the paper's traces).
    pub scale: f64,
    /// Fan speed in RPM (`steady` only; 0 otherwise).
    pub rpm: f64,
    /// TEC current in amperes (`steady` only; 0 otherwise).
    pub amps: f64,
    /// Sweep resolution along ω (`sweep` only; 0 otherwise).
    pub omega_points: usize,
    /// Sweep resolution along I (`sweep` only; 0 otherwise).
    pub current_points: usize,
    /// Skip the result cache for this request (read and write).
    pub no_cache: bool,
    /// Per-request deadline budget in milliseconds.
    pub deadline_ms: Option<u64>,
}

/// Solve-command discriminator (also the first cache-key component).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SolveKind {
    Optimize,
    Steady,
    Sweep,
}

/// A typed protocol error: machine-readable `kind` + human `message`.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrBody {
    pub kind: &'static str,
    pub message: String,
}

impl ErrBody {
    pub fn new(kind: &'static str, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }

    /// Maps a pipeline error onto the wire taxonomy, reusing
    /// [`OftecError::kind`] codes verbatim.
    pub fn from_oftec(e: &OftecError) -> Self {
        Self::new(e.kind(), e.to_string())
    }
}

/// JSON-escapes `s` into a quoted string literal.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn id_json(id: Option<u64>) -> String {
    match id {
        Some(id) => id.to_string(),
        None => "null".to_string(),
    }
}

/// Success envelope around an already-serialized `result` payload.
pub fn ok_line(id: Option<u64>, cached: bool, payload_json: &str) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"cached\":{},\"result\":{}}}",
        id_json(id),
        cached,
        payload_json
    )
}

/// Error envelope.
pub fn err_line(id: Option<u64>, err: &ErrBody) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"error\":{{\"kind\":{},\"message\":{}}}}}",
        id_json(id),
        escape_json(err.kind),
        escape_json(&err.message)
    )
}

/// Success envelope carrying a `trace` object. The `trace` field sits
/// **before** `result` on purpose: cached payloads are spliced verbatim
/// and tooling (including the test helpers) relies on `result` staying
/// the envelope's final field.
pub fn ok_line_traced(
    id: Option<u64>,
    cached: bool,
    trace_json: &str,
    payload_json: &str,
) -> String {
    format!(
        "{{\"id\":{},\"ok\":true,\"cached\":{},\"trace\":{},\"result\":{}}}",
        id_json(id),
        cached,
        trace_json,
        payload_json
    )
}

/// Error envelope carrying a `trace` object (before `error`, mirroring
/// [`ok_line_traced`]).
pub fn err_line_traced(id: Option<u64>, trace_json: &str, err: &ErrBody) -> String {
    format!(
        "{{\"id\":{},\"ok\":false,\"trace\":{},\"error\":{{\"kind\":{},\"message\":{}}}}}",
        id_json(id),
        trace_json,
        escape_json(err.kind),
        escape_json(&err.message)
    )
}

fn find<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn opt_f64(map: &[(String, Value)], key: &str, default: f64) -> Result<f64, ErrBody> {
    match find(map, key) {
        None | Some(Value::Null) => Ok(default),
        Some(Value::Num(n)) => Ok(*n),
        Some(_) => Err(ErrBody::new(
            "bad_request",
            format!("field '{key}' must be a number"),
        )),
    }
}

fn opt_bool(map: &[(String, Value)], key: &str) -> Result<bool, ErrBody> {
    match find(map, key) {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(b)) => Ok(*b),
        Some(_) => Err(ErrBody::new(
            "bad_request",
            format!("field '{key}' must be a boolean"),
        )),
    }
}

fn opt_u64(map: &[(String, Value)], key: &str) -> Result<Option<u64>, ErrBody> {
    match find(map, key) {
        None | Some(Value::Null) => Ok(None),
        // oftec-lint: allow(L004, fract() == 0.0 is the exact integrality test for a wire-format id)
        Some(Value::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
            Ok(Some(*n as u64))
        }
        Some(_) => Err(ErrBody::new(
            "bad_request",
            format!("field '{key}' must be a non-negative integer"),
        )),
    }
}

fn sweep_points(map: &[(String, Value)], key: &str, default: usize) -> Result<usize, ErrBody> {
    let n = match opt_u64(map, key)? {
        None => default,
        Some(n) => n as usize,
    };
    if !(2..=MAX_SWEEP_POINTS).contains(&n) {
        return Err(ErrBody::new(
            "bad_request",
            format!("field '{key}' must be in 2..={MAX_SWEEP_POINTS}"),
        ));
    }
    Ok(n)
}

fn benchmark_field(map: &[(String, Value)]) -> Result<Benchmark, ErrBody> {
    let name = find(map, "benchmark")
        .and_then(Value::as_str)
        .ok_or_else(|| ErrBody::new("bad_request", "field 'benchmark' (string) is required"))?;
    Benchmark::from_name(name).ok_or_else(|| {
        ErrBody::new(
            "unknown_benchmark",
            format!(
                "unknown benchmark '{name}'; expected one of {}",
                Benchmark::ALL
                    .iter()
                    .map(|b| b.name())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        )
    })
}

fn solve_common(map: &[(String, Value)], kind: SolveKind) -> Result<SolveSpec, ErrBody> {
    let benchmark = benchmark_field(map)?;
    let scale = opt_f64(map, "scale", 1.0)?;
    if !scale.is_finite() || scale < 0.0 {
        return Err(ErrBody::new(
            "bad_request",
            "field 'scale' must be finite and non-negative",
        ));
    }
    Ok(SolveSpec {
        kind,
        benchmark,
        scale,
        rpm: 0.0,
        amps: 0.0,
        omega_points: 0,
        current_points: 0,
        no_cache: opt_bool(map, "no_cache")?,
        deadline_ms: opt_u64(map, "deadline_ms")?,
    })
}

/// Extracts the request id from a line before full parsing, so malformed
/// requests can still be correlated when the envelope itself parsed.
pub fn parse_id(v: &Value) -> Option<u64> {
    let map = v.as_map()?;
    match find(map, "id") {
        // oftec-lint: allow(L004, fract() == 0.0 is the exact integrality test for a wire-format id)
        Some(Value::Num(n)) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
            Some(*n as u64)
        }
        _ => None,
    }
}

/// Parses one request line into `(id, Request)`.
///
/// # Errors
///
/// `bad_request` for malformed JSON / missing or mistyped fields,
/// `unknown_benchmark` for names outside Table 2. The id is carried in
/// the error tuple whenever the envelope parsed far enough to expose it.
pub fn parse_line(line: &str) -> Result<(Option<u64>, Request), (Option<u64>, ErrBody)> {
    let v: Value = serde_json::from_str(line).map_err(|e| {
        (
            None,
            ErrBody::new("bad_request", format!("malformed JSON: {e}")),
        )
    })?;
    let id = parse_id(&v);
    let map = v.as_map().ok_or_else(|| {
        (
            id,
            ErrBody::new("bad_request", "request must be a JSON object"),
        )
    })?;
    let cmd = find(map, "cmd").and_then(Value::as_str).ok_or_else(|| {
        (
            id,
            ErrBody::new("bad_request", "field 'cmd' (string) is required"),
        )
    })?;
    let req = match cmd {
        "optimize" => Request::Optimize {
            spec: solve_common(map, SolveKind::Optimize).map_err(|e| (id, e))?,
        },
        "steady" => {
            let mut spec = solve_common(map, SolveKind::Steady).map_err(|e| (id, e))?;
            spec.rpm = opt_f64(map, "rpm", 0.0).map_err(|e| (id, e))?;
            spec.amps = opt_f64(map, "amps", 0.0).map_err(|e| (id, e))?;
            if !spec.rpm.is_finite() || !spec.amps.is_finite() {
                return Err((
                    id,
                    ErrBody::new("bad_request", "fields 'rpm' and 'amps' must be finite"),
                ));
            }
            Request::Steady { spec }
        }
        "sweep" => {
            let mut spec = solve_common(map, SolveKind::Sweep).map_err(|e| (id, e))?;
            spec.omega_points = sweep_points(map, "omega_points", 8).map_err(|e| (id, e))?;
            spec.current_points = sweep_points(map, "current_points", 6).map_err(|e| (id, e))?;
            Request::Sweep { spec }
        }
        "health" => Request::Health,
        "metrics" => {
            let prometheus = match find(map, "format").and_then(Value::as_str) {
                None | Some("json") => false,
                Some("prometheus") => true,
                Some(other) => {
                    return Err((
                        id,
                        ErrBody::new(
                            "bad_request",
                            format!("unknown metrics format '{other}'; expected json|prometheus"),
                        ),
                    ))
                }
            };
            Request::Metrics { prometheus }
        }
        "trace" => {
            let limit = opt_u64(map, "limit").map_err(|e| (id, e))?.unwrap_or(64) as usize;
            let redact = opt_bool(map, "redact").map_err(|e| (id, e))?;
            Request::Trace { limit, redact }
        }
        "slo" => Request::Slo,
        "shutdown" => Request::Shutdown,
        other => {
            return Err((
                id,
                ErrBody::new("bad_request", format!("unknown cmd '{other}'")),
            ))
        }
    };
    Ok((id, req))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_each_command() {
        let (id, req) =
            parse_line(r#"{"cmd":"steady","id":7,"benchmark":"qsort","rpm":3000,"amps":1.5}"#)
                .unwrap();
        assert_eq!(id, Some(7));
        match req {
            Request::Steady { spec } => {
                assert_eq!(spec.benchmark, Benchmark::Quicksort);
                assert_eq!(spec.rpm, 3000.0);
                assert_eq!(spec.amps, 1.5);
                assert_eq!(spec.scale, 1.0);
                assert!(!spec.no_cache);
            }
            other => panic!("wrong parse: {other:?}"),
        }
        assert!(matches!(
            parse_line(r#"{"cmd":"health"}"#).unwrap().1,
            Request::Health
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"metrics"}"#).unwrap().1,
            Request::Metrics { prometheus: false }
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"metrics","format":"prometheus"}"#)
                .unwrap()
                .1,
            Request::Metrics { prometheus: true }
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"trace"}"#).unwrap().1,
            Request::Trace {
                limit: 64,
                redact: false
            }
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"trace","limit":5,"redact":true}"#)
                .unwrap()
                .1,
            Request::Trace {
                limit: 5,
                redact: true
            }
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"slo"}"#).unwrap().1,
            Request::Slo
        ));
        assert!(matches!(
            parse_line(r#"{"cmd":"shutdown"}"#).unwrap().1,
            Request::Shutdown
        ));
        let (_, req) = parse_line(r#"{"cmd":"sweep","benchmark":"FFT","omega_points":4}"#).unwrap();
        match req {
            Request::Sweep { spec } => {
                assert_eq!((spec.omega_points, spec.current_points), (4, 6));
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn typed_errors_for_bad_input() {
        let (_, e) = parse_line("not json").unwrap_err();
        assert_eq!(e.kind, "bad_request");
        let (id, e) = parse_line(r#"{"cmd":"steady","id":3,"benchmark":"nope"}"#).unwrap_err();
        assert_eq!(id, Some(3));
        assert_eq!(e.kind, "unknown_benchmark");
        let (_, e) =
            parse_line(r#"{"cmd":"steady","benchmark":"qsort","rpm":"fast"}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
        let (_, e) =
            parse_line(r#"{"cmd":"sweep","benchmark":"qsort","omega_points":1000}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
        let (_, e) =
            parse_line(r#"{"cmd":"optimize","benchmark":"qsort","scale":-1}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
        let (_, e) = parse_line(r#"{"cmd":"launch","benchmark":"qsort"}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
        let (_, e) = parse_line(r#"{"cmd":"metrics","format":"xml"}"#).unwrap_err();
        assert_eq!(e.kind, "bad_request");
    }

    #[test]
    fn error_causes_cover_the_wire_taxonomy() {
        assert_eq!(error_cause("bad_request"), "parse");
        assert_eq!(error_cause("unknown_benchmark"), "parse");
        assert_eq!(error_cause("line_too_long"), "parse");
        assert_eq!(error_cause("bad_frame"), "parse");
        assert_eq!(error_cause("frame_too_long"), "parse");
        assert_eq!(error_cause("overloaded"), "overload");
        assert_eq!(error_cause("shutting_down"), "overload");
        assert_eq!(error_cause("deadline_exceeded"), "deadline");
        assert_eq!(error_cause("panic"), "panic");
        assert_eq!(error_cause("internal"), "internal");
        assert_eq!(error_cause("thermal"), "solver");
        assert_eq!(error_cause("non_finite"), "solver");
    }

    #[test]
    fn benchmark_lookup_is_case_insensitive() {
        let (_, req) = parse_line(r#"{"cmd":"optimize","benchmark":"crc32"}"#).unwrap();
        assert!(matches!(
            req,
            Request::Optimize { spec } if spec.benchmark == Benchmark::Crc32
        ));
    }

    #[test]
    fn envelopes_escape_and_correlate() {
        assert_eq!(
            ok_line(Some(4), true, r#"{"x":1}"#),
            r#"{"id":4,"ok":true,"cached":true,"result":{"x":1}}"#
        );
        let line = err_line(None, &ErrBody::new("bad_request", "say \"hi\"\n"));
        assert_eq!(
            line,
            r#"{"id":null,"ok":false,"error":{"kind":"bad_request","message":"say \"hi\"\n"}}"#
        );
        // The envelope itself must re-parse.
        let v: Value = serde_json::from_str(&line).unwrap();
        assert!(v.as_map().is_some());
    }

    #[test]
    fn traced_envelopes_keep_result_last() {
        let line = ok_line_traced(Some(2), false, r#"{"id":"ab"}"#, r#"{"x":1}"#);
        assert_eq!(
            line,
            r#"{"id":2,"ok":true,"cached":false,"trace":{"id":"ab"},"result":{"x":1}}"#
        );
        assert!(line.ends_with(r#""result":{"x":1}}"#));
        let err = err_line_traced(None, r#"{"id":"cd"}"#, &ErrBody::new("panic", "boom"));
        assert_eq!(
            err,
            r#"{"id":null,"ok":false,"trace":{"id":"cd"},"error":{"kind":"panic","message":"boom"}}"#
        );
        for s in [&line, &err] {
            let v: Value = serde_json::from_str(s).unwrap();
            assert!(v.as_map().is_some());
        }
    }
}
